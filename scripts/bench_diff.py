#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage: bench_diff.py COMMITTED.json FRESH.json [--tolerance-pct N]

Walks both documents in parallel and compares every numeric field whose
name ends in `ns_per_tuple` (lower is better). Exits non-zero if any such
field regressed by more than the tolerance (default 10%). Series are
matched by their `label` field where present, so reordering or appending
series does not produce false diffs; a series present in the baseline but
missing from the fresh run is an error (a silently dropped measurement is
a regression too).

Improvements and new fields are reported but never fail the run. Stdlib
only — no third-party dependencies.
"""

import argparse
import json
import sys

GATED_SUFFIX = "ns_per_tuple"


def walk(node, path=""):
    """Yields (path, value) for every leaf; dict-valued list entries with a
    `label` key are addressed by label instead of index."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            yield from walk(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            if isinstance(value, dict) and "label" in value:
                yield from walk(value, f"{path}[{value['label']}]")
            else:
                yield from walk(value, f"{path}[{i}]")
    else:
        yield path, node


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("committed", help="baseline JSON (the committed copy)")
    ap.add_argument("fresh", help="freshly generated JSON")
    ap.add_argument(
        "--tolerance-pct",
        type=float,
        default=10.0,
        help="maximum allowed ns/tuple regression (default: 10)",
    )
    args = ap.parse_args()

    with open(args.committed) as f:
        baseline = dict(walk(json.load(f)))
    with open(args.fresh) as f:
        fresh = dict(walk(json.load(f)))

    failures = []
    compared = 0
    for path, base_val in baseline.items():
        if not path.endswith(GATED_SUFFIX):
            continue
        if not isinstance(base_val, (int, float)):
            continue
        if path not in fresh:
            failures.append(f"{path}: present in baseline but missing from fresh run")
            continue
        new_val = fresh[path]
        if not isinstance(new_val, (int, float)):
            failures.append(f"{path}: baseline is numeric, fresh run has {new_val!r}")
            continue
        compared += 1
        if base_val <= 0:
            continue  # degenerate baseline; nothing meaningful to gate
        delta_pct = (new_val / base_val - 1.0) * 100.0
        marker = " "
        if delta_pct > args.tolerance_pct:
            failures.append(
                f"{path}: {base_val:g} -> {new_val:g} ns/t ({delta_pct:+.1f}%)"
            )
            marker = "!"
        print(f"{marker} {path}: {base_val:g} -> {new_val:g} ({delta_pct:+.1f}%)")

    for path in fresh:
        if path.endswith(GATED_SUFFIX) and path not in baseline:
            print(f"+ {path}: new series ({fresh[path]!r}), not gated")

    if compared == 0:
        print("error: no ns_per_tuple fields found in the baseline", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\nFAIL: {len(failures)} regression(s) beyond "
            f"{args.tolerance_pct:g}% tolerance:",
            file=sys.stderr,
        )
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} ns/tuple field(s) within {args.tolerance_pct:g}% tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
