//! Distributed sites and out-of-order arrivals (Section VI-B).
//!
//! The paper notes two operational strengths of forward decay: nothing in
//! the algorithms requires items in timestamp order, and summaries built at
//! separate sites (for the same decay function and landmark) merge into a
//! summary of the union. This example demonstrates both:
//!
//! 1. a packet trace with heavy timestamp jitter is processed shuffled and
//!    sorted — the decayed aggregates agree exactly;
//! 2. the trace is sharded across four simulated monitoring sites, each
//!    builds its own summaries, the coordinator merges them — and the
//!    merged answers match a single centralized run.
//!
//! Run with: `cargo run --release --example distributed_ooo`

use forward_decay::core::aggregates::{DecayedCount, DecayedSum};
use forward_decay::core::decay::Monomial;
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::Mergeable;
use forward_decay::gen::TraceConfig;

fn main() {
    let trace = TraceConfig {
        seed: 5,
        duration_secs: 60.0,
        rate_pps: 40_000.0,
        n_hosts: 2_000,
        ooo_jitter_secs: 2.0, // arrivals up to 2 s out of order
        ..Default::default()
    };
    let packets = trace.generate();
    let disorder = packets.windows(2).filter(|w| w[0].ts > w[1].ts).count();
    println!(
        "trace: {} packets, {} adjacent inversions (out-of-order arrivals)",
        packets.len(),
        disorder
    );

    let g = Monomial::quadratic();
    let landmark = 0.0;
    let t_q = 62.0;

    // --- Part 1: order independence ---------------------------------------
    let mut in_arrival_order = DecayedSum::new(g, landmark);
    let mut in_time_order = DecayedSum::new(g, landmark);
    for p in &packets {
        in_arrival_order.update(p.ts_secs(), p.len as f64);
    }
    let mut sorted = packets.clone();
    sorted.sort_by_key(|p| p.ts);
    for p in &sorted {
        in_time_order.update(p.ts_secs(), p.len as f64);
    }
    let (a, b) = (in_arrival_order.query(t_q), in_time_order.query(t_q));
    println!("\n[out-of-order] decayed byte sum, arrival order: {a:.3}");
    println!("[out-of-order] decayed byte sum, sorted order:  {b:.3}");
    assert!(
        (a - b).abs() < 1e-9 * a,
        "forward decay must be order-independent"
    );
    println!("  -> identical, as Section VI-B promises (no reordering buffer needed)");

    // --- Part 2: four sites, one coordinator --------------------------------
    const SITES: usize = 4;
    let mut counts: Vec<DecayedCount<Monomial>> =
        (0..SITES).map(|_| DecayedCount::new(g, landmark)).collect();
    let mut hhs: Vec<DecayedHeavyHitters<Monomial>> = (0..SITES)
        .map(|_| DecayedHeavyHitters::new(g, landmark, 200))
        .collect();
    let mut quants: Vec<DecayedQuantiles<Monomial>> = (0..SITES)
        .map(|_| DecayedQuantiles::new(g, landmark, 11, 0.01))
        .collect();

    // Central reference.
    let mut count_ref = DecayedCount::new(g, landmark);
    let mut hh_ref = DecayedHeavyHitters::new(g, landmark, 200);
    let mut quant_ref = DecayedQuantiles::new(g, landmark, 11, 0.01);

    for (i, p) in packets.iter().enumerate() {
        let site = i % SITES; // round-robin "load balancer"
        let t = p.ts_secs();
        counts[site].update(t);
        hhs[site].update(t, p.dst_host());
        quants[site].update(t, p.len as u64);
        count_ref.update(t);
        hh_ref.update(t, p.dst_host());
        quant_ref.update(t, p.len as u64);
    }

    // Coordinator merges site summaries.
    let (mut count_m, rest) = {
        let mut it = counts.into_iter();
        (it.next().unwrap(), it)
    };
    for c in rest {
        count_m.merge_from(&c);
    }
    let (mut hh_m, rest) = {
        let mut it = hhs.into_iter();
        (it.next().unwrap(), it)
    };
    for h in rest {
        hh_m.merge_from(&h);
    }
    let (mut quant_m, rest) = {
        let mut it = quants.into_iter();
        (it.next().unwrap(), it)
    };
    for q in rest {
        quant_m.merge_from(&q);
    }

    println!("\n[distributed] {SITES} sites merged vs centralized:");
    println!(
        "  decayed count:   merged {:.3}  centralized {:.3}",
        count_m.query(t_q),
        count_ref.query(t_q)
    );
    assert!((count_m.query(t_q) - count_ref.query(t_q)).abs() < 1e-6 * count_ref.query(t_q));

    let top_m = hh_m.heavy_hitters(0.01, t_q);
    let top_r = hh_ref.heavy_hitters(0.01, t_q);
    println!(
        "  φ = 0.01 heavy hitters: merged reports {}, centralized reports {}",
        top_m.len(),
        top_r.len()
    );
    let top3_m: Vec<u64> = top_m.iter().take(3).map(|h| h.item).collect();
    let top3_r: Vec<u64> = top_r.iter().take(3).map(|h| h.item).collect();
    println!("  top-3 receivers merged:      {top3_m:?}");
    println!("  top-3 receivers centralized: {top3_r:?}");
    assert_eq!(
        top3_m, top3_r,
        "the heavy head must survive the merge intact"
    );

    let (med_m, med_r) = (
        quant_m.quantile(0.5, t_q).unwrap(),
        quant_ref.quantile(0.5, t_q).unwrap(),
    );
    println!("  decayed median packet length: merged {med_m}, centralized {med_r}");
    assert!((med_m as f64 - med_r as f64).abs() <= 0.05 * 2048.0);

    println!("\nall merged answers match the centralized run ✓");
}
