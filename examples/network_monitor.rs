//! Network monitor: the paper's motivating deployment, on a synthetic tap.
//!
//! Runs the two flagship GSQL queries of Section VIII inside the
//! Gigascope-like engine, over a Zipf-skewed synthetic packet trace:
//!
//! 1. per-minute, per-destination decayed traffic sums (the quadratic-decay
//!    `sum(len*(time%60)*(time%60))/3600` query), and
//! 2. per-minute decayed heavy hitters: the hosts receiving the most TCP
//!    traffic, weighted toward the most recent packets.
//!
//! Run with: `cargo run --release --example network_monitor`

use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn main() {
    let trace = TraceConfig {
        seed: 1,
        duration_secs: 180.0, // three one-minute buckets
        rate_pps: 50_000.0,
        n_hosts: 5_000,
        zipf_skew: 1.2,
        ..Default::default()
    };
    println!(
        "generating {} packets (~{:.0} pkt/s, {} hosts, Zipf {:.1})…",
        trace.expected_packets(),
        trace.rate_pps,
        trace.n_hosts,
        trace.zipf_skew
    );
    let packets = trace.generate();

    // Query 1 — decayed traffic per destination (quadratic forward decay),
    // two-level execution as GS would run it.
    let q1 = Query::builder("decayed_traffic_per_dst")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_key())
        .bucket_secs(60)
        .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
        .two_level(true)
        .lfta_slots(8192)
        .build();
    let mut e1 = Engine::new(q1);
    let rows = e1.run(packets.iter().copied());
    let stats = e1.stats();
    println!(
        "\n[query 1] decayed sum(len), quadratic decay: {} rows, {} tuples, {} LFTA evictions",
        rows.len(),
        stats.tuples_in,
        stats.lfta_evictions
    );
    // Show the three biggest groups of the first minute.
    let mut first_min: Vec<&Row> = rows.iter().filter(|r| r.bucket_start == 0).collect();
    first_min.sort_by(|a, b| {
        b.value
            .as_float()
            .unwrap()
            .total_cmp(&a.value.as_float().unwrap())
    });
    println!("  top decayed destinations in minute 0:");
    for r in first_min.iter().take(3) {
        let (ip, port) = (r.key >> 16, r.key & 0xFFFF);
        println!(
            "    10.{}.{}.{}:{port} -> decayed bytes {:.0}",
            (ip >> 16) & 0xFF,
            (ip >> 8) & 0xFF,
            ip & 0xFF,
            r.value.as_float().unwrap()
        );
    }

    // Query 2 — decayed heavy hitters: top TCP receivers per minute under
    // exponential decay with a 15-second half-life.
    let q2 = Query::builder("hot_receivers")
        .filter(|p| p.proto == Proto::Tcp)
        .bucket_secs(60)
        .aggregate(fwd_hh_factory(
            Exponential::with_half_life(15.0),
            0.001,
            0.02,
            |p| p.dst_host(),
        ))
        .build();
    let mut e2 = Engine::new(q2);
    for p in &packets {
        e2.process(p);
    }
    let space = e2.space_per_group(); // probe while groups are still live
    let rows = e2.finish();
    println!("\n[query 2] φ = 0.02 decayed heavy hitters (15 s half-life):");
    for r in &rows {
        let minute = r.bucket_start / (60 * MICROS_PER_SEC);
        let hits = r.value.as_items().unwrap();
        print!("  minute {minute}: ");
        for h in hits.iter().take(5) {
            print!(
                "host 10.x.{}.{} ({:.0})  ",
                (h.item >> 8) & 0xFF,
                h.item & 0xFF,
                h.value
            );
        }
        println!("[{} hitters total]", hits.len());
    }
    println!(
        "\nper-group summary space: {:.0} bytes (SpaceSaving with 1/ε = 1000 counters)",
        space.unwrap_or(0.0)
    );
}
