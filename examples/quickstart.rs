//! Quickstart: the paper's worked examples, end to end.
//!
//! Reproduces Examples 1–3 of *Forward Decay* (Cormode et al., ICDE 2009)
//! with the public API: decayed weights, count/sum/average, heavy hitters,
//! plus a decayed quantile and a weighted sample on the same tiny stream.
//!
//! Run with: `cargo run --example quickstart`

use forward_decay::core::aggregates::{DecayedAverage, DecayedCount, DecayedSum};
use forward_decay::core::decay::{ForwardDecay, Monomial};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::sampling::WeightedReservoir;

fn main() {
    // Example 1: stream of (tᵢ, vᵢ), landmark L = 100, g(n) = n², t = 110.
    let stream = [
        (105.0, 4u64),
        (107.0, 8),
        (103.0, 3),
        (108.0, 6),
        (104.0, 4),
    ];
    let landmark = 100.0;
    let t_query = 110.0;
    let g = Monomial::quadratic();

    println!("== Example 1: decayed weights under g(n) = n², L = 100, t = 110 ==");
    for (t_i, v) in stream {
        println!(
            "  item ({t_i:5.1}, {v}) -> weight {:.2}",
            g.weight(landmark, t_i, t_query)
        );
    }

    // Example 2: decayed count, sum and average.
    let mut count = DecayedCount::new(g, landmark);
    let mut sum = DecayedSum::new(g, landmark);
    let mut avg = DecayedAverage::new(g, landmark);
    for (t_i, v) in stream {
        count.update(t_i);
        sum.update(t_i, v as f64);
        avg.update(t_i, v as f64);
    }
    println!("\n== Example 2: decayed aggregates at t = 110 ==");
    println!("  C = {:.2}   (paper: 1.63)", count.query(t_query));
    println!("  S = {:.2}   (paper: 9.67)", sum.query(t_query));
    println!("  A = {:.2}   (paper: 5.93)", avg.query(t_query).unwrap());

    // Example 3: φ = 0.2 decayed heavy hitters.
    let mut hh = DecayedHeavyHitters::new(g, landmark, 16);
    for (t_i, v) in stream {
        hh.update(t_i, v);
    }
    println!("\n== Example 3: φ = 0.2 heavy hitters (paper: items 4, 6, 8) ==");
    for h in hh.heavy_hitters(0.2, t_query) {
        println!("  item {}: decayed count {:.2}", h.item, h.count);
    }

    // Beyond the worked examples: a decayed median and a weighted sample.
    let mut quant = DecayedQuantiles::new(g, landmark, 8, 0.05);
    let mut sampler = WeightedReservoir::new(g, landmark, 3, 2024);
    for (t_i, v) in stream {
        quant.update(t_i, v);
        sampler.update(t_i, &v);
    }
    println!("\n== Extras on the same stream ==");
    println!(
        "  decayed median: {}",
        quant.quantile(0.5, t_query).unwrap()
    );
    let mut sample: Vec<u64> = sampler.sample().iter().map(|e| e.item).collect();
    sample.sort_unstable();
    println!("  weighted sample of 3 (recent items favoured): {sample:?}");
}
