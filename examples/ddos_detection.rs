//! DDoS detection: decayed vs undecayed heavy hitters under a traffic
//! anomaly.
//!
//! "One today is worth two tomorrows" — the paper's epigraph is exactly the
//! operational case for time decay: when a flood starts mid-bucket, an
//! undecayed per-minute heavy-hitter report still averages the attack
//! against the quiet first half of the minute, while an exponentially
//! decayed report (15 s half-life) reflects the *current* traffic mix.
//!
//! A synthetic trace runs quietly for 45 s, then a flood aims 40% of all
//! packets at one victim host. Both queries watch the same stream; we
//! compare the victim's reported share in the bucket where the attack
//! begins.
//!
//! Run with: `cargo run --release --example ddos_detection`

use forward_decay::core::decay::Exponential;
use forward_decay::engine::prelude::*;
use forward_decay::gen::{Burst, TraceConfig};

const VICTIM: u32 = 0x0A00_BEEF;

fn main() {
    let trace = TraceConfig {
        seed: 13,
        duration_secs: 60.0,
        rate_pps: 50_000.0,
        n_hosts: 5_000,
        zipf_skew: 1.0,
        tcp_fraction: 1.0,
        burst: Some(Burst {
            start_secs: 45.0,
            end_secs: 60.0,
            dst_ip: VICTIM,
            fraction: 0.4,
        }),
        ..Default::default()
    };
    let packets = trace.generate();
    println!(
        "trace: {} packets over 60 s; flood of 40% toward 10.0.190.239 starting at t = 45 s\n",
        packets.len()
    );

    let undecayed = Query::builder("undecayed")
        .bucket_secs(60)
        .aggregate(unary_hh_factory(0.001, 0.01, |p| p.dst_host()))
        .build();
    let decayed = Query::builder("decayed")
        .bucket_secs(60)
        .aggregate(fwd_hh_factory(
            Exponential::with_half_life(15.0),
            0.001,
            0.01,
            |p| p.dst_host(),
        ))
        .build();

    let mut qs = QuerySet::new(vec![undecayed, decayed]);
    for p in &packets {
        qs.process(p);
    }
    let results = qs.finish();

    println!("per-minute φ = 0.01 heavy hitters at the end of the attack minute:\n");
    let mut shares = Vec::new();
    for (name, rows) in &results {
        let bucket0 = &rows[0];
        let hits = bucket0.value.as_items().unwrap();
        let total: f64 = hits.iter().map(|h| h.value).sum();
        let victim = hits
            .iter()
            .find(|h| h.item == VICTIM as u64)
            .map(|h| h.value)
            .unwrap_or(0.0);
        // Share relative to the whole (decayed) stream, approximated by the
        // report: use rank position and the leading entries.
        let rank = hits.iter().position(|h| h.item == VICTIM as u64);
        println!(
            "  {name:>9}: victim rank {:>2?} of {:>3} reported, weight {victim:.0} \
             ({:.0}% of reported mass)",
            rank.map(|r| r + 1),
            hits.len(),
            100.0 * victim / total
        );
        shares.push(victim / total);
    }
    let (und, dec) = (shares[0], shares[1]);
    println!(
        "\nvictim share of reported traffic: undecayed {:.1}% vs decayed {:.1}%",
        und * 100.0,
        dec * 100.0
    );
    assert!(
        dec > 1.5 * und,
        "decay should amplify the in-progress attack ({dec} vs {und})"
    );
    println!(
        "\nThe decayed view weights the attack at its true current intensity;\n\
         the undecayed minute average dilutes it against pre-attack traffic."
    );
}
