//! Saturation demo: watch the backward-decay machinery fall over, live.
//!
//! The paper's headline operational result: *"the forward decay approach
//! could answer queries on multi-gigabit data without loss, while methods
//! based on backward decay dropped many packets, and reached 100% CPU
//! load."* This example replays the same synthetic trace through the
//! forward-decayed query and the backward (CKT prefix-hierarchy) baseline
//! at increasing offered rates, using the real measured processing speed of
//! this machine, and reports CPU load and dropped tuples as the ingress
//! buffer overflows.
//!
//! Run with: `cargo run --release --example saturation`

use forward_decay::core::decay::{BackExponential, Exponential};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn main() {
    let packets = TraceConfig {
        seed: 77,
        duration_secs: 10.0,
        rate_pps: 200_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate();
    println!(
        "trace: {} packets; query: per-minute heavy TCP receivers (φ = 0.02)\n",
        packets.len()
    );

    let forward_query = || {
        Query::builder("forward")
            .bucket_secs(60)
            .aggregate(fwd_hh_factory(Exponential::new(0.1), 0.01, 0.02, |p| {
                p.dst_host()
            }))
            .build()
    };
    let backward_query = || {
        Query::builder("backward")
            .bucket_secs(60)
            .aggregate(prefix_hh_factory(
                16,
                0.01,
                DynBackward::from_decay(BackExponential::new(0.1)),
                0.02,
                |p| p.dst_host(),
            ))
            .build()
    };

    println!(
        "{:>12} | {:>22} | {:>22}",
        "offered rate", "forward decay", "backward decay (CKT)"
    );
    println!("{:->12}-+-{:->22}-+-{:->22}", "", "", "");
    for rate in [100_000.0, 400_000.0, 1_600_000.0, 6_400_000.0f64] {
        let driver = RateDriver::new(rate);
        let mut fwd = Engine::new(forward_query());
        let f = driver.replay(&mut fwd, &packets);
        let mut bwd = Engine::new(backward_query());
        let b = driver.replay(&mut bwd, &packets);
        let fmt = |s: ReplayStats| {
            if s.dropped > 0 {
                format!(
                    "{:.0}% load, {:.0}% DROPPED",
                    s.cpu_load_pct,
                    s.drop_fraction() * 100.0
                )
            } else {
                format!("{:.1}% load, no loss", s.cpu_load_pct)
            }
        };
        println!(
            "{:>9}k/s | {:>22} | {:>22}",
            rate as u64 / 1000,
            fmt(f),
            fmt(b)
        );
    }

    println!(
        "\nThe forward-decayed SpaceSaving keeps up long after the backward\n\
         structure saturates — the paper's Section VIII conclusion, reproduced\n\
         on this machine's clock."
    );
}
