//! Financial ticker: time-decayed analytics over a trade stream.
//!
//! The paper motivates forward decay with "financial data" streaming systems
//! (Streambase). This example maintains, per instrument, over a synthetic
//! random-walk tick stream:
//!
//! - an exponentially decayed average price (the classic EWMA, here as a
//!   forward-decay instance — Section III-A shows the two coincide);
//! - a polynomially decayed price variance (slower-than-exponential decay,
//!   which backward machinery cannot support cheaply — Section II);
//! - decayed price quantiles via the weighted q-digest (Theorem 3);
//! - a decayed trade sample via weighted reservoir sampling (Theorem 6);
//!
//! and demonstrates landmark renormalization (Section VI-A): the exponential
//! aggregates run over a stream long enough that the raw `g` values would
//! overflow `f64` thousands of times over.
//!
//! Run with: `cargo run --release --example financial_ticker`

use forward_decay::core::aggregates::{DecayedAverage, DecayedVariance};
use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::sampling::WeightedReservoir;
use forward_decay::gen::TickerConfig;

fn main() {
    let cfg = TickerConfig {
        seed: 99,
        duration_secs: 4.0 * 3600.0, // a 4-hour session
        rate_tps: 2_000.0,
        n_symbols: 4,
        volatility: 0.002,
        start_price: 100.0,
    };
    println!(
        "generating a {}h tick stream, {} symbols, ~{:.0} ticks/s…",
        cfg.duration_secs / 3600.0,
        cfg.n_symbols,
        cfg.rate_tps
    );
    let ticks = cfg.generate();
    let landmark = 0.0;
    let t_end = cfg.duration_secs;

    // Exponential decay with a 60 s half-life: α·t reaches ≈ 166 000 over
    // the session — e^166000 is unrepresentable, so renormalization is
    // doing real work here.
    let ewma_decay = Exponential::with_half_life(60.0);
    let poly_decay = Monomial::new(2.0);

    let n = cfg.n_symbols;
    let mut ewma = vec![DecayedAverage::new(ewma_decay, landmark); n];
    let mut var = vec![DecayedVariance::new(poly_decay, landmark); n];
    let mut quants: Vec<DecayedQuantiles<Monomial>> = (0..n)
        .map(|_| DecayedQuantiles::new(poly_decay, landmark, 16, 0.01))
        .collect();
    let mut samples: Vec<WeightedReservoir<(f64, u32), Exponential>> = (0..n)
        .map(|s| WeightedReservoir::new(ewma_decay, landmark, 20, s as u64))
        .collect();

    let mut last_price = vec![0.0f64; n];
    for t in &ticks {
        let s = t.symbol as usize;
        ewma[s].update(t.ts_secs, t.price);
        var[s].update(t.ts_secs, t.price);
        // Quantiles over integer cents.
        quants[s].update(t.ts_secs, (t.price * 100.0).round() as u64);
        samples[s].update(t.ts_secs, &(t.price, t.size));
        last_price[s] = t.price;
    }

    println!("\nper-symbol decayed analytics at session end (t = {t_end:.0} s):");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "symbol", "last", "EWMA(60s)", "poly-σ", "p10", "p50", "p90"
    );
    for s in 0..n {
        let p10 = quants[s].quantile(0.1, t_end).unwrap() as f64 / 100.0;
        let p50 = quants[s].quantile(0.5, t_end).unwrap() as f64 / 100.0;
        let p90 = quants[s].quantile(0.9, t_end).unwrap() as f64 / 100.0;
        println!(
            "{:>6} {:>10.3} {:>12.3} {:>12.4} {:>10.2} {:>10.2} {:>10.2}",
            s,
            last_price[s],
            ewma[s].query(t_end).unwrap(),
            var[s].query(t_end).unwrap().sqrt(),
            p10,
            p50,
            p90
        );
        // The EWMA must hug the recent price, not the session mean.
        let drift = (ewma[s].query(t_end).unwrap() - last_price[s]).abs() / last_price[s];
        assert!(drift < 0.05, "EWMA drifted {drift:.3} from the last price");
    }

    println!("\nexponentially decayed trade sample for symbol 0 (most recent trades dominate):");
    let mut sample: Vec<_> = samples[0].sample().iter().map(|e| (e.t, e.item)).collect();
    sample.sort_by_key(|s| s.0);
    for (t, (price, size)) in sample.iter().rev().take(5) {
        println!("  t = {t:9.2} s  price {price:8.3}  size {size:5}");
    }
    let oldest = sample.first().unwrap().0;
    println!(
        "  (oldest of 20 sampled trades is from t = {oldest:.0} s of a {t_end:.0} s session — \
         recency bias at work)"
    );
}
