//! # forward-decay — umbrella crate
//!
//! Re-exports the three crates of the forward-decay reproduction
//! (Cormode, Shkapenyuk, Srivastava, Xu, ICDE 2009) under one roof and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! - [`core`] (`fd-core`) — decay functions, decayed aggregates, sketches
//!   and samplers: the paper's contribution;
//! - [`engine`] (`fd-engine`) — a Gigascope-like mini stream engine with
//!   time-bucket group-by queries, UDAFs and two-level aggregation: the
//!   substrate the paper's experiments ran on;
//! - [`gen`] (`fd-gen`) — synthetic packet traces and value streams
//!   standing in for the paper's live network tap.

pub use fd_core as core;
pub use fd_engine as engine;
pub use fd_gen as gen;
