//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-repo serde shim — no `syn`/`quote`, because the workspace builds
//! fully offline with zero external crates.
//!
//! Supported input shapes (everything this workspace derives on):
//! - structs with named fields, optionally generic (`struct S<T, G: B>`),
//! - unit structs,
//! - enums whose variants are unit, newtype, tuple, or struct-shaped,
//!   optionally generic.
//!
//! `#[serde(...)]` attributes are **not** supported; generic parameters
//! get a `Serialize` / `DeserializeOwned` bound added to their existing
//! inline bounds, mirroring serde's default bound inference for the cases
//! used here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum ParamKind {
    Lifetime,
    Const,
    Type,
}

struct Param {
    /// Original declaration tokens, e.g. `G: ForwardDecay`.
    decl: String,
    /// Bare name, e.g. `G` (or `'a`, or the const's name).
    name: String,
    kind: ParamKind,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Body {
    /// Named-field struct with field names.
    Struct(Vec<String>),
    /// Unit struct (`struct S;`).
    Unit,
    /// Enum with (variant name, shape) in declaration order.
    Enum(Vec<(String, VariantShape)>),
}

struct Parsed {
    name: String,
    params: Vec<Param>,
    where_clause: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Splits a token list on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments don't split (nested `(..)`/`[..]`/`{..}`
/// arrive as single `Group` tokens and need no tracking).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_was_dash = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !prev_was_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    prev_was_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_was_dash = p.as_char() == '-';
        } else {
            prev_was_dash = false;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|chunk| !chunk.is_empty());
    out
}

/// Strips leading `#[...]` attributes and a `pub` / `pub(...)` visibility
/// from a token list, returning the remainder.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` is always followed by the bracketed attribute body.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_params(tokens: &[TokenTree]) -> Vec<Param> {
    split_top_level(tokens)
        .into_iter()
        .map(|chunk| {
            let decl = tokens_to_string(&chunk);
            match &chunk[0] {
                TokenTree::Punct(p) if p.as_char() == '\'' => Param {
                    name: format!("'{}", chunk[1]),
                    decl,
                    kind: ParamKind::Lifetime,
                },
                TokenTree::Ident(id) if id.to_string() == "const" => Param {
                    name: chunk[1].to_string(),
                    decl,
                    kind: ParamKind::Const,
                },
                first => Param {
                    name: first.to_string(),
                    decl,
                    kind: ParamKind::Type,
                },
            }
        })
        .collect()
}

/// Field names of a named-field body (the contents of a `{...}` group).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(tokens)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<(String, VariantShape)> {
    split_top_level(tokens)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected variant name, got {other:?}"),
            };
            let shape = match rest.get(1) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                    match split_top_level(&fields).len() {
                        1 => VariantShape::Newtype,
                        n => VariantShape::Tuple(n),
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Struct(parse_named_fields(&fields))
                }
                other => panic!("serde shim derive: unsupported variant shape {other:?}"),
            };
            (name, shape)
        })
        .collect()
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let rest = strip_attrs_and_vis(&tokens);
    let mut i = 0;

    let is_enum = match &rest[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde shim derive: expected struct or enum, got {other}"),
    };
    i += 1;

    let name = rest[i].to_string();
    i += 1;

    // Generic parameter list, if present.
    let mut params = Vec::new();
    if matches!(&rest.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let start = i;
        let mut depth = 1;
        while depth > 0 {
            if let TokenTree::Punct(p) = &rest[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            i += 1;
        }
        params = parse_params(&rest[start..i - 1]);
    }

    // Optional where clause, then the body.
    let mut where_tokens = Vec::new();
    let body = loop {
        match &rest[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break if is_enum {
                    Body::Enum(parse_enum_variants(&inner))
                } else {
                    Body::Struct(parse_named_fields(&inner))
                };
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                assert!(
                    !is_enum && where_tokens.is_empty(),
                    "serde shim derive: tuple structs are not supported"
                );
                break Body::Unit;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple structs are not supported (write manual impls)")
            }
            t => {
                where_tokens.push(t.clone());
                i += 1;
            }
        }
    };

    Parsed {
        name,
        params,
        where_clause: tokens_to_string(&where_tokens),
        body,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

impl Parsed {
    /// `<T, G>` (empty string when not generic).
    fn ty_generics(&self) -> String {
        if self.params.is_empty() {
            String::new()
        } else {
            let names: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
            format!("<{}>", names.join(", "))
        }
    }

    /// The original parameter declarations with `extra_bound` appended to
    /// every *type* parameter, e.g. `T: serde::ser::Serialize, G:
    /// ForwardDecay + serde::ser::Serialize`.
    fn bounded_params(&self, extra_bound: &str) -> String {
        self.params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Lifetime | ParamKind::Const => p.decl.clone(),
                ParamKind::Type => {
                    if p.decl.contains(':') {
                        format!("{} + {extra_bound}", p.decl)
                    } else {
                        format!("{}: {extra_bound}", p.decl)
                    }
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn self_ty(&self) -> String {
        format!("{}{}", self.name, self.ty_generics())
    }

    fn where_suffix(&self) -> String {
        if self.where_clause.is_empty() {
            String::new()
        } else {
            format!(" {}", self.where_clause)
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let self_ty = p.self_ty();
    let impl_generics = p.bounded_params("serde::ser::Serialize");
    let impl_header = if impl_generics.is_empty() {
        format!(
            "impl serde::ser::Serialize for {self_ty}{}",
            p.where_suffix()
        )
    } else {
        format!(
            "impl<{impl_generics}> serde::ser::Serialize for {self_ty}{}",
            p.where_suffix()
        )
    };

    let body = match &p.body {
        Body::Unit => format!("serde::ser::Serializer::serialize_unit_struct(__s, \"{name}\")"),
        Body::Struct(fields) => {
            let mut code = format!(
                "let mut __st = serde::ser::Serializer::serialize_struct(__s, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                code.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            code.push_str("serde::ser::SerializeStruct::end(__st)");
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (vname, shape)) in variants.iter().enumerate() {
                let arm = match shape {
                    VariantShape::Unit => format!(
                        "{name}::{vname} => serde::ser::Serializer::serialize_unit_variant(__s, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    ),
                    VariantShape::Newtype => format!(
                        "{name}::{vname}(__f0) => serde::ser::Serializer::serialize_newtype_variant(__s, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    ),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __tv = serde::ser::Serializer::serialize_tuple_variant(__s, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeTupleVariant::end(__tv)\n},\n");
                        arm
                    }
                    VariantShape::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __sv = serde::ser::Serializer::serialize_struct_variant(__s, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                        arm
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };

    let code = format!(
        "#[automatically_derived]\n{impl_header} {{\n\
         fn serialize<__S: serde::ser::Serializer>(&self, __s: __S) -> core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    );
    code.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let self_ty = p.self_ty();
    let ty_generics = p.ty_generics();
    // `T, G,` — phantom payload over the bare parameters, so the visitor
    // struct declaration needs none of the input type's bounds.
    let params_tuple = p
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Type))
        .map(|p| format!("{},", p.name))
        .collect::<String>();
    let impl_generics = p.bounded_params("serde::de::DeserializeOwned");
    let impl_header = if impl_generics.is_empty() {
        format!(
            "impl<'de> serde::de::Deserialize<'de> for {self_ty}{}",
            p.where_suffix()
        )
    } else {
        format!(
            "impl<'de, {impl_generics}> serde::de::Deserialize<'de> for {self_ty}{}",
            p.where_suffix()
        )
    };
    // The visitor struct re-uses the type's generics via a fn-pointer
    // phantom so it stays Send/'static-agnostic.
    let (visitor_decl, visitor_ctor, visitor_ty) = if p.params.is_empty() {
        (
            "struct __Visitor;".to_string(),
            "__Visitor".to_string(),
            "__Visitor".to_string(),
        )
    } else {
        (
            format!(
                "struct __Visitor{ty_generics}(core::marker::PhantomData<fn() -> ({params_tuple})>);"
            ),
            "__Visitor(core::marker::PhantomData)".to_string(),
            format!("__Visitor{ty_generics}"),
        )
    };
    let visitor_impl_generics = if impl_generics.is_empty() {
        "'de".to_string()
    } else {
        format!("'de, {impl_generics}")
    };

    // `let __fN = next_element()? else missing-field error` chains.
    let seq_lets = |fields: usize, what: &str| -> String {
        (0..fields)
            .map(|i| {
                format!(
                    "let __f{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                     Some(__v) => __v,\n\
                     None => return Err(<__A::Error as serde::de::Error>::custom(\"{what}: too few elements\")),\n\
                     }};\n"
                )
            })
            .collect()
    };

    let (visit_body, drive) = match &p.body {
        Body::Unit => (
            format!(
                "fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<Self::Value, __E> {{\n\
                 core::result::Result::Ok({name})\n\
                 }}"
            ),
            format!(
                "serde::de::Deserializer::deserialize_unit_struct(__d, \"{name}\", {visitor_ctor})"
            ),
        ),
        Body::Struct(fields) => {
            let lets = seq_lets(fields.len(), &format!("struct {name}"));
            let ctor_fields = fields
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{f}: __f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let field_names = fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            (
                format!(
                    "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> core::result::Result<Self::Value, __A::Error> {{\n\
                     {lets}\
                     core::result::Result::Ok({name} {{ {ctor_fields} }})\n\
                     }}"
                ),
                format!(
                    "serde::de::Deserializer::deserialize_struct(__d, \"{name}\", &[{field_names}], {visitor_ctor})"
                ),
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (vname, shape)) in variants.iter().enumerate() {
                let arm = match shape {
                    VariantShape::Unit => format!(
                        "{idx}u32 => {{\n\
                         serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         core::result::Result::Ok({name}::{vname})\n\
                         }},\n"
                    ),
                    VariantShape::Newtype => format!(
                        "{idx}u32 => {{\n\
                         let __v = serde::de::VariantAccess::newtype_variant(__variant)?;\n\
                         core::result::Result::Ok({name}::{vname}(__v))\n\
                         }},\n"
                    ),
                    VariantShape::Tuple(n) => {
                        let lets = seq_lets(*n, &format!("variant {name}::{vname}"));
                        let binders = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner_decl = if p.params.is_empty() {
                            format!("struct __V{idx};")
                        } else {
                            format!(
                                "struct __V{idx}{ty_generics}(core::marker::PhantomData<fn() -> ({params_tuple})>);"
                            )
                        };
                        let inner_ctor = if p.params.is_empty() {
                            format!("__V{idx}")
                        } else {
                            format!("__V{idx}(core::marker::PhantomData)")
                        };
                        let inner_ty = if p.params.is_empty() {
                            format!("__V{idx}")
                        } else {
                            format!("__V{idx}{ty_generics}")
                        };
                        format!(
                            "{idx}u32 => {{\n\
                             {inner_decl}\n\
                             impl<{visitor_impl_generics}> serde::de::Visitor<'de> for {inner_ty} {{\n\
                             type Value = {self_ty};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
                             __f.write_str(\"variant {name}::{vname}\")\n\
                             }}\n\
                             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> core::result::Result<Self::Value, __A::Error> {{\n\
                             {lets}\
                             core::result::Result::Ok({name}::{vname}({binders}))\n\
                             }}\n\
                             }}\n\
                             serde::de::VariantAccess::tuple_variant(__variant, {n}usize, {inner_ctor})\n\
                             }},\n"
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let lets = seq_lets(fields.len(), &format!("variant {name}::{vname}"));
                        let ctor_fields = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| format!("{f}: __f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let field_names = fields
                            .iter()
                            .map(|f| format!("\"{f}\""))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner_decl = if p.params.is_empty() {
                            format!("struct __V{idx};")
                        } else {
                            format!(
                                "struct __V{idx}{ty_generics}(core::marker::PhantomData<fn() -> ({params_tuple})>);"
                            )
                        };
                        let inner_ctor = if p.params.is_empty() {
                            format!("__V{idx}")
                        } else {
                            format!("__V{idx}(core::marker::PhantomData)")
                        };
                        let inner_ty = if p.params.is_empty() {
                            format!("__V{idx}")
                        } else {
                            format!("__V{idx}{ty_generics}")
                        };
                        format!(
                            "{idx}u32 => {{\n\
                             {inner_decl}\n\
                             impl<{visitor_impl_generics}> serde::de::Visitor<'de> for {inner_ty} {{\n\
                             type Value = {self_ty};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
                             __f.write_str(\"variant {name}::{vname}\")\n\
                             }}\n\
                             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) -> core::result::Result<Self::Value, __A::Error> {{\n\
                             {lets}\
                             core::result::Result::Ok({name}::{vname} {{ {ctor_fields} }})\n\
                             }}\n\
                             }}\n\
                             serde::de::VariantAccess::struct_variant(__variant, &[{field_names}], {inner_ctor})\n\
                             }},\n"
                        )
                    }
                };
                arms.push_str(&arm);
            }
            let variant_names = variants
                .iter()
                .map(|(v, _)| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(", ");
            (
                format!(
                    "fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) -> core::result::Result<Self::Value, __A::Error> {{\n\
                     let (__idx, __variant): (u32, __A::Variant) = serde::de::EnumAccess::variant(__data)?;\n\
                     match __idx {{\n\
                     {arms}\
                     _ => Err(<__A::Error as serde::de::Error>::custom(\"invalid variant index for {name}\")),\n\
                     }}\n\
                     }}"
                ),
                format!(
                    "serde::de::Deserializer::deserialize_enum(__d, \"{name}\", &[{variant_names}], {visitor_ctor})"
                ),
            )
        }
    };

    let code = format!(
        "#[automatically_derived]\n{impl_header} {{\n\
         fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D) -> core::result::Result<Self, __D::Error> {{\n\
         {visitor_decl}\n\
         impl<{visitor_impl_generics}> serde::de::Visitor<'de> for {visitor_ty} {{\n\
         type Value = {self_ty};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
         __f.write_str(\"{name}\")\n\
         }}\n\
         {visit_body}\n\
         }}\n\
         {drive}\n\
         }}\n\
         }}"
    );
    code.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
