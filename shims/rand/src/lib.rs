//! A minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` and `Rng::gen_range` over integer and float ranges.
//!
//! The workspace builds fully offline, so external crates are replaced by
//! in-repo shims with the same module paths. The generator is
//! xoshiro256++ seeded through splitmix64 — the same family the real
//! `SmallRng` uses on 64-bit targets. Streams are deterministic per seed
//! (which the samplers and workload generators rely on) but are *not*
//! bit-identical to the real crate's, and none of this is
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from an RNG — the shim's stand-in for
/// `Standard: Distribution<T>`.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1): 53 mantissa bits, the standard ldexp construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<A: Standard, B: Standard> Standard for (A, B) {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (A::sample(rng), B::sample(rng))
    }
}

/// Ranges a uniform value can be drawn from (`Range` and `RangeInclusive`
/// over the primitive numeric types).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 10k uniforms must be near 1/2.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.gen_range(0..7usize);
            assert!(a < 7);
            let b = rng.gen_range(40..=100u32);
            assert!((40..=100).contains(&b));
            let c = rng.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&c));
            let d = rng.gen_range(1024..=65535u16);
            assert!(d >= 1024);
            let e = rng.gen_range(-10..10i64);
            assert!((-10..10).contains(&e));
        }
    }

    #[test]
    fn all_range_values_are_reachable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
