//! A minimal, dependency-free stand-in for the `serde` data-model traits
//! used by this workspace: the `ser`/`de` trait hierarchy, container
//! implementations for the std types the summaries store, and (behind the
//! `derive` feature) `#[derive(Serialize, Deserialize)]` from the
//! companion `serde_derive` shim.
//!
//! The workspace builds fully offline, so external crates are replaced by
//! in-repo shims with the same module paths. The surface here is exactly
//! what `fd_core::checkpoint` (the only serializer/deserializer in the
//! tree) and the workspace's derives exercise — it is not a general serde
//! replacement.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
