//! Deserialization half of the data model: `Deserialize`, `Deserializer`,
//! `Visitor`, the access traits for compound types, and `Deserialize`
//! implementations for the std types the workspace stores inside its
//! summaries.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Errors a deserializer can produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from any message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful deserialization driver; the stateless case is
/// `PhantomData<T>` for any `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    /// The value produced.
    type Value;
    /// Drives the deserializer to produce the value.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any data structure.
pub trait Deserializer<'de>: Sized {
    /// Error type of this deserializer.
    type Error: Error;

    /// Self-describing formats dispatch on the input; binary formats
    /// reject this.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips a value in a self-describing format.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Builds a value from whatever shape the deserializer encounters. Every
/// method defaults to an error; implementations override the shapes they
/// accept.
pub trait Visitor<'de>: Sized {
    /// The value built.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool {v}")))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}")))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}")))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float {v}")))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected char {v:?}")))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(<D::Error as Error>::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(<D::Error as Error>::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(<A::Error as Error>::custom("unexpected enum"))
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error type, shared with the deserializer.
    type Error: Error;
    /// Deserializes the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData::<T>)
    }
    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    /// Error type, shared with the deserializer.
    type Error: Error;
    /// Deserializes the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserializes the next value through a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData::<K>)
    }
    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData::<V>)
    }
    /// Deserializes the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error type, shared with the deserializer.
    type Error: Error;
    /// Accessor for the variant's contents.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserializes the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData::<V>)
    }
}

/// Access to the contents of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type, shared with the deserializer.
    type Error: Error;
    /// Finishes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Deserializes a newtype variant through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// Deserializes a newtype variant.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData::<T>)
    }
    /// Deserializes a tuple variant.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct variant.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// IntoDeserializer (primitive tags, e.g. enum variant indexes)
// ---------------------------------------------------------------------------

/// Conversion of a plain value into a deserializer over it — used for enum
/// variant tags.
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps the value.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer over one plain `u32` (a variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! u32_de_unsupported {
    ($($method:ident),* $(,)?) => {$(
        fn $method<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, E> {
            Err(E::custom(concat!(
                "variant tag does not support ",
                stringify!($method)
            )))
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    u32_de_unsupported!(
        deserialize_bool,
        deserialize_i8,
        deserialize_i16,
        deserialize_i32,
        deserialize_i64,
        deserialize_u8,
        deserialize_u16,
        deserialize_f32,
        deserialize_f64,
        deserialize_char,
        deserialize_str,
        deserialize_string,
        deserialize_bytes,
        deserialize_byte_buf,
        deserialize_option,
        deserialize_unit,
        deserialize_seq,
        deserialize_map,
        deserialize_ignored_any,
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _visitor: V,
    ) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support unit structs"))
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _visitor: V,
    ) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support newtype structs"))
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, _visitor: V) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support tuples"))
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        _visitor: V,
    ) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support tuple structs"))
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        _visitor: V,
    ) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support structs"))
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        _visitor: V,
    ) -> Result<V::Value, E> {
        Err(E::custom("variant tag does not support enums"))
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! primitive_de {
    ($($ty:ty, $deserialize:ident, $visit:ident, $expect:literal);* $(;)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(PrimitiveVisitor)
            }
        }
    )*};
}

primitive_de! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| <D::Error as Error>::custom("usize overflow"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| <D::Error as Error>::custom("isize overflow"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SeqVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for SeqVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element::<T>()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SeqVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(VecDeque::from)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BinaryHeap<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(Self::from)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out =
                    HashMap::with_capacity_and_hasher(map.size_hint().unwrap_or(0), H::default());
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct PhantomVisitor<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for PhantomVisitor<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit struct")
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", PhantomVisitor(PhantomData))
    }
}

macro_rules! tuple_de {
    ($(($len:literal => $($t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $t = seq
                                .next_element::<$t>()?
                                .ok_or_else(|| <A::Error as Error>::custom("tuple too short"))?;
                        )+
                        Ok(($($t,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

tuple_de! {
    (1 => T0)
    (2 => T0, T1)
    (3 => T0, T1, T2)
    (4 => T0, T1, T2, T3)
    (5 => T0, T1, T2, T3, T4)
    (6 => T0, T1, T2, T3, T4, T5)
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut items = Vec::with_capacity(N);
                for _ in 0..N {
                    items.push(
                        seq.next_element::<T>()?
                            .ok_or_else(|| <A::Error as Error>::custom("array too short"))?,
                    );
                }
                items
                    .try_into()
                    .map_err(|_| <A::Error as Error>::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}
