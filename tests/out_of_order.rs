//! Section VI-B: out-of-order arrivals. Forward decay never relies on
//! timestamp order — the same trace shuffled and sorted must give identical
//! answers, both at the summary level and through the engine (given enough
//! watermark slack).

use forward_decay::core::aggregates::{DecayedCount, DecayedSum};
use forward_decay::core::decay::{Exponential, ForwardDecay, Monomial};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn jittered_trace() -> Vec<Packet> {
    TraceConfig {
        seed: 47,
        duration_secs: 50.0,
        rate_pps: 10_000.0,
        n_hosts: 300,
        ooo_jitter_secs: 3.0,
        ..Default::default()
    }
    .generate()
}

#[test]
fn summaries_are_arrival_order_independent() {
    let packets = jittered_trace();
    let mut sorted = packets.clone();
    sorted.sort_by_key(|p| p.ts);
    assert_ne!(
        packets.iter().map(|p| p.ts).collect::<Vec<_>>(),
        sorted.iter().map(|p| p.ts).collect::<Vec<_>>(),
        "trace must actually be out of order"
    );
    let t_q = 55.0;
    let g = Monomial::quadratic();

    // Exact aggregates: identical up to floating-point summation order.
    let feed_sum = |pkts: &[Packet]| {
        let mut s = DecayedSum::new(g, 0.0);
        for p in pkts {
            s.update(p.ts_secs(), p.len as f64);
        }
        s.query(t_q)
    };
    let (a, b) = (feed_sum(&packets), feed_sum(&sorted));
    assert!((a - b).abs() <= 1e-12 * a, "{a} vs {b}");

    let feed_count = |pkts: &[Packet]| {
        let mut c = DecayedCount::new(Exponential::new(0.1), 0.0);
        for p in pkts {
            c.update(p.ts_secs());
        }
        c.query(t_q)
    };
    let (a, b) = (feed_count(&packets), feed_count(&sorted));
    assert!((a - b).abs() <= 1e-9 * a);

    // Approximate sketches: their *guarantees* are order-independent (the
    // weights fed in are identical multisets), though internal tie-breaking
    // may differ — the heavy head and the quantile band must agree.
    let feed_hh = |pkts: &[Packet]| {
        let mut h = DecayedHeavyHitters::new(g, 0.0, 128);
        for p in pkts {
            h.update(p.ts_secs(), p.dst_host());
        }
        h.heavy_hitters(0.05, t_q)
            .iter()
            .map(|x| x.item)
            .collect::<Vec<_>>()
    };
    let (hh_a, hh_b) = (feed_hh(&packets), feed_hh(&sorted));
    assert_eq!(&hh_a[..3.min(hh_a.len())], &hh_b[..3.min(hh_b.len())]);

    let feed_quant = |pkts: &[Packet]| {
        let mut q = DecayedQuantiles::new(g, 0.0, 11, 0.02);
        for p in pkts {
            q.update(p.ts_secs(), p.len as u64);
        }
        q.quantile(0.5, t_q).unwrap() as f64
    };
    let (qa, qb) = (feed_quant(&packets), feed_quant(&sorted));
    assert!((qa - qb).abs() <= 0.05 * 2048.0, "medians {qa} vs {qb}");
}

#[test]
fn engine_with_slack_matches_sorted_run() {
    let packets = jittered_trace();
    let mut sorted = packets.clone();
    sorted.sort_by_key(|p| p.ts);

    let build = || {
        Query::builder("ooo")
            .group_by(|p| p.dst_host() % 20)
            .bucket_secs(10)
            // ±3 s jitter lets the watermark run up to 6 s ahead of a
            // straggler; 8 s of slack covers it.
            .slack_secs(8.0)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .build()
    };
    let mut e_ooo = Engine::new(build());
    let rows_ooo = e_ooo.run(packets.iter().copied());
    assert_eq!(e_ooo.stats().late_drops, 0, "slack must absorb all jitter");
    let rows_sorted = Engine::new(build()).run(sorted.iter().copied());
    assert_eq!(rows_ooo.len(), rows_sorted.len());
    for (a, b) in rows_ooo.iter().zip(&rows_sorted) {
        assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
        let (x, y) = (a.value.as_float().unwrap(), b.value.as_float().unwrap());
        assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
    }
}

#[test]
fn engine_without_slack_counts_late_drops() {
    let packets = jittered_trace();
    let q = Query::builder("no_slack")
        .bucket_secs(10)
        .aggregate(count_factory())
        .build();
    let mut e = Engine::new(q);
    for p in &packets {
        e.process(p);
    }
    e.finish();
    // With 3 s jitter and 10 s buckets, some arrivals land in closed
    // buckets and must be counted as dropped, not silently lost.
    assert!(e.stats().late_drops > 0);
    assert_eq!(
        e.stats().tuples_in,
        packets.len() as u64,
        "all tuples accounted for"
    );
}

#[test]
fn sketches_track_the_oracle_under_random_interleavings() {
    // Sketch internals (SpaceSaving evictions, q-digest compressions, KMV
    // admissions) are order-*dependent*, so shuffled runs need not be
    // bit-identical — but every interleaving must stay within the sketch's
    // error budget of the same order-independent oracle. Each permutation
    // of one adversarial stream is checked against one brute-force answer.
    use forward_decay::core::distinct::DominanceSketch;
    use forward_decay::core::oracle::{adversarial_stream, Oracle, StreamConfig};
    use forward_decay::core::Timestamp;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let g = Monomial::quadratic();
    let landmark = 100.0;
    let t_q = Timestamp::from_secs_f64(175.0);
    let cfg = StreamConfig {
        n: 300,
        key_domain: 32,
        ..StreamConfig::default()
    };
    for seed in [3u64, 17] {
        let base = adversarial_stream(seed, &cfg);
        let mut oracle = Oracle::new(g, landmark);
        oracle.push_all(&base);
        let w = oracle.count(t_q);
        assert!(w > 0.0);
        let true_hh: Vec<u64> = oracle
            .heavy_hitters(0.1 + 1e-9, t_q)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for perm_seed in 0..4u64 {
            // Fisher–Yates with the in-repo rand shim.
            let mut events = base.clone();
            let mut rng = SmallRng::seed_from_u64(seed * 1000 + perm_seed);
            for i in (1..events.len()).rev() {
                events.swap(i, rng.gen_range(0..i + 1));
            }

            let mut hh = DecayedHeavyHitters::new(g, landmark, 256);
            let mut quant = DecayedQuantiles::new(g, landmark, 11, 0.05);
            let mut dom = DominanceSketch::new(g, landmark, 0.2, 7);
            for e in &events {
                hh.update(e.t, e.key);
                quant.update(e.t, e.key);
                dom.update(e.t, e.key);
            }

            // Heavy hitters: totals exact, every true φ-HH reported, every
            // reported key genuinely above φ − 1/capacity.
            assert!((hh.decayed_count(t_q) - w).abs() <= 1e-6 * w);
            let reported = hh.heavy_hitters(0.1, t_q);
            for k in &true_hh {
                assert!(
                    reported.iter().any(|h| h.item == *k),
                    "perm {perm_seed}: true heavy hitter {k} missing"
                );
            }
            for h in &reported {
                let true_count = oracle.item_count(h.item, t_q);
                assert!(
                    true_count >= (0.1 - 1.0 / 256.0) * w - 1e-6 * w,
                    "perm {perm_seed}: spurious heavy hitter {}",
                    h.item
                );
            }

            // Quantiles: the reported median's oracle rank stays in the
            // 0.5 ± 2ε band.
            let med = quant.quantile(0.5, t_q).expect("non-empty");
            let rank = oracle.rank(med, t_q);
            assert!(
                rank >= (0.5 - 0.1) * w - 1e-9 * w,
                "perm {perm_seed}: median {med} ranks {rank} of {w}"
            );
            if med > 0 {
                let below = oracle.rank(med - 1, t_q);
                assert!(
                    below <= (0.5 + 0.1) * w + 1e-9 * w,
                    "perm {perm_seed}: median {med} ranks {below} of {w}"
                );
            }

            // Dominance sketch: within its ε band of the true norm.
            let want = oracle.dominance(t_q);
            assert!(
                (dom.query(t_q) - want).abs() <= 2.0 * 0.2 * want,
                "perm {perm_seed}: dominance {} vs {want}",
                dom.query(t_q)
            );
        }
    }
}

#[test]
fn historical_queries_on_future_timestamps() {
    // Section VI-B: if items carry timestamps beyond the query time, the
    // query is "historical" and weights may exceed 1 — allowed and exact.
    let g = Monomial::quadratic();
    let mut s = DecayedSum::new(g, 0.0);
    s.update(10.0, 2.0); // item in the "future" of the query below
    s.update(4.0, 2.0);
    let at_5 = s.query(5.0);
    let expected = g.weight(0.0, 10.0, 5.0) * 2.0 + g.weight(0.0, 4.0, 5.0) * 2.0;
    assert!((at_5 - expected).abs() < 1e-12);
    assert!(g.weight(0.0, 10.0, 5.0) > 1.0);
}
