//! Section VI-B: out-of-order arrivals. Forward decay never relies on
//! timestamp order — the same trace shuffled and sorted must give identical
//! answers, both at the summary level and through the engine (given enough
//! watermark slack).

use forward_decay::core::aggregates::{DecayedCount, DecayedSum};
use forward_decay::core::decay::{Exponential, ForwardDecay, Monomial};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn jittered_trace() -> Vec<Packet> {
    TraceConfig {
        seed: 47,
        duration_secs: 50.0,
        rate_pps: 10_000.0,
        n_hosts: 300,
        ooo_jitter_secs: 3.0,
        ..Default::default()
    }
    .generate()
}

#[test]
fn summaries_are_arrival_order_independent() {
    let packets = jittered_trace();
    let mut sorted = packets.clone();
    sorted.sort_by_key(|p| p.ts);
    assert_ne!(
        packets.iter().map(|p| p.ts).collect::<Vec<_>>(),
        sorted.iter().map(|p| p.ts).collect::<Vec<_>>(),
        "trace must actually be out of order"
    );
    let t_q = 55.0;
    let g = Monomial::quadratic();

    // Exact aggregates: identical up to floating-point summation order.
    let feed_sum = |pkts: &[Packet]| {
        let mut s = DecayedSum::new(g, 0.0);
        for p in pkts {
            s.update(p.ts_secs(), p.len as f64);
        }
        s.query(t_q)
    };
    let (a, b) = (feed_sum(&packets), feed_sum(&sorted));
    assert!((a - b).abs() <= 1e-12 * a, "{a} vs {b}");

    let feed_count = |pkts: &[Packet]| {
        let mut c = DecayedCount::new(Exponential::new(0.1), 0.0);
        for p in pkts {
            c.update(p.ts_secs());
        }
        c.query(t_q)
    };
    let (a, b) = (feed_count(&packets), feed_count(&sorted));
    assert!((a - b).abs() <= 1e-9 * a);

    // Approximate sketches: their *guarantees* are order-independent (the
    // weights fed in are identical multisets), though internal tie-breaking
    // may differ — the heavy head and the quantile band must agree.
    let feed_hh = |pkts: &[Packet]| {
        let mut h = DecayedHeavyHitters::new(g, 0.0, 128);
        for p in pkts {
            h.update(p.ts_secs(), p.dst_host());
        }
        h.heavy_hitters(0.05, t_q)
            .iter()
            .map(|x| x.item)
            .collect::<Vec<_>>()
    };
    let (hh_a, hh_b) = (feed_hh(&packets), feed_hh(&sorted));
    assert_eq!(&hh_a[..3.min(hh_a.len())], &hh_b[..3.min(hh_b.len())]);

    let feed_quant = |pkts: &[Packet]| {
        let mut q = DecayedQuantiles::new(g, 0.0, 11, 0.02);
        for p in pkts {
            q.update(p.ts_secs(), p.len as u64);
        }
        q.quantile(0.5, t_q).unwrap() as f64
    };
    let (qa, qb) = (feed_quant(&packets), feed_quant(&sorted));
    assert!((qa - qb).abs() <= 0.05 * 2048.0, "medians {qa} vs {qb}");
}

#[test]
fn engine_with_slack_matches_sorted_run() {
    let packets = jittered_trace();
    let mut sorted = packets.clone();
    sorted.sort_by_key(|p| p.ts);

    let build = || {
        Query::builder("ooo")
            .group_by(|p| p.dst_host() % 20)
            .bucket_secs(10)
            // ±3 s jitter lets the watermark run up to 6 s ahead of a
            // straggler; 8 s of slack covers it.
            .slack_secs(8.0)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .build()
    };
    let mut e_ooo = Engine::new(build());
    let rows_ooo = e_ooo.run(packets.iter().copied());
    assert_eq!(e_ooo.stats().late_drops, 0, "slack must absorb all jitter");
    let rows_sorted = Engine::new(build()).run(sorted.iter().copied());
    assert_eq!(rows_ooo.len(), rows_sorted.len());
    for (a, b) in rows_ooo.iter().zip(&rows_sorted) {
        assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
        let (x, y) = (a.value.as_float().unwrap(), b.value.as_float().unwrap());
        assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
    }
}

#[test]
fn engine_without_slack_counts_late_drops() {
    let packets = jittered_trace();
    let q = Query::builder("no_slack")
        .bucket_secs(10)
        .aggregate(count_factory())
        .build();
    let mut e = Engine::new(q);
    for p in &packets {
        e.process(p);
    }
    e.finish();
    // With 3 s jitter and 10 s buckets, some arrivals land in closed
    // buckets and must be counted as dropped, not silently lost.
    assert!(e.stats().late_drops > 0);
    assert_eq!(
        e.stats().tuples_in,
        packets.len() as u64,
        "all tuples accounted for"
    );
}

#[test]
fn historical_queries_on_future_timestamps() {
    // Section VI-B: if items carry timestamps beyond the query time, the
    // query is "historical" and weights may exceed 1 — allowed and exact.
    let g = Monomial::quadratic();
    let mut s = DecayedSum::new(g, 0.0);
    s.update(10.0, 2.0); // item in the "future" of the query below
    s.update(4.0, 2.0);
    let at_5 = s.query(5.0);
    let expected = g.weight(0.0, 10.0, 5.0) * 2.0 + g.weight(0.0, 4.0, 5.0) * 2.0;
    assert!((at_5 - expected).abs() < 1e-12);
    assert!(g.weight(0.0, 10.0, 5.0) > 1.0);
}
