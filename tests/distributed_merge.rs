//! Section VI-B: distributed operation. Every summary type is built at four
//! simulated sites over disjoint shards of one trace, merged, and compared
//! to a single centralized run over the whole trace.

use forward_decay::core::aggregates::{DecayedCount, DecayedSum, DecayedVariance};
use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::core::distinct::{DominanceSketch, ExactDominance};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::sampling::{PrioritySampler, WeightedReservoir};
use forward_decay::core::Mergeable;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

const SITES: usize = 4;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 31,
        duration_secs: 45.0,
        rate_pps: 15_000.0,
        n_hosts: 800,
        ..Default::default()
    }
    .generate()
}

/// Shards by round-robin, builds per-site summaries with `make`, feeds via
/// `feed`, merges and returns (merged, centralized).
fn build_merged<S: Mergeable>(
    packets: &[Packet],
    make: impl Fn(usize) -> S,
    mut feed: impl FnMut(&mut S, &Packet),
) -> (S, S) {
    let mut sites: Vec<S> = (0..SITES).map(&make).collect();
    let mut central = make(0);
    for (i, p) in packets.iter().enumerate() {
        feed(&mut sites[i % SITES], p);
        feed(&mut central, p);
    }
    let mut merged = sites.remove(0);
    for s in &sites {
        merged.merge_from(s);
    }
    (merged, central)
}

#[test]
fn scalar_aggregates_merge_exactly() {
    let packets = trace();
    let t_q = 46.0;
    let g = Exponential::new(0.2); // strong decay → renormalization paths run

    let (m, c) = build_merged(
        &packets,
        |_| DecayedCount::new(g, 0.0),
        |s, p| s.update(p.ts_secs()),
    );
    assert!((m.query(t_q) - c.query(t_q)).abs() <= 1e-9 * c.query(t_q).max(1e-300));

    let (m, c) = build_merged(
        &packets,
        |_| DecayedSum::new(Monomial::quadratic(), 0.0),
        |s, p| s.update(p.ts_secs(), p.len as f64),
    );
    assert!((m.query(t_q) - c.query(t_q)).abs() <= 1e-9 * c.query(t_q));

    let (m, c) = build_merged(
        &packets,
        |_| DecayedVariance::new(Monomial::new(1.5), 0.0),
        |s, p| s.update(p.ts_secs(), p.len as f64),
    );
    let (mv, cv) = (m.query(t_q).unwrap(), c.query(t_q).unwrap());
    assert!((mv - cv).abs() <= 1e-6 * cv.max(1.0));
}

#[test]
fn heavy_hitters_merge_within_bounds() {
    let packets = trace();
    let t_q = 46.0;
    let g = Monomial::quadratic();
    let (m, c) = build_merged(
        &packets,
        |_| DecayedHeavyHitters::new(g, 0.0, 256),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
    );
    assert!((m.decayed_count(t_q) - c.decayed_count(t_q)).abs() <= 1e-6 * c.decayed_count(t_q));
    let top_m: Vec<u64> = m.heavy_hitters(0.02, t_q).iter().map(|h| h.item).collect();
    let top_c: Vec<u64> = c.heavy_hitters(0.02, t_q).iter().map(|h| h.item).collect();
    // The heavy head must be identical; tie-order may vary in the tail.
    assert_eq!(&top_m[..3.min(top_m.len())], &top_c[..3.min(top_c.len())]);
}

#[test]
fn quantiles_merge_within_bounds() {
    let packets = trace();
    let t_q = 46.0;
    let (m, c) = build_merged(
        &packets,
        |_| DecayedQuantiles::new(Monomial::quadratic(), 0.0, 11, 0.02),
        |s, p| s.update(p.ts_secs(), p.len as u64),
    );
    for phi in [0.25, 0.5, 0.75] {
        let (a, b) = (
            m.quantile(phi, t_q).unwrap() as f64,
            c.quantile(phi, t_q).unwrap() as f64,
        );
        // Both are ε-approximations of the same distribution: allow a few
        // length values of slack.
        assert!(
            (a - b).abs() <= 160.0,
            "phi = {phi}: merged {a}, central {b}"
        );
    }
}

#[test]
fn distinct_sketch_merges_like_exact() {
    let packets = trace();
    let t_q = 46.0;
    let g = Monomial::new(1.0);
    let (m_sketch, _) = build_merged(
        &packets,
        |_| DominanceSketch::new(g, 0.0, 0.15, 77),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
    );
    let mut exact = ExactDominance::new(g, 0.0);
    for p in &packets {
        exact.update(p.ts_secs(), p.dst_host());
    }
    let (est, truth) = (m_sketch.query(t_q), exact.query(t_q));
    assert!(
        (est - truth).abs() / truth < 0.45,
        "merged sketch {est}, exact {truth}"
    );
}

#[test]
fn samplers_merge_preserve_size_and_recency_bias() {
    let packets = trace();
    let g = Exponential::new(0.15);
    let (m, _) = build_merged(
        &packets,
        |site| WeightedReservoir::<u64, _>::new(g, 0.0, 100, site as u64),
        |s, p| s.update(p.ts_secs(), &p.ts),
    );
    let sample = m.sample();
    assert_eq!(sample.len(), 100);
    // With a ~4.6 s half-life over 45 s, ~89% of the decayed weight lies in
    // the last 15 s (1 − e^{−0.15·15}); samples concentrate there.
    let recent = sample.iter().filter(|e| e.t > 30.0).count();
    assert!(recent > 75, "only {recent}/100 samples from the last 15 s");

    let (m, c) = build_merged(
        &packets,
        |site| PrioritySampler::<u64, _>::new(Monomial::new(1.0), 0.0, 50, site as u64),
        |s, p| s.update(p.ts_secs(), &p.dst_host()),
    );
    // The merged estimator still targets the same decayed count.
    let (em, ec) = (
        m.estimate_decayed_count(46.0),
        c.estimate_decayed_count(46.0),
    );
    assert!((em - ec).abs() / ec < 0.35, "merged {em}, central {ec}");
}

#[test]
fn engine_level_distributed_merge_via_merge_boxed() {
    // Split one bucket's packets across two aggregator instances (as two
    // LFTA partials would) and merge through the engine's UDAF interface.
    let packets = trace();
    let factory = fwd_sum_factory(Monomial::quadratic(), |p: &Packet| p.len as f64);
    let mut a = factory.make(0);
    let mut b = factory.make(0);
    let mut whole = factory.make(0);
    for (i, p) in packets.iter().enumerate() {
        whole.update(p);
        if i % 2 == 0 {
            a.update(p);
        } else {
            b.update(p);
        }
    }
    a.merge_boxed(b);
    let (x, y) = (
        a.emit(60.0).as_float().unwrap(),
        whole.emit(60.0).as_float().unwrap(),
    );
    assert!((x - y).abs() <= 1e-9 * y);
}
