//! Section III-A of the paper: forward and backward exponential decay are
//! the *same* decay model. These tests check the equivalence not just on the
//! weight formula (unit-tested in fd-core) but through entire summaries and
//! the engine pipeline, against the backward-decay baseline machinery.

use forward_decay::core::aggregates::DecayedSum;
use forward_decay::core::backward::ExponentialHistogram;
use forward_decay::core::decay::{BackExponential, BackwardDecay, Exponential};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 23,
        duration_secs: 60.0,
        rate_pps: 10_000.0,
        n_hosts: 500,
        ..Default::default()
    }
    .generate()
}

#[test]
fn forward_exact_sum_equals_backward_brute_force() {
    let packets = trace();
    let alpha = 0.08;
    let fwd = Exponential::new(alpha);
    let bwd = BackExponential::new(alpha);
    let t_q = 60.0;

    let mut sum = DecayedSum::new(fwd, 0.0);
    for p in &packets {
        sum.update(p.ts_secs(), p.len as f64);
    }
    let backward_truth: f64 = packets
        .iter()
        .map(|p| bwd.weight(p.ts_secs(), t_q) * p.len as f64)
        .sum();
    let forward_answer = sum.query(t_q);
    assert!(
        (forward_answer - backward_truth).abs() <= 1e-9 * backward_truth,
        "{forward_answer} vs {backward_truth}"
    );
}

#[test]
fn forward_exact_beats_eh_approximation_of_the_same_query() {
    // The EH answers the same backward-exponential query approximately; the
    // forward computation answers it exactly. Check both against truth.
    let packets = trace();
    let alpha = 0.05;
    let eps = 0.05;
    let t_q = 60.0;
    let bwd = BackExponential::new(alpha);
    let truth: f64 = packets.iter().map(|p| bwd.weight(p.ts_secs(), t_q)).sum();

    let mut fwd_sum = DecayedSum::new(Exponential::new(alpha), 0.0);
    let mut eh = ExponentialHistogram::with_epsilon(eps);
    for p in &packets {
        fwd_sum.update(p.ts_secs(), 1.0);
        eh.insert(p.ts_secs());
    }
    let fwd_err = (fwd_sum.query(t_q) - truth).abs() / truth;
    let eh_err = (eh.decayed_query(&bwd, t_q) - truth).abs() / truth;
    assert!(fwd_err < 1e-9, "forward must be exact, err = {fwd_err}");
    assert!(eh_err <= 2.0 * eps, "EH err {eh_err} beyond its bound");
    assert!(fwd_err < eh_err, "exact must beat approximate");
}

#[test]
fn engine_forward_exp_agrees_with_engine_eh_backward_exp() {
    // The full pipeline: same query once under forward exponential decay
    // (exact) and once through the EH baseline (approximate). Results agree
    // within the EH error bound, per group.
    let packets = trace();
    let alpha = 0.03;
    let eps = 0.05;

    let fwd_q = Query::builder("fwd")
        .group_by(|p| p.dst_host() % 50)
        .bucket_secs(60)
        .aggregate(fwd_count_factory(Exponential::new(alpha)))
        .build();
    let bwd_q = Query::builder("bwd")
        .group_by(|p| p.dst_host() % 50)
        .bucket_secs(60)
        .aggregate(eh_count_factory(
            eps,
            DynBackward::from_decay(BackExponential::new(alpha)),
        ))
        .build();
    let fwd_rows = Engine::new(fwd_q).run(packets.iter().copied());
    let bwd_rows = Engine::new(bwd_q).run(packets.iter().copied());
    assert_eq!(fwd_rows.len(), bwd_rows.len());
    for (f, b) in fwd_rows.iter().zip(&bwd_rows) {
        assert_eq!((f.bucket_start, f.key), (b.bucket_start, b.key));
        let (x, y) = (f.value.as_float().unwrap(), b.value.as_float().unwrap());
        assert!(
            (x - y).abs() <= 3.0 * eps * x.max(1.0),
            "group {}: forward {x}, EH-backward {y}",
            f.key
        );
    }
}

#[test]
fn decayed_hh_landmark_choice_is_irrelevant_for_exponential() {
    // Because forward exp ≡ backward exp, the landmark must not affect
    // heavy-hitter answers.
    let packets = trace();
    let alpha = 0.1;
    let mut hh_a = DecayedHeavyHitters::new(Exponential::new(alpha), 0.0, 100);
    let mut hh_b = DecayedHeavyHitters::new(Exponential::new(alpha), -1000.0, 100);
    for p in &packets {
        hh_a.update(p.ts_secs(), p.dst_host());
        hh_b.update(p.ts_secs(), p.dst_host());
    }
    let (a, b) = (
        hh_a.heavy_hitters(0.05, 60.0),
        hh_b.heavy_hitters(0.05, 60.0),
    );
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.item, y.item);
        assert!((x.count - y.count).abs() <= 1e-6 * x.count.max(1.0));
    }
}
