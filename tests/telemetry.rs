//! Live-telemetry integration tests: the whole point of the registry is
//! that it is readable *while the pipeline runs* — from the dispatching
//! thread between batches, and from an unrelated observer thread — and
//! that once the run is over its counters agree exactly with the
//! engine's own [`EngineStats`].

use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use forward_decay::core::decay::Exponential;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn decayed_query() -> Query {
    Query::builder("telemetry")
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_sum_factory(Exponential::new(0.05), |p| p.len as f64))
        .lfta_slots(1024)
        .build()
}

#[test]
fn gauges_are_readable_mid_stream_before_finish() {
    let trace = TraceConfig {
        seed: 11,
        duration_secs: 120.0,
        rate_pps: 10_000.0,
        n_hosts: 500,
        ..Default::default()
    };
    let mut e = ShardedEngine::try_new(decayed_query(), 4).expect("spawn shards");
    let tel = Arc::clone(e.telemetry());
    let mut mid_snapshots = 0usize;
    for (i, p) in trace.iter().enumerate() {
        e.process(&p);
        if i == 300_000 {
            // Force a punctuation broadcast so the workers have applied a
            // watermark, then sample while the stream is still open.
            e.punctuate(p.ts);
            let s = tel.snapshot();
            mid_snapshots += 1;
            assert_eq!(s.tuples_in, 300_001, "admission mirror lags");
            assert!(s.dispatcher_watermark_us >= p.ts);
            assert_eq!(s.rows_out, 0, "no rows before finish()");
            assert!(
                s.shards.iter().map(|sh| sh.batches_sent).sum::<u64>() > 0,
                "batches should have been dispatched by now"
            );
            for (i, sh) in s.shards.iter().enumerate() {
                // Queue depth is sampled live: bounded by the channel, and
                // consistent (inc/dec are unconditional on both sides).
                assert!(sh.queue_depth <= 64, "shard {i} depth {}", sh.queue_depth);
                // Each worker has applied the broadcast watermark or is
                // at most one punctuation behind the dispatcher.
                assert!(
                    sh.watermark_lag_us <= s.dispatcher_watermark_us,
                    "shard {i} lag {} vs dispatcher {}",
                    sh.watermark_lag_us,
                    s.dispatcher_watermark_us
                );
            }
        }
    }
    assert_eq!(mid_snapshots, 1);
    let rows = e.finish();
    assert!(!rows.is_empty());
    // After finish: quiescent and exact.
    let s = tel.snapshot();
    let stats = e.stats();
    assert_eq!(s.tuples_in, stats.tuples_in);
    assert_eq!(s.rows_out, stats.rows_out);
    for sh in &s.shards {
        assert_eq!(sh.queue_depth, 0);
        assert_eq!(sh.watermark_lag_us, 0);
    }
}

#[test]
fn observer_thread_watches_a_live_run_via_reporter() {
    // A Reporter on another thread samples the registry while the
    // dispatcher floods tuples; every sample it takes must be internally
    // sane, and the series of tuples_in samples must be non-decreasing.
    let trace = TraceConfig {
        seed: 12,
        duration_secs: 180.0,
        rate_pps: 20_000.0,
        n_hosts: 1_000,
        ..Default::default()
    };
    let mut e = ShardedEngine::try_new(decayed_query(), 3).expect("spawn shards");
    let seen: Arc<Mutex<Vec<MetricsSnapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let mut reporter = Reporter::spawn(
        Arc::clone(e.telemetry()),
        Duration::from_millis(2),
        move |s| sink.lock().unwrap().push(s),
    );
    let rows = e.run(trace.iter());
    reporter.stop();
    assert!(!rows.is_empty());
    let samples = seen.lock().unwrap();
    assert!(
        samples.len() >= 2,
        "reporter sampled only {} times",
        samples.len()
    );
    let mut prev = 0u64;
    for s in samples.iter() {
        assert!(s.tuples_in >= prev, "tuples_in went backwards");
        prev = s.tuples_in;
        assert!(s.filtered + s.late_drops <= s.tuples_in);
        assert_eq!(s.worker_panics, 0);
    }
    // At least one mid-run sample caught the stream in flight.
    assert!(
        samples.iter().any(|s| s.tuples_in > 0 && s.rows_out == 0),
        "no sample observed the run before finish()"
    );
}

#[test]
fn disabled_telemetry_still_records_final_counters() {
    let trace = TraceConfig {
        seed: 13,
        duration_secs: 60.0,
        rate_pps: 5_000.0,
        n_hosts: 200,
        ..Default::default()
    };
    let mut e = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .live_telemetry(false);
    let rows = e.run(trace.iter());
    let stats = e.stats();
    let s = e.telemetry().snapshot();
    // Hot-path mirrors were off, but finish() stores the end-of-run
    // counters unconditionally.
    assert_eq!(s.tuples_in, stats.tuples_in);
    assert_eq!(s.late_drops, stats.late_drops);
    assert_eq!(s.rows_out, rows.len() as u64);
    assert_eq!(s.buckets_closed, stats.buckets_closed);
    // ...while the per-batch histograms stayed silent.
    for sh in &s.shards {
        assert_eq!(sh.batch_ns.count, 0);
        assert_eq!(sh.tuples_processed, 0);
    }
}

#[test]
fn serialized_snapshots_carry_the_exact_counters() {
    let trace = TraceConfig {
        seed: 14,
        duration_secs: 90.0,
        rate_pps: 10_000.0,
        n_hosts: 300,
        ..Default::default()
    };
    let mut e = ShardedEngine::try_new(decayed_query(), 2).expect("spawn shards");
    e.run(trace.iter());
    let stats = e.stats();
    let s = e.telemetry().snapshot();
    let prom = s.to_prometheus();
    assert!(prom.contains(&format!("fd_tuples_in {}", stats.tuples_in)));
    assert!(prom.contains(&format!("fd_rows_out {}", stats.rows_out)));
    assert!(prom.contains("fd_shard_tuples_processed{shard=\"1\"}"));
    let json = s.to_json();
    assert!(json.contains(&format!("\"tuples_in\":{}", stats.tuples_in)));
    assert!(json.contains(&format!("\"rows_out\":{}", stats.rows_out)));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

/// Soak: several million tuples through a fully instrumented sharded
/// pipeline (CI re-runs this with `-C debug-assertions` to arm the
/// numeric guards). The registry must stay consistent throughout:
/// conservation of tuples, bounded queues, no panics.
#[test]
fn telemetry_soak_conserves_tuples_under_load() {
    let trace = TraceConfig {
        seed: 15,
        duration_secs: 240.0,
        rate_pps: 15_000.0,
        n_hosts: 2_000,
        ooo_jitter_secs: 0.25,
        ..Default::default()
    };
    let q = Query::builder("soak")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .slack_secs(1.0)
        .aggregate(fwd_sum_factory(Exponential::new(0.5), |p| p.len as f64))
        .lfta_slots(2048)
        .build();
    let mut e = ShardedEngine::try_new(q, 4).expect("spawn shards");
    let tel = Arc::clone(e.telemetry());
    for (i, p) in trace.iter().enumerate() {
        e.process(&p);
        if i % 400_000 == 0 {
            let s = tel.snapshot();
            assert!(s.filtered + s.late_drops <= s.tuples_in);
            for sh in &s.shards {
                assert!(sh.queue_depth <= 64);
            }
        }
    }
    let rows = e.finish();
    let stats = e.stats();
    assert!(stats.tuples_in > 3_000_000, "soak too short");
    assert!(!rows.is_empty());
    let s = tel.snapshot();
    assert_eq!(s.worker_panics, 0);
    assert_eq!(
        s.shards.iter().map(|sh| sh.tuples_processed).sum::<u64>(),
        stats.tuples_in - stats.filtered - stats.late_drops,
        "tuples lost or duplicated between dispatcher and workers"
    );
    let batches: u64 = s.shards.iter().map(|sh| sh.batches_sent).sum();
    let batch_samples: u64 = s.shards.iter().map(|sh| sh.batch_ns.count).sum();
    assert_eq!(batches, batch_samples, "every batch must be timed");
    assert_eq!(tel.worker_panics.load(Relaxed), 0);
}

#[test]
fn supervision_counters_surface_in_every_export_format() {
    use forward_decay::engine::fault::{FaultKind, FaultPlan};

    // A clean supervised run: checkpoints tick, nothing else does.
    let trace = TraceConfig {
        seed: 23,
        duration_secs: 30.0,
        rate_pps: 10_000.0,
        n_hosts: 500,
        ..Default::default()
    };
    let mut e = ShardedEngine::try_new(decayed_query(), 3)
        .expect("spawn shards")
        .checkpoint_every(4_096);
    let rows = e.run(trace.iter());
    assert!(!rows.is_empty());
    let s = e.telemetry().snapshot();
    assert!(s.checkpoints > 0, "supervised workers must checkpoint");
    assert_eq!(s.restarts, 0);
    assert_eq!(s.replayed_batches, 0);
    assert_eq!(s.replayed_tuples, 0);
    assert_eq!(s.degraded_shards, 0);
    assert_eq!(s.dropped_degraded, 0);

    let prom = s.to_prometheus();
    for name in [
        "fd_restarts",
        "fd_checkpoints",
        "fd_replayed_batches",
        "fd_replayed_tuples",
        "fd_degraded_shards",
        "fd_dropped_degraded",
    ] {
        assert!(prom.contains(name), "{name} missing from:\n{prom}");
    }
    let json = s.to_json();
    for key in ["\"restarts\":", "\"checkpoints\":", "\"replayed_tuples\":"] {
        assert!(json.contains(key), "{key} missing from:\n{json}");
    }
    assert!(json.contains(&format!("\"checkpoints\":{}", s.checkpoints)));

    // A faulted run: the same counters move, and batch accounting keeps
    // dispatches and replays separate (batch_ns times *processed*
    // batches, so replayed work shows up there and not in batches_sent).
    let mut e = ShardedEngine::try_new(decayed_query(), 3)
        .expect("spawn shards")
        .checkpoint_every(4_096)
        .inject_fault(FaultPlan {
            shard: 1,
            kind: FaultKind::PanicAtTuple(50_000),
        });
    let rows = e.run(trace.iter());
    assert!(!rows.is_empty());
    let s = e.telemetry().snapshot();
    assert_eq!(s.worker_panics, 1);
    assert_eq!(s.restarts, 1);
    assert!(s.replayed_batches > 0);
    assert!(s.replayed_tuples > 0);
    let sent: u64 = s.shards.iter().map(|sh| sh.batches_sent).sum();
    let timed: u64 = s.shards.iter().map(|sh| sh.batch_ns.count).sum();
    assert!(
        timed >= sent,
        "replayed batches are timed but not re-counted as dispatched \
         (timed {timed} < sent {sent})"
    );
    assert!(s.to_prometheus().contains("fd_restarts 1"));
}

#[test]
fn durability_counters_surface_in_every_export_format() {
    use forward_decay::engine::durability::DurabilityOptions;
    use forward_decay::engine::fault::{DiskFault, DiskFaultKind, FaultKind, FaultPlan};

    let dir = std::env::temp_dir().join(format!("fd-telemetry-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace = TraceConfig {
        seed: 29,
        duration_secs: 5.0,
        rate_pps: 10_000.0,
        n_hosts: 300,
        ..Default::default()
    };
    let packets: Vec<Packet> = trace.iter().collect();

    // A healthy durable run: WAL bytes and checkpoints tick, nothing
    // degrades, nothing is truncated or replayed.
    let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(1_024)
        .try_durable(&dir, DurabilityOptions::default())
        .expect("open durable store");
    e.try_process_packets(&packets).expect("feed");
    e.durable_commit(packets.len() as u64).expect("commit");
    let rows = e.finish();
    assert!(!rows.is_empty());
    let s = e.telemetry().snapshot();
    assert!(s.wal_bytes_written > 0, "the WAL must have been written");
    assert!(s.checkpoints_persisted > 0, "checkpoints must hit disk");
    assert_eq!(s.wal_records_truncated, 0);
    assert_eq!(s.recovery_replayed_batches, 0);
    assert_eq!(s.durability_degraded, 0);

    let prom = s.to_prometheus();
    for name in [
        "fd_wal_bytes_written",
        "fd_wal_records_truncated",
        "fd_checkpoints_persisted",
        "fd_recovery_replayed_batches",
        "fd_durability_degraded",
    ] {
        assert!(prom.contains(name), "{name} missing from:\n{prom}");
    }
    assert!(prom.contains(&format!("fd_wal_bytes_written {}", s.wal_bytes_written)));
    let json = s.to_json();
    for key in [
        "\"wal_bytes_written\":",
        "\"wal_records_truncated\":",
        "\"checkpoints_persisted\":",
        "\"recovery_replayed_batches\":",
        "\"durability_degraded\":",
    ] {
        assert!(json.contains(key), "{key} missing from:\n{json}");
    }
    assert!(json.contains(&format!(
        "\"checkpoints_persisted\":{}",
        s.checkpoints_persisted
    )));
    drop(e);

    // Reopening the store moves the recovery-side counters.
    let (mut e, report) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(1_024)
        .try_durable(&dir, DurabilityOptions::default())
        .expect("reopen durable store");
    assert!(report.resumed);
    e.finish();
    let s = e.telemetry().snapshot();
    assert_eq!(s.recovery_replayed_batches, report.replayed_batches);
    assert_eq!(s.wal_records_truncated, report.truncated_records);
    drop(e);
    let _ = std::fs::remove_dir_all(&dir);

    // A degraded run: the gauge flips to 1 in both export formats.
    let dir = std::env::temp_dir().join(format!("fd-telemetry-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(1_024)
        .inject_fault(FaultPlan {
            shard: 0,
            kind: FaultKind::Disk(DiskFault {
                kind: DiskFaultKind::Enospc,
                at_op: 1,
            }),
        })
        .try_durable(&dir, DurabilityOptions::default())
        .expect("open durable store");
    e.try_process_packets(&packets).expect("feed");
    e.durable_commit(packets.len() as u64).expect("commit");
    let rows2 = e.finish();
    assert_eq!(rows.len(), rows2.len(), "degradation must not change rows");
    assert!(e.durability_degraded());
    let s = e.telemetry().snapshot();
    assert_eq!(s.durability_degraded, 1);
    assert!(s.to_prometheus().contains("fd_durability_degraded 1"));
    assert!(s.to_json().contains("\"durability_degraded\":1"));
    drop(e);
    let _ = std::fs::remove_dir_all(&dir);
}
