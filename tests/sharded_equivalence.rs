//! Differential tests: the sharded engine must be semantically identical
//! to the single-threaded engine.
//!
//! Forward decay's mergeability (Section VI-B: frozen numerators
//! `g(t_i − L)` let partial summaries over disjoint substreams combine
//! exactly) is what makes sharding *correct*, not just fast. These tests
//! pin that down by replaying identical streams — in-order, out-of-order
//! under watermark slack, punctuation-driven — through `Engine` and
//! `ShardedEngine` and requiring byte-identical sorted rows.

use std::sync::Arc;

use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::engine::driver::with_heartbeats;
use forward_decay::engine::prelude::*;
use forward_decay::engine::udaf::FnFactory;
use forward_decay::gen::TraceConfig;

/// Replays the same events through both engines and asserts exact row
/// equality: same length, same (bucket, key) order, same values.
fn assert_equivalent(make_query: impl Fn() -> Query, events: &[StreamEvent], n_shards: usize) {
    let mut single = Engine::new(make_query());
    for ev in events {
        single.process_event(ev);
    }
    let expected = single.finish();

    let mut sharded = ShardedEngine::try_new(make_query(), n_shards).expect("spawn shards");
    sharded.process_batch(events);
    let got = sharded.finish();

    assert_eq!(
        expected.len(),
        got.len(),
        "row count: single {} vs {n_shards}-shard {}",
        expected.len(),
        got.len()
    );
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key));
        assert_eq!(e.value, g.value, "key {} bucket {}", e.key, e.bucket_start);
    }
    // Admission must also agree: same tuples accepted, filtered, dropped.
    let (s, p) = (single.stats(), sharded.stats());
    assert_eq!(s.tuples_in, p.tuples_in);
    assert_eq!(s.filtered, p.filtered);
    assert_eq!(s.late_drops, p.late_drops);
}

fn data(packets: Vec<Packet>) -> Vec<StreamEvent> {
    packets.into_iter().map(StreamEvent::Data).collect()
}

fn trace(seed: u64, ooo_jitter_secs: f64) -> Vec<Packet> {
    TraceConfig {
        seed,
        duration_secs: 180.0,
        rate_pps: 2_000.0,
        n_hosts: 500,
        zipf_skew: 1.1,
        ooo_jitter_secs,
        ..Default::default()
    }
    .generate()
}

fn count_query() -> Query {
    Query::builder("count")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .two_level(true)
        .lfta_slots(256)
        .build()
}

#[test]
fn in_order_stream_is_identical() {
    assert_equivalent(count_query, &data(trace(11, 0.0)), 4);
}

#[test]
fn out_of_order_stream_under_slack_is_identical() {
    // 2 s of jitter against 5 s of slack: out-of-order tuples are accepted
    // and late ones (if any) dropped by the *same* global decision.
    let q = || {
        Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(5.0)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(256)
            .build()
    };
    assert_equivalent(q, &data(trace(12, 2.0)), 4);
}

#[test]
fn out_of_order_stream_without_slack_drops_identically() {
    // No slack: jitter produces real late drops; both paths must drop the
    // exact same tuples (checked via stats inside assert_equivalent).
    assert_equivalent(count_query, &data(trace(13, 1.5)), 4);
}

#[test]
fn punctuated_stream_is_identical() {
    // Heartbeats interleaved with data close buckets through idle gaps.
    let mut packets = trace(14, 0.0);
    packets.retain(|p| p.ts < 60_000_000 || p.ts >= 150_000_000); // idle gap
    let events = with_heartbeats(packets, 30 * MICROS_PER_SEC);
    assert_equivalent(count_query, &events, 4);
}

#[test]
fn punctuation_only_stream_is_identical() {
    // No data at all: both engines emit nothing and agree on stats.
    let events: Vec<StreamEvent> = (1..10)
        .map(|i| StreamEvent::Punctuation(i * 60 * MICROS_PER_SEC))
        .collect();
    assert_equivalent(count_query, &events, 4);
}

#[test]
fn decayed_and_udaf_aggregates_are_identical() {
    // Forward-decayed sums (single-level: per-group updates in arrival
    // order on both paths) and a UDAF summary (SpaceSaving heavy hitters,
    // never split): byte-identical emissions under key sharding.
    let fwd = || {
        Query::builder("fwd_sum")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .two_level(false)
            .build()
    };
    let exp = || {
        Query::builder("fwd_exp")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_count_factory(Exponential::new(0.1)))
            .two_level(false)
            .build()
    };
    let hh = || {
        Query::builder("hh")
            .group_by(|p| p.dst_host() % 16)
            .bucket_secs(60)
            .aggregate(fwd_hh_factory(Monomial::quadratic(), 0.05, 0.01, |p| {
                p.dst_key()
            }))
            .build()
    };
    let events = data(trace(15, 0.0));
    assert_equivalent(fwd, &events, 4);
    assert_equivalent(exp, &events, 4);
    assert_equivalent(hh, &events, 4);
}

#[test]
fn shard_counts_from_one_to_eight_agree() {
    let events = data(trace(16, 0.5));
    let q = || {
        Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(2.0)
            .aggregate(count_factory())
            .build()
    };
    for n in [1, 2, 3, 8] {
        assert_equivalent(q, &events, n);
    }
}

#[test]
fn round_robin_routing_matches_for_additive_aggregates() {
    // Round-robin splits every group across all shards; count state is a
    // pair of scalars that add exactly, so the merge path must reassemble
    // the single-threaded answer bit for bit.
    let events = data(trace(17, 0.0));
    let mut single = Engine::new(count_query());
    for ev in &events {
        single.process_event(ev);
    }
    let expected = single.finish();
    let mut sharded = ShardedEngine::try_new(count_query(), 4)
        .expect("spawn shards")
        .routing(ShardBy::RoundRobin);
    sharded.process_batch(&events);
    let got = sharded.finish();
    assert_eq!(expected.len(), got.len());
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key));
        assert_eq!(e.value, g.value);
    }
}

/// 8 shards × 1M tuples with jitter, slack, a selection and a multi-part
/// aggregate: the full pipeline under sustained load. Run with
/// `cargo test --test sharded_equivalence -- --ignored`.
#[test]
#[ignore = "stress test: ~1M tuples through 9 threads"]
fn stress_8_shards_1m_tuples() {
    let packets = TraceConfig {
        seed: 99,
        duration_secs: 600.0,
        rate_pps: 1_700.0,
        n_hosts: 10_000,
        zipf_skew: 1.1,
        ooo_jitter_secs: 1.0,
        ..Default::default()
    }
    .generate();
    assert!(packets.len() >= 1_000_000, "got {}", packets.len());
    let q = || -> Query {
        let combo: Arc<FnFactory> = multi_factory(vec![
            count_factory(),
            sum_factory(|p| p.len as f64),
            fwd_count_factory(Monomial::quadratic()),
        ]);
        Query::builder("stress")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(3.0)
            .aggregate(combo)
            .two_level(false)
            .build()
    };
    assert_equivalent(q, &data(packets), 8);
}
