//! Differential tests: the sharded engine must be semantically identical
//! to the single-threaded engine.
//!
//! Forward decay's mergeability (Section VI-B: frozen numerators
//! `g(t_i − L)` let partial summaries over disjoint substreams combine
//! exactly) is what makes sharding *correct*, not just fast. These tests
//! pin that down by replaying identical streams — in-order, out-of-order
//! under watermark slack, punctuation-driven — through `Engine` and
//! `ShardedEngine` and requiring byte-identical sorted rows.

use std::sync::Arc;

use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::engine::driver::with_heartbeats;
use forward_decay::engine::prelude::*;
use forward_decay::engine::udaf::FnFactory;
use forward_decay::gen::TraceConfig;

/// Replays the same events through both engines and asserts exact row
/// equality: same length, same (bucket, key) order, same values.
fn assert_equivalent(make_query: impl Fn() -> Query, events: &[StreamEvent], n_shards: usize) {
    let mut single = Engine::new(make_query());
    for ev in events {
        single.process_event(ev);
    }
    let expected = single.finish();

    let mut sharded = ShardedEngine::try_new(make_query(), n_shards).expect("spawn shards");
    sharded.process_batch(events);
    let got = sharded.finish();

    assert_eq!(
        expected.len(),
        got.len(),
        "row count: single {} vs {n_shards}-shard {}",
        expected.len(),
        got.len()
    );
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key));
        assert_eq!(e.value, g.value, "key {} bucket {}", e.key, e.bucket_start);
    }
    // Admission must also agree: same tuples accepted, filtered, dropped.
    let (s, p) = (single.stats(), sharded.stats());
    assert_eq!(s.tuples_in, p.tuples_in);
    assert_eq!(s.filtered, p.filtered);
    assert_eq!(s.late_drops, p.late_drops);
}

fn data(packets: Vec<Packet>) -> Vec<StreamEvent> {
    packets.into_iter().map(StreamEvent::Data).collect()
}

fn trace(seed: u64, ooo_jitter_secs: f64) -> Vec<Packet> {
    TraceConfig {
        seed,
        duration_secs: 180.0,
        rate_pps: 2_000.0,
        n_hosts: 500,
        zipf_skew: 1.1,
        ooo_jitter_secs,
        ..Default::default()
    }
    .generate()
}

fn count_query() -> Query {
    Query::builder("count")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .two_level(true)
        .lfta_slots(256)
        .build()
}

#[test]
fn in_order_stream_is_identical() {
    assert_equivalent(count_query, &data(trace(11, 0.0)), 4);
}

#[test]
fn out_of_order_stream_under_slack_is_identical() {
    // 2 s of jitter against 5 s of slack: out-of-order tuples are accepted
    // and late ones (if any) dropped by the *same* global decision.
    let q = || {
        Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(5.0)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(256)
            .build()
    };
    assert_equivalent(q, &data(trace(12, 2.0)), 4);
}

#[test]
fn out_of_order_stream_without_slack_drops_identically() {
    // No slack: jitter produces real late drops; both paths must drop the
    // exact same tuples (checked via stats inside assert_equivalent).
    assert_equivalent(count_query, &data(trace(13, 1.5)), 4);
}

#[test]
fn punctuated_stream_is_identical() {
    // Heartbeats interleaved with data close buckets through idle gaps.
    let mut packets = trace(14, 0.0);
    packets.retain(|p| p.ts < 60_000_000 || p.ts >= 150_000_000); // idle gap
    let events = with_heartbeats(packets, 30 * MICROS_PER_SEC);
    assert_equivalent(count_query, &events, 4);
}

#[test]
fn punctuation_only_stream_is_identical() {
    // No data at all: both engines emit nothing and agree on stats.
    let events: Vec<StreamEvent> = (1..10)
        .map(|i| StreamEvent::Punctuation(i * 60 * MICROS_PER_SEC))
        .collect();
    assert_equivalent(count_query, &events, 4);
}

#[test]
fn decayed_and_udaf_aggregates_are_identical() {
    // Forward-decayed sums (single-level: per-group updates in arrival
    // order on both paths) and a UDAF summary (SpaceSaving heavy hitters,
    // never split): byte-identical emissions under key sharding.
    let fwd = || {
        Query::builder("fwd_sum")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .two_level(false)
            .build()
    };
    let exp = || {
        Query::builder("fwd_exp")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_count_factory(Exponential::new(0.1)))
            .two_level(false)
            .build()
    };
    let hh = || {
        Query::builder("hh")
            .group_by(|p| p.dst_host() % 16)
            .bucket_secs(60)
            .aggregate(fwd_hh_factory(Monomial::quadratic(), 0.05, 0.01, |p| {
                p.dst_key()
            }))
            .build()
    };
    let events = data(trace(15, 0.0));
    assert_equivalent(fwd, &events, 4);
    assert_equivalent(exp, &events, 4);
    assert_equivalent(hh, &events, 4);
}

#[test]
fn shard_counts_from_one_to_eight_agree() {
    let events = data(trace(16, 0.5));
    let q = || {
        Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(2.0)
            .aggregate(count_factory())
            .build()
    };
    for n in [1, 2, 3, 8] {
        assert_equivalent(q, &events, n);
    }
}

#[test]
fn round_robin_routing_matches_for_additive_aggregates() {
    // Round-robin splits every group across all shards; count state is a
    // pair of scalars that add exactly, so the merge path must reassemble
    // the single-threaded answer bit for bit.
    let events = data(trace(17, 0.0));
    let mut single = Engine::new(count_query());
    for ev in &events {
        single.process_event(ev);
    }
    let expected = single.finish();
    let mut sharded = ShardedEngine::try_new(count_query(), 4)
        .expect("spawn shards")
        .routing(ShardBy::RoundRobin);
    sharded.process_batch(&events);
    let got = sharded.finish();
    assert_eq!(expected.len(), got.len());
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key));
        assert_eq!(e.value, g.value);
    }
}

// ---------------------------------------------------------------------------
// Multi-producer ingress fabric: the same differential contract, with P
// ingress producers scattering into the shard fabric. The single-threaded
// engine — itself pinned to the brute-force reference by the differential
// oracle harness (`tests/differential.rs`) — is the oracle throughout.
// ---------------------------------------------------------------------------

/// A shorter trace for the P × shards matrix (nine fabric runs per test).
fn fabric_trace(seed: u64, ooo_jitter_secs: f64) -> Vec<Packet> {
    TraceConfig {
        seed,
        duration_secs: 60.0,
        rate_pps: 2_000.0,
        n_hosts: 500,
        zipf_skew: 1.1,
        ooo_jitter_secs,
        ..Default::default()
    }
    .generate()
}

/// Runs the single-threaded oracle once: sorted rows plus admission stats.
fn oracle_run(make_query: &impl Fn() -> Query, packets: &[Packet]) -> (Vec<Row>, EngineStats) {
    let mut single = Engine::new(make_query());
    for p in packets {
        single.process_event(&StreamEvent::Data(*p));
    }
    let rows = single.finish();
    let stats = single.stats();
    (rows, stats)
}

/// Feeds the fabric in coordinator mode and requires byte-identical rows
/// and admission stats against the precomputed oracle run.
fn assert_fabric_matches(
    make_query: &impl Fn() -> Query,
    packets: &[Packet],
    oracle: &(Vec<Row>, EngineStats),
    n_shards: usize,
    producers: usize,
    routing: ShardBy,
) {
    let (expected, want) = oracle;
    let mut fabric = ShardedEngine::try_new(make_query(), n_shards)
        .expect("spawn shards")
        .routing(routing)
        .batch_size(256)
        .try_producers(producers)
        .expect("fabric");
    let got = fabric.run(packets.iter().copied());
    let ctx = format!("P={producers} shards={n_shards} routing={routing:?}");
    assert_eq!(expected.len(), got.len(), "{ctx}: row count");
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key), "{ctx}");
        assert_eq!(
            e.value, g.value,
            "{ctx}: key {} bucket {}",
            e.key, e.bucket_start
        );
    }
    let s = fabric.stats();
    assert_eq!(want.tuples_in, s.tuples_in, "{ctx}: tuples_in");
    assert_eq!(want.filtered, s.filtered, "{ctx}: filtered");
    assert_eq!(want.late_drops, s.late_drops, "{ctx}: late_drops");
}

#[test]
fn multi_producer_matrix_keyed_in_order_is_identical() {
    // The producer-seq determinism rule across the whole P × shards grid:
    // coordinator dealing restores global order at every worker, so keyed
    // routing is bit-identical for any producer count.
    let packets = fabric_trace(21, 0.0);
    let oracle = oracle_run(&count_query, &packets);
    for producers in [1usize, 2, 4] {
        for shards in [1usize, 4, 8] {
            assert_fabric_matches(
                &count_query,
                &packets,
                &oracle,
                shards,
                producers,
                ShardBy::Key,
            );
        }
    }
}

#[test]
fn multi_producer_matrix_under_slack_is_identical() {
    // 2 s of jitter against 5 s of slack — within-slack disorder, the
    // scope of the fabric's bit-identity guarantee (DESIGN.md §8). Every
    // handle sees a subsequence of the stream, so its local watermark
    // trails the global one and admission decisions agree exactly.
    let q = || {
        Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(5.0)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(256)
            .build()
    };
    let packets = fabric_trace(22, 2.0);
    let oracle = oracle_run(&q, &packets);
    for producers in [1usize, 2, 4] {
        for shards in [1usize, 4, 8] {
            assert_fabric_matches(&q, &packets, &oracle, shards, producers, ShardBy::Key);
        }
    }
}

#[test]
fn multi_producer_matrix_round_robin_matches() {
    // Round-robin splits every group across all shards; additive count
    // state re-assembles exactly whatever the producer count.
    let packets = fabric_trace(23, 0.0);
    let oracle = oracle_run(&count_query, &packets);
    for producers in [1usize, 2, 4] {
        for shards in [1usize, 4, 8] {
            assert_fabric_matches(
                &count_query,
                &packets,
                &oracle,
                shards,
                producers,
                ShardBy::RoundRobin,
            );
        }
    }
}

#[test]
fn multi_producer_crash_restart_mid_stream_is_identical() {
    // The FD_FAULT plan grammar, injected programmatically: shard 0 dies
    // after 5 000 tuples. Checkpoint restore plus per-producer backlog
    // replay (merged by global seq) must rebuild the worker bit-identically
    // for every producer count.
    let packets = fabric_trace(24, 0.0);
    let (expected, _) = oracle_run(&count_query, &packets);
    for producers in [1usize, 2, 4] {
        let mut fabric = ShardedEngine::try_new(count_query(), 4)
            .expect("spawn shards")
            .batch_size(128)
            .checkpoint_every(1_000)
            .inject_fault(FaultPlan::parse("panic:0:5000").expect("plan"))
            .try_producers(producers)
            .expect("fabric");
        let got = fabric.run(packets.iter().copied());
        assert_eq!(expected.len(), got.len(), "P={producers}: row count");
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(
                (e.bucket_start, e.key),
                (g.bucket_start, g.key),
                "P={producers}"
            );
            assert_eq!(e.value, g.value, "P={producers}: key {}", e.key);
        }
        let snap = fabric.telemetry().snapshot();
        assert_eq!(snap.worker_panics, 1, "P={producers}: one injected panic");
        assert_eq!(snap.restarts, 1, "P={producers}: one respawn");
        assert_eq!(snap.degraded_shards, 0, "P={producers}");
        assert!(snap.replayed_batches > 0, "P={producers}: backlog replayed");
    }
}

#[test]
fn parallel_ingress_interleavings_match_the_single_producer_oracle() {
    // True 4-thread ingress under two different stream partitions: strided
    // (each producer takes every 4th packet — the coordinator's deal) and
    // contiguous quarters (maximal inter-producer time skew). The worker's
    // fixed producer rotation makes both deterministic, and count state is
    // exactly additive, so both reassemble the single-producer answer bit
    // for bit — whichever thread wins each race.
    const P: usize = 4;
    let q = || {
        Query::builder("par")
            .group_by(|p| p.dst_host())
            .bucket_secs(10)
            .slack_secs(90.0)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(256)
            .build()
    };
    let packets = fabric_trace(25, 0.0);
    let (expected, _) = oracle_run(&q, &packets);
    for contiguous in [false, true] {
        let slices: Vec<Vec<Packet>> = if contiguous {
            packets
                .chunks(packets.len().div_ceil(P))
                .map(<[Packet]>::to_vec)
                .collect()
        } else {
            (0..P)
                .map(|p| packets.iter().skip(p).step_by(P).copied().collect())
                .collect()
        };
        let mut fabric = ShardedEngine::try_new(q(), 4)
            .expect("spawn shards")
            .batch_size(128)
            .try_producers(P)
            .expect("fabric");
        let joined: Vec<std::thread::JoinHandle<EngineStats>> = fabric
            .take_ingress_handles()
            .into_iter()
            .zip(slices)
            .map(|(mut h, slice)| {
                std::thread::spawn(move || {
                    for chunk in slice.chunks(256) {
                        h.ingest(chunk).expect("ingest");
                    }
                    h.finish()
                })
            })
            .collect();
        let mut fed = 0u64;
        for j in joined {
            fed += j.join().expect("producer thread").tuples_in;
        }
        assert_eq!(fed, packets.len() as u64, "contiguous={contiguous}");
        let got = fabric.finish();
        assert_eq!(expected.len(), got.len(), "contiguous={contiguous}: rows");
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(
                (e.bucket_start, e.key),
                (g.bucket_start, g.key),
                "contiguous={contiguous}"
            );
            assert_eq!(e.value, g.value, "contiguous={contiguous}: key {}", e.key);
        }
    }
}

#[test]
fn parallel_ingress_crash_recovery_is_exact_and_recovers_once() {
    // Regression for a duplicate-delivery race: a handle that had pushed
    // its epoch into the shard's backlog but not yet acquired its sender
    // slot while another handle ran the full recovery (reap + backlog
    // replay + fresh-sender install) used to get its message replayed
    // AND successfully sent against the freshly installed ring. Four
    // true ingress threads race a shard-0 panic; every tuple must be
    // applied exactly once (the worker's seq debug_assert catches
    // duplicates, the counts catch losses) and exactly one recovery may
    // run however many handles notice the dead worker.
    const P: usize = 4;
    let packets = fabric_trace(26, 0.0);
    let (expected, _) = oracle_run(&count_query, &packets);
    let mut fabric = ShardedEngine::try_new(count_query(), 4)
        .expect("spawn shards")
        .batch_size(64)
        .checkpoint_every(500)
        .inject_fault(FaultPlan::parse("panic:0:5000").expect("plan"))
        .try_producers(P)
        .expect("fabric");
    let joined: Vec<std::thread::JoinHandle<EngineStats>> = fabric
        .take_ingress_handles()
        .into_iter()
        .enumerate()
        .map(|(p, mut h)| {
            let slice: Vec<Packet> = packets.iter().skip(p).step_by(P).copied().collect();
            std::thread::spawn(move || {
                for chunk in slice.chunks(64) {
                    h.ingest(chunk).expect("ingest");
                }
                h.finish()
            })
        })
        .collect();
    for j in joined {
        j.join().expect("producer thread");
    }
    let got = fabric.finish();
    assert_eq!(expected.len(), got.len(), "row count");
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!((e.bucket_start, e.key), (g.bucket_start, g.key));
        assert_eq!(e.value, g.value, "key {}", e.key);
    }
    let snap = fabric.telemetry().snapshot();
    assert_eq!(snap.worker_panics, 1, "one injected panic");
    assert_eq!(
        snap.restarts, 1,
        "exactly one recovery despite racing handles"
    );
    assert_eq!(snap.degraded_shards, 0);
    assert!(snap.replayed_batches > 0, "backlog tail was replayed");
}

/// 8 shards × 1M tuples with jitter, slack, a selection and a multi-part
/// aggregate: the full pipeline under sustained load. Run with
/// `cargo test --test sharded_equivalence -- --ignored`.
#[test]
#[ignore = "stress test: ~1M tuples through 9 threads"]
fn stress_8_shards_1m_tuples() {
    let packets = TraceConfig {
        seed: 99,
        duration_secs: 600.0,
        rate_pps: 1_700.0,
        n_hosts: 10_000,
        zipf_skew: 1.1,
        ooo_jitter_secs: 1.0,
        ..Default::default()
    }
    .generate();
    assert!(packets.len() >= 1_000_000, "got {}", packets.len());
    let q = || -> Query {
        let combo: Arc<FnFactory> = multi_factory(vec![
            count_factory(),
            sum_factory(|p| p.len as f64),
            fwd_count_factory(Monomial::quadratic()),
        ]);
        Query::builder("stress")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(3.0)
            .aggregate(combo)
            .two_level(false)
            .build()
    };
    assert_equivalent(q, &data(packets), 8);
}
