//! Soak test: the engine is a *streaming* system — state must stay bounded
//! by groups × summary size, never by stream length. A multi-minute,
//! multi-million-tuple trace flows through lazily (never materialized) and
//! the engine's live state is probed between buckets.

use forward_decay::core::decay::Exponential;
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

#[test]
fn state_stays_bounded_over_a_long_lazy_stream() {
    // 5 minutes at 20k pkt/s = 6M tuples, streamed straight from the
    // generator iterator.
    let trace = TraceConfig {
        seed: 3,
        duration_secs: 300.0,
        rate_pps: 20_000.0,
        n_hosts: 2_000,
        ..Default::default()
    };
    let q = Query::builder("soak")
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_sum_factory(Exponential::new(0.05), |p| p.len as f64))
        .lfta_slots(4096)
        .build();
    let mut e = Engine::new(q);
    let mut peak_space = 0usize;
    let mut rows_total = 0usize;
    for (i, p) in trace.iter().enumerate() {
        e.process(&p);
        if i % 500_000 == 0 {
            peak_space = peak_space.max(e.space_bytes());
            rows_total += e.drain_rows().len();
        }
    }
    rows_total += e.finish().len();
    let stats = e.stats();
    assert!(
        stats.tuples_in > 5_500_000,
        "stream too short: {}",
        stats.tuples_in
    );
    assert_eq!(stats.buckets_closed, 5);
    // ~2000 groups across ≤ 2 open buckets, a few words each, plus the
    // 4096-slot LFTA: well under 2 MB no matter how long the stream runs.
    assert!(
        peak_space < 2 * 1024 * 1024,
        "state ballooned to {peak_space} bytes"
    );
    assert!(rows_total >= 5 * 1_500, "rows: {rows_total}");
}

#[test]
fn renormalization_soak_under_fierce_exponential_decay() {
    // α = 5/s over 300 s ⇒ g spans e^1500, forcing ~4 renormalizations per
    // group per bucket; every emitted value must still be finite and sane.
    let trace = TraceConfig {
        seed: 4,
        duration_secs: 300.0,
        rate_pps: 5_000.0,
        n_hosts: 50,
        ..Default::default()
    };
    let q = Query::builder("renorm_soak")
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_count_factory(Exponential::new(5.0)))
        .build();
    let rows = Engine::new(q).run(trace.iter());
    assert!(!rows.is_empty());
    for r in &rows {
        let v = r.value.as_float().expect("float");
        assert!(v.is_finite() && v >= 0.0, "bad decayed count {v}");
        // With α = 5 and ~100 pkt/s/group, the decayed count at bucket end
        // is around (rate/group)/α ≈ 20 — never astronomical.
        assert!(v < 1e4, "decayed count suspiciously large: {v}");
    }
}
