//! Durable-store integration tests: WAL + on-disk checkpoints must make a
//! sharded run crash-recoverable **without changing a single output bit**,
//! and every injected disk fault must end in recovery or explicit,
//! accounted degradation — never a panic, a hang, or a silently wrong
//! answer.
//!
//! Process crashes are simulated here by *dropping* the engine mid-stream
//! (which abandons the WAL writer without any final flush — a strictly
//! harsher cut than `kill -9`, which at least keeps queued page-cache
//! writes); the real `kill -9` matrix lives in the fd-cli
//! `process_crash` test, which murders actual `fdql` processes.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use forward_decay::core::decay::Monomial;
use forward_decay::engine::durability::{DurabilityOptions, FsyncPolicy};
use forward_decay::engine::fault::{self, DiskFault, DiskFaultKind, FaultKind, FaultPlan};
use forward_decay::engine::prelude::*;
use forward_decay::engine::shard::ShardedEngine;
use forward_decay::gen::TraceConfig;

fn decayed_query() -> Query {
    Query::builder("fwd_sum")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(2)
        .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
        .two_level(true)
        .lfta_slots(2048)
        .build()
}

fn trace(duration_secs: f64, rate_pps: f64, seed: u64) -> Vec<Packet> {
    TraceConfig {
        seed,
        duration_secs,
        rate_pps,
        n_hosts: 500,
        zipf_skew: 1.1,
        ..Default::default()
    }
    .generate()
}

/// A self-cleaning store directory under the system temp dir (the
/// workspace has no tempfile crate).
struct StoreDir(PathBuf);

impl StoreDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "fd-durability-{}-{label}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_bit_identical(expected: &[Row], got: &[Row], label: &str) {
    assert_eq!(expected.len(), got.len(), "{label}: row count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(
            (e.bucket_start, e.key),
            (g.bucket_start, g.key),
            "{label}: row identity"
        );
        let (ev, gv) = (
            e.value.as_float().expect("scalar aggregate"),
            g.value.as_float().expect("scalar aggregate"),
        );
        assert_eq!(
            ev.to_bits(),
            gv.to_bits(),
            "{label}: bucket {} key {}: {ev} vs {gv}",
            e.bucket_start,
            e.key
        );
    }
}

/// Opens a durable engine over `dir` with small intervals so checkpoints
/// and manifest commits happen many times even on short test streams.
fn open(dir: &Path, n_shards: usize, opts: DurabilityOptions) -> (ShardedEngine, RecoveryReport) {
    ShardedEngine::try_new(decayed_query(), n_shards)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_durable(dir, opts)
        .expect("open durable store")
}

/// Feeds `packets[from..]` in committed chunks, mirroring the fdql driver
/// loop: process a chunk, then declare the position durable.
fn feed(e: &mut ShardedEngine, packets: &[Packet], from: u64, chunk: usize) {
    let mut pos = from as usize;
    while pos < packets.len() {
        let end = (pos + chunk).min(packets.len());
        e.try_process_packets(&packets[pos..end]).expect("feed");
        pos = end;
        e.durable_commit(pos as u64).expect("commit");
    }
}

/// A complete durable run over a fresh store: feed, commit, finish.
fn durable_run(dir: &Path, packets: &[Packet], n_shards: usize) -> (Vec<Row>, ShardedEngine) {
    let (mut e, report) = open(dir, n_shards, DurabilityOptions::default());
    assert!(!report.resumed, "fresh directory must not resume");
    feed(&mut e, packets, 0, 1024);
    let rows = e.finish();
    (rows, e)
}

#[test]
fn durable_run_is_bit_identical_and_a_clean_store_reopens_to_the_same_rows() {
    let packets = trace(4.0, 20_000.0, 31);
    let expected = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .run(packets.iter().copied());

    let store = StoreDir::new("clean");
    let (rows, e) = durable_run(store.path(), &packets, 2);
    assert_bit_identical(&expected, &rows, "durable vs in-memory");
    assert!(!e.durability_degraded());
    let s = e.telemetry().snapshot();
    assert!(s.wal_bytes_written > 0, "the WAL must have been written");
    assert!(s.checkpoints_persisted > 0, "checkpoints must hit disk");
    assert_eq!(s.durability_degraded, 0);
    assert_eq!(s.wal_records_truncated, 0, "clean run, clean log");
    drop(e);

    // Reopen the finished store: everything is already committed, so the
    // resume point is the end of the stream and finishing immediately —
    // with no re-feed at all — reproduces the run's rows from disk alone.
    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    assert!(report.resumed);
    assert_eq!(report.position, packets.len() as u64);
    assert_eq!(report.truncated_records, 0);
    let rows2 = e.finish();
    assert_bit_identical(&rows, &rows2, "reopened store");
}

#[test]
fn dropping_the_engine_mid_stream_recovers_bit_identically() {
    let packets = trace(4.0, 20_000.0, 37);
    let store = StoreDir::new("midstream");
    let expected = {
        let d = StoreDir::new("midstream-clean");
        durable_run(d.path(), &packets, 3).0
    };

    // Crash: feed only part of the stream, then drop the engine without
    // finish() — the WAL writer is abandoned wherever it happens to be.
    let crash_at = packets.len() / 2;
    {
        let (mut e, _) = open(store.path(), 3, DurabilityOptions::default());
        feed(&mut e, &packets[..crash_at], 0, 1024);
        // dropped here, mid-stream
    }

    // Restart: recover, re-feed from the committed position, finish.
    let (mut e, report) = open(store.path(), 3, DurabilityOptions::default());
    assert!(report.resumed);
    assert!(
        report.position <= crash_at as u64,
        "cannot have committed past what was fed"
    );
    assert!(report.position > 0, "commits happened before the crash");
    feed(&mut e, &packets, report.position, 1024);
    let rows = e.finish();
    assert_bit_identical(&expected, &rows, "recovered after mid-stream drop");
}

#[test]
fn repeated_crashes_at_different_points_all_recover_exactly() {
    let packets = trace(3.0, 15_000.0, 41);
    let expected = {
        let d = StoreDir::new("multi-clean");
        durable_run(d.path(), &packets, 2).0
    };
    // Crash → partially resume → crash again → resume to completion: the
    // store must absorb any number of cuts.
    let store = StoreDir::new("multi");
    let cuts = [packets.len() / 4, packets.len() / 2, 3 * packets.len() / 4];
    let mut resumed_from = 0u64;
    for &cut in &cuts {
        let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
        assert!(report.position >= resumed_from, "position went backwards");
        resumed_from = report.position;
        if (report.position as usize) < cut {
            e.try_process_packets(&packets[report.position as usize..cut])
                .expect("feed");
            e.durable_commit(cut as u64).expect("commit");
        }
        // dropped mid-stream again
    }
    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    feed(&mut e, &packets, report.position, 1024);
    let rows = e.finish();
    assert_bit_identical(&expected, &rows, "after three crashes");
}

#[test]
fn torn_wal_tails_are_truncated_counted_and_harmless() {
    let packets = trace(3.0, 15_000.0, 43);
    let store = StoreDir::new("torn");
    let (rows, e) = durable_run(store.path(), &packets, 2);
    drop(e);

    // Maul the store the way a crash mid-append does: garbage after the
    // last complete record of every log.
    let mut mauled = 0u64;
    for entry in std::fs::read_dir(store.path()).expect("list store") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".seg") {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open segment");
            f.write_all(&[0xAB; 13]).expect("append garbage");
            mauled += 1;
        }
    }
    assert!(mauled >= 3, "expected WAL and control segments to maul");

    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    assert!(report.resumed);
    assert_eq!(
        report.truncated_records, mauled,
        "every torn tail must be truncated and counted"
    );
    assert_eq!(report.position, packets.len() as u64);
    assert_eq!(e.telemetry().snapshot().wal_records_truncated, mauled);
    let rows2 = e.finish();
    assert_bit_identical(&rows, &rows2, "after torn-tail truncation");
}

#[test]
fn reopening_with_a_different_shard_count_is_an_explicit_error() {
    let packets = trace(1.0, 10_000.0, 47);
    let store = StoreDir::new("shardcount");
    durable_run(store.path(), &packets, 2);
    let err = ShardedEngine::try_new(decayed_query(), 3)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_durable(store.path(), DurabilityOptions::default())
        .err()
        .expect("shard-count mismatch must be refused");
    assert!(
        matches!(err, forward_decay::core::Error::Durability { .. }),
        "got {err:?}"
    );
}

#[test]
fn durability_requires_supervision() {
    let store = StoreDir::new("nosuper");
    let err = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(0)
        .try_durable(store.path(), DurabilityOptions::default())
        .err()
        .expect("durability without checkpoints must be refused");
    assert!(
        matches!(err, forward_decay::core::Error::InvalidParameter { .. }),
        "got {err:?}"
    );
}

#[test]
fn abandoning_an_uncommitted_run_publishes_no_manifest() {
    let packets = trace(2.0, 10_000.0, 53);
    let store = StoreDir::new("abandon");
    {
        let (mut e, _) = open(store.path(), 2, DurabilityOptions::default());
        // Feed without a single durable_commit, then drop mid-stream: the
        // abandoned writer must stop dead — no fsync, no rename, and above
        // all no manifest published from half-applied state.
        e.try_process_packets(&packets).expect("feed");
    }
    let names: Vec<String> = std::fs::read_dir(store.path())
        .expect("list store")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        !names.iter().any(|n| n == "MANIFEST"),
        "no commit was ever made, yet a MANIFEST appeared: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.ends_with(".tmp")),
        "abandoned writer left a half-written temp file: {names:?}"
    );
    // And the WAL that did land is still a usable (position 0) store.
    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    assert_eq!(report.position, 0, "nothing was committed");
    feed(&mut e, &packets, 0, 1024);
    assert!(!e.finish().is_empty());
}

#[test]
fn garbage_collection_bounds_the_store_footprint() {
    let packets = trace(4.0, 25_000.0, 59);
    let store = StoreDir::new("gc");
    let opts = DurabilityOptions {
        segment_bytes: 4096, // rotate constantly
        ..DurabilityOptions::default()
    };
    let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(256)
        .try_durable(store.path(), opts)
        .expect("open");
    feed(&mut e, &packets, 0, 512);
    let rows = e.finish();
    drop(e);
    let names: Vec<String> = std::fs::read_dir(store.path())
        .expect("list store")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    // ~100k tuples over 4 KiB segments is hundreds of rotations; retained
    // segments must stay proportional to the replay window, not the run.
    assert!(
        names.len() < 60,
        "GC is not collecting: {} files in the store: {names:?}",
        names.len()
    );
    assert_eq!(
        names.iter().filter(|n| *n == "MANIFEST").count(),
        1,
        "exactly one manifest: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.ends_with(".tmp")),
        "temp files must not survive a clean shutdown: {names:?}"
    );
    // And the collected store still recovers the full run.
    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    assert_eq!(report.position, packets.len() as u64);
    let rows2 = e.finish();
    assert_bit_identical(&rows, &rows2, "after heavy GC");
}

#[test]
fn fsync_policies_change_durability_cost_not_results() {
    let packets = trace(2.0, 15_000.0, 61);
    let mut all_rows: Vec<Vec<Row>> = Vec::new();
    for (label, fsync) in [
        ("batch", FsyncPolicy::EveryBatch),
        ("every7", FsyncPolicy::EveryN(7)),
        ("checkpoint", FsyncPolicy::OnCheckpoint),
    ] {
        let store = StoreDir::new(&format!("fsync-{label}"));
        let opts = DurabilityOptions {
            fsync,
            ..DurabilityOptions::default()
        };
        let (mut e, _) = open(store.path(), 2, opts);
        feed(&mut e, &packets, 0, 1024);
        let rows = e.finish();
        assert!(!e.durability_degraded(), "{label}");
        drop(e);
        // Every policy's store must reopen to the full committed position.
        let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
        assert_eq!(report.position, packets.len() as u64, "{label}");
        let rows2 = e.finish();
        assert_bit_identical(&rows, &rows2, &format!("{label} reopen"));
        all_rows.push(rows);
    }
    assert_bit_identical(&all_rows[0], &all_rows[1], "batch vs every:7");
    assert_bit_identical(&all_rows[0], &all_rows[2], "batch vs checkpoint");
}

/// The fault-matrix core: every disk-fault kind, at trigger points from
/// "first operation" to "deep inside checkpoint/manifest commits", must
/// leave (a) the live stream producing exact results, and (b) a store
/// that either recovers or refuses with an explicit error — never a
/// panic, never silently wrong rows.
#[test]
fn injected_disk_faults_end_in_recovery_or_explicit_degradation() {
    let packets = trace(2.0, 15_000.0, 67);
    let expected = {
        let d = StoreDir::new("faults-clean");
        durable_run(d.path(), &packets, 2).0
    };
    let mut degraded_runs = 0u32;
    for kind in DiskFaultKind::ALL {
        for at_op in [1, 2, 7, 19] {
            let label = format!("{kind:?}@{at_op}");
            let store = StoreDir::new(&format!("fault-{kind:?}-{at_op}"));
            let (mut e, report) = ShardedEngine::try_new(decayed_query(), 2)
                .expect("spawn shards")
                .checkpoint_every(512)
                .inject_fault(FaultPlan {
                    shard: 0,
                    kind: FaultKind::Disk(DiskFault { kind, at_op }),
                })
                .try_durable(store.path(), DurabilityOptions::default())
                .expect("a write fault cannot fail the open of a fresh store");
            assert!(!report.resumed);
            feed(&mut e, &packets, 0, 1024);
            let rows = e.finish();
            // The stream must survive the fault bit-exactly, durable or not.
            assert_bit_identical(&expected, &rows, &label);
            if e.durability_degraded() {
                degraded_runs += 1;
                assert_eq!(
                    e.telemetry().snapshot().durability_degraded,
                    1,
                    "{label}: gauge must mirror degradation"
                );
            }
            drop(e);
            // Whatever the fault left on disk: recover it or refuse it.
            match ShardedEngine::try_new(decayed_query(), 2)
                .expect("spawn shards")
                .checkpoint_every(512)
                .try_durable(store.path(), DurabilityOptions::default())
            {
                Ok((mut e, report)) => {
                    feed(&mut e, &packets, report.position, 1024);
                    let rows = e.finish();
                    assert_bit_identical(&expected, &rows, &format!("{label} reopen"));
                }
                Err(forward_decay::core::Error::Durability { .. }) => {
                    // Explicitly refused: the store is damaged below its
                    // last commit. Honest, and the only acceptable failure.
                }
                Err(other) => panic!("{label}: unexpected error kind {other:?}"),
            }
        }
    }
    assert!(
        degraded_runs > 0,
        "no fault in the whole matrix degraded durability — injection is dead"
    );
}

/// Seed-driven sweep honoring the CI fault matrix's `FD_FAULT` seed, so
/// different CI rows explore different (kind, trigger) placements.
#[test]
fn seeded_disk_faults_recover_or_degrade() {
    let base = fault::env_seed().unwrap_or(0xD15C);
    let packets = trace(1.5, 10_000.0, 71);
    let expected = {
        let d = StoreDir::new("seeded-clean");
        durable_run(d.path(), &packets, 2).0
    };
    for round in 0..8u64 {
        let seed = base.wrapping_mul(0x9E37_79B9).wrapping_add(round);
        let fault = DiskFault::from_seed(seed);
        let label = format!("seed {seed} → {fault:?}");
        let store = StoreDir::new(&format!("seeded-{round}"));
        let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
            .expect("spawn shards")
            .checkpoint_every(512)
            .inject_fault(FaultPlan {
                shard: 0,
                kind: FaultKind::Disk(fault),
            })
            .try_durable(store.path(), DurabilityOptions::default())
            .expect("open");
        feed(&mut e, &packets, 0, 1024);
        let rows = e.finish();
        assert_bit_identical(&expected, &rows, &label);
    }
}

#[test]
fn full_disk_degrades_to_in_memory_supervision_not_an_error() {
    let packets = trace(2.0, 10_000.0, 73);
    let expected = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .run(packets.iter().copied());
    let store = StoreDir::new("enospc");
    let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .inject_fault(FaultPlan::parse("disk:enospc:1").expect("spec"))
        .try_durable(store.path(), DurabilityOptions::default())
        .expect("open");
    feed(&mut e, &packets, 0, 1024);
    let rows = e.finish();
    assert_bit_identical(&expected, &rows, "ENOSPC run");
    assert!(
        e.durability_degraded(),
        "a persistently full disk must degrade durability"
    );
    let s = e.telemetry().snapshot();
    assert_eq!(s.durability_degraded, 1);
    assert_eq!(s.worker_panics, 0, "degradation must not kill workers");
    assert_eq!(
        s.degraded_shards, 0,
        "shards stay healthy; only disk is lost"
    );
}

/// Aggregates that decline checkpointing (samplers) still get a WAL: with
/// nothing coverable, recovery replays the entire log from scratch — and
/// because the sampler is seeded, the replay reproduces the run exactly.
#[test]
fn non_checkpointable_aggregates_replay_the_whole_wal() {
    let q = || {
        Query::builder("sample")
            .group_by(|p| p.dst_host())
            .bucket_secs(2)
            .aggregate(pri_sample_factory(Monomial::new(1.0), 16, 99, |p| {
                p.len as u64
            }))
            .build()
    };
    let packets = trace(1.5, 8_000.0, 79);
    let store = StoreDir::new("sampler");
    let (mut e, _) = ShardedEngine::try_new(q(), 2)
        .expect("spawn shards")
        .checkpoint_every(256)
        .try_durable(store.path(), DurabilityOptions::default())
        .expect("open");
    feed(&mut e, &packets, 0, 512);
    let rows = e.finish();
    assert!(!rows.is_empty());
    drop(e);
    let (mut e, report) = ShardedEngine::try_new(q(), 2)
        .expect("spawn shards")
        .checkpoint_every(256)
        .try_durable(store.path(), DurabilityOptions::default())
        .expect("reopen");
    assert!(report.resumed);
    assert_eq!(report.position, packets.len() as u64);
    assert!(
        report.replayed_batches > 0,
        "nothing was coverable, so the whole WAL must replay"
    );
    let rows2 = e.finish();
    assert_eq!(
        format!("{rows:?}"),
        format!("{rows2:?}"),
        "seeded sampler replay must reproduce the run"
    );
}

/// The dispatch-path contract behind the overhead bench: attaching a
/// durable sink must not change admission, routing, or results even when
/// combined with a concurrent worker crash.
#[test]
fn durability_composes_with_worker_crash_recovery() {
    let packets = trace(3.0, 15_000.0, 83);
    let expected = {
        let d = StoreDir::new("compose-clean");
        durable_run(d.path(), &packets, 2).0
    };
    let store = StoreDir::new("compose");
    let (mut e, _) = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .inject_fault(FaultPlan {
            shard: 1,
            kind: FaultKind::PanicAtTuple(5_000),
        })
        .try_durable(store.path(), DurabilityOptions::default())
        .expect("open");
    feed(&mut e, &packets, 0, 1024);
    let rows = e.finish();
    assert_bit_identical(&expected, &rows, "worker crash under durability");
    let s = e.telemetry().snapshot();
    assert_eq!(s.worker_panics, 1);
    assert_eq!(s.restarts, 1);
    assert!(!e.durability_degraded());
    drop(e);
    // The store survived the worker crash too.
    let (mut e, report) = open(store.path(), 2, DurabilityOptions::default());
    assert_eq!(report.position, packets.len() as u64);
    let rows2 = e.finish();
    assert_bit_identical(&expected, &rows2, "reopen after worker crash");
}

/// `Arc` is how the tests above reach `DurabilityOptions::io`; pin the
/// default wiring so a refactor can't silently detach [`StdFs`].
#[test]
fn default_options_use_the_real_filesystem() {
    let opts = DurabilityOptions::default();
    assert_eq!(opts.fsync, FsyncPolicy::OnCheckpoint);
    assert_eq!(opts.segment_bytes, 8 * 1024 * 1024);
    let io: Arc<dyn forward_decay::engine::io::IoBackend> = opts.io;
    assert!(format!("{io:?}").contains("StdFs"));
}

// ---------------------------------------------------------------------------
// Multi-producer ingress fabric × durability
// ---------------------------------------------------------------------------

/// Opens a durable engine whose ingress runs through the multi-producer
/// fabric in coordinator mode (the only mode durable runs support).
fn open_fabric(
    dir: &Path,
    n_shards: usize,
    producers: usize,
    opts: DurabilityOptions,
) -> (ShardedEngine, RecoveryReport) {
    ShardedEngine::try_new(decayed_query(), n_shards)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_producers(producers)
        .expect("fabric")
        .try_durable(dir, opts)
        .expect("open durable store")
}

#[test]
fn fabric_durable_run_is_bit_identical_and_recovers_after_mid_stream_drop() {
    let packets = trace(4.0, 20_000.0, 61);
    let expected = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .run(packets.iter().copied());

    // Clean fabric run against a fresh store.
    let store = StoreDir::new("fabric-clean");
    let (mut e, report) = open_fabric(store.path(), 2, 2, DurabilityOptions::default());
    assert!(!report.resumed);
    feed(&mut e, &packets, 0, 1024);
    let rows = e.finish();
    assert_bit_identical(&expected, &rows, "durable fabric vs in-memory");
    assert!(!e.durability_degraded());
    let s = e.telemetry().snapshot();
    assert!(s.wal_bytes_written > 0);
    assert!(s.checkpoints_persisted > 0);
    assert_eq!(s.wal_records_truncated, 0);
    drop(e);

    // Crash mid-stream against a second store, then resume and finish:
    // the per-producer commit blocks must restore each ingress handle
    // (watermark, seq cursor, admission counters) bit-identically.
    let store2 = StoreDir::new("fabric-crash");
    let crash_at = packets.len() / 2;
    {
        let (mut e, _) = open_fabric(store2.path(), 2, 2, DurabilityOptions::default());
        feed(&mut e, &packets[..crash_at], 0, 1024);
        // dropped here, mid-stream
    }
    let (mut e, report) = open_fabric(store2.path(), 2, 2, DurabilityOptions::default());
    assert!(report.resumed);
    assert!(report.position > 0, "commits happened before the crash");
    assert!(report.position <= crash_at as u64);
    feed(&mut e, &packets, report.position, 1024);
    let rows2 = e.finish();
    assert_bit_identical(&expected, &rows2, "fabric recovered after drop");
}

#[test]
fn fabric_and_legacy_stores_refuse_to_cross_open() {
    let packets = trace(1.0, 10_000.0, 67);

    // A fabric store reopened without the fabric is an explicit error …
    let store = StoreDir::new("fabric-store");
    {
        let (mut e, _) = open_fabric(store.path(), 2, 2, DurabilityOptions::default());
        feed(&mut e, &packets, 0, 1024);
        e.finish();
    }
    let err = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_durable(store.path(), DurabilityOptions::default())
        .err()
        .expect("legacy open of a fabric store must be refused");
    assert!(
        matches!(err, forward_decay::core::Error::Durability { .. }),
        "got {err:?}"
    );

    // … and so is reopening it with a different producer count …
    let err = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_producers(3)
        .expect("fabric")
        .try_durable(store.path(), DurabilityOptions::default())
        .err()
        .expect("producer-count mismatch must be refused");
    assert!(
        matches!(err, forward_decay::core::Error::Durability { .. }),
        "got {err:?}"
    );

    // … and so is opening a legacy store through the fabric.
    let legacy = StoreDir::new("legacy-store");
    durable_run(legacy.path(), &packets, 2);
    let err = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(512)
        .try_producers(2)
        .expect("fabric")
        .try_durable(legacy.path(), DurabilityOptions::default())
        .err()
        .expect("fabric open of a legacy store must be refused");
    assert!(
        matches!(err, forward_decay::core::Error::Durability { .. }),
        "got {err:?}"
    );
}
