//! The paper's resource-bound claims (Theorems 1–6, Corollary 1), checked
//! as executable assertions on realistic streams: not just "the answers are
//! right" but "the space is what the theorem says".

use std::mem::size_of;

use forward_decay::core::aggregates::{DecayedCount, DecayedSum};
use forward_decay::core::decay::{Exponential, Monomial};
use forward_decay::core::distinct::DominanceSketch;
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::sampling::{
    exp_decay_sample, PrioritySampler, WeightedReservoir, WithReplacementSampler,
};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 71,
        duration_secs: 30.0,
        rate_pps: 30_000.0,
        n_hosts: 10_000,
        ..Default::default()
    }
    .generate()
}

/// Theorem 1: any algebraic summation is computable in constant space under
/// any forward decay — concretely, the aggregate type is a few machine
/// words and never allocates, no matter the stream length.
#[test]
fn theorem1_constant_space_aggregates() {
    // The state is the struct itself: no heap.
    assert!(size_of::<DecayedSum<Monomial>>() <= 128);
    assert!(size_of::<DecayedCount<Exponential>>() <= 128);
    let mut s = DecayedSum::new(Exponential::new(0.5), 0.0);
    for p in trace() {
        s.update(p.ts_secs(), p.len as f64);
    }
    assert!(s.query(31.0).is_finite());
}

/// Theorem 2: heavy hitters in O(1/ε) counters. The summary over ~1M
/// packets must hold at most ⌈1/ε⌉ counters and stay in the kilobytes.
#[test]
fn theorem2_hh_space_is_one_over_epsilon() {
    let eps = 0.001;
    let mut hh = DecayedHeavyHitters::with_epsilon(Monomial::quadratic(), 0.0, eps);
    for p in trace() {
        hh.update(p.ts_secs(), p.dst_host());
    }
    assert!(hh.inner().len() <= 1000);
    assert!(hh.size_bytes() < 128 * 1024, "{} bytes", hh.size_bytes());
}

/// Theorem 3: quantiles in O((1/ε) log U) space.
#[test]
fn theorem3_quantile_space() {
    let (eps, bits) = (0.01, 11u32);
    let mut q = DecayedQuantiles::new(Monomial::quadratic(), 0.0, bits, eps);
    for p in trace() {
        q.update(p.ts_secs(), p.len as u64);
    }
    // k = bits/ε nodes at most ~3k live after compression.
    assert!(q.inner().len() <= 4 * (bits as f64 / eps) as usize);
    assert!(q.quantile(0.5, 31.0).is_some());
}

/// Theorem 4: decayed count-distinct in space far below the distinct count.
#[test]
fn theorem4_distinct_space_sublinear() {
    let mut d = DominanceSketch::new(Monomial::new(1.0), 0.0, 0.2, 3);
    let packets = trace();
    // src_ip is random: ~900k distinct values.
    for p in &packets {
        d.update(p.ts_secs(), p.src_host());
    }
    let est = d.query(31.0);
    assert!(est > 0.0 && est.is_finite());
    // An exact table would be tens of MB; the sketch must be ≤ ~400 KB.
    assert!(d.size_bytes() < 400 * 1024, "{} bytes", d.size_bytes());
}

/// Theorem 5: sampling with replacement in constant space per chain and
/// constant time per tuple (no per-item allocation).
#[test]
fn theorem5_with_replacement_space() {
    let s_chains = 64;
    let mut s = WithReplacementSampler::new(Exponential::new(0.3), 0.0, s_chains, 1);
    for p in trace() {
        s.update(p.ts_secs(), &p.dst_host());
    }
    assert_eq!(s.capacity(), s_chains);
    assert_eq!(s.sample().len(), s_chains);
}

/// Theorem 6: weighted reservoir / priority samples of size k in O(k)
/// space.
#[test]
fn theorem6_without_replacement_space() {
    let k = 500;
    let mut wrs = WeightedReservoir::new(Monomial::quadratic(), 0.0, k, 2);
    let mut pri = PrioritySampler::new(Monomial::quadratic(), 0.0, k, 2);
    for p in trace() {
        wrs.update(p.ts_secs(), &p.dst_host());
        pri.update(p.ts_secs(), &p.dst_host());
    }
    assert_eq!(wrs.sample().len(), k);
    assert_eq!(pri.sample().len(), k);
    // O(k): both hold at most k+1 entries internally (checked via the
    // sample size and capacity contract; the entries vectors are bounded by
    // construction).
    assert_eq!(wrs.capacity(), k);
    assert_eq!(pri.capacity(), k);
}

/// Corollary 1: exponential-decay sampling with arbitrary (out-of-order,
/// non-integer) timestamps, O(k) space — the case Aggarwal's method cannot
/// handle.
#[test]
fn corollary1_exp_sample_arbitrary_timestamps() {
    let mut s = exp_decay_sample::<u64>(0.2, 0.0, 100, 3);
    let mut packets = trace();
    // Scramble arrival order thoroughly.
    packets.reverse();
    packets.swap(0, 1000);
    for p in &packets {
        s.update(p.ts_secs(), &p.dst_host());
    }
    assert_eq!(s.sample().len(), 100);
    // Recency bias must survive the scrambled arrival order: with α = 0.2
    // over 30 s, ~95% of the decayed mass lies in the last 15 s.
    let recent = s.sample().iter().filter(|e| e.t > 15.0).count();
    assert!(recent > 80, "only {recent}/100 recent samples");
}

/// Section VI-A: the worked renormalization guarantee — an exponentially
/// decayed sum over a stream whose raw g-values overflow f64 ~400× still
/// matches the mathematically exact value.
#[test]
fn section6a_renormalization_exactness() {
    let alpha = 3.0;
    let g = Exponential::new(alpha);
    let mut sum = DecayedSum::new(g, 0.0);
    let n = 100_000u64;
    let dt = 1.0;
    for i in 0..n {
        sum.update(i as f64 * dt, 2.0);
    }
    let t_q = (n - 1) as f64 * dt;
    // Exact: 2 Σ_{j≥0} e^{-αj·dt} truncated at n terms ≈ 2/(1 − e^{-α}).
    let expected = 2.0 / (1.0 - (-alpha * dt).exp());
    let got = sum.query(t_q);
    assert!(
        (got - expected).abs() < 1e-9 * expected,
        "renormalized sum {got} vs exact {expected}"
    );
}
