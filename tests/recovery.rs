//! Fault-tolerance tests: supervised shard workers must recover from
//! crashes without changing a single output bit.
//!
//! Forward decay makes this cheap to get *exactly* right: a summary's
//! state is a handful of frozen numerators `g(t_i − L)` (Section VI-B),
//! so a checkpoint is an exact serialization, not an approximation.
//! Recovery is therefore testable by the strongest possible oracle —
//! bit-identical `f64` output against an unfaulted run — rather than by
//! tolerance bands.
//!
//! The fault schedule is deterministic ([`fault::FaultPlan`] triggers on
//! the worker engine's own checkpointed tuple counter), so every test
//! here replays identically under `--test-threads=1`, in CI, and across
//! checkpoint-interval choices. The randomized sweep honors an `FD_FAULT`
//! seed from the environment so the CI fault matrix explores different
//! placements without losing reproducibility.

use forward_decay::core::decay::Monomial;
use forward_decay::engine::fault::{self, FaultKind, FaultPlan};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn decayed_query() -> Query {
    Query::builder("fwd_sum")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(2)
        .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
        .two_level(true)
        .lfta_slots(4096)
        .build()
}

fn trace(duration_secs: f64, rate_pps: f64, seed: u64) -> Vec<Packet> {
    TraceConfig {
        seed,
        duration_secs,
        rate_pps,
        n_hosts: 2_000,
        zipf_skew: 1.1,
        ..Default::default()
    }
    .generate()
}

/// The strongest equality there is for `f64` output: same rows, same
/// order, same bits.
fn assert_bit_identical(expected: &[Row], got: &[Row], label: &str) {
    assert_eq!(expected.len(), got.len(), "{label}: row count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(
            (e.bucket_start, e.key),
            (g.bucket_start, g.key),
            "{label}: row identity"
        );
        let (ev, gv) = (
            e.value.as_float().expect("scalar aggregate"),
            g.value.as_float().expect("scalar aggregate"),
        );
        assert_eq!(
            ev.to_bits(),
            gv.to_bits(),
            "{label}: bucket {} key {}: {ev} vs {gv}",
            e.bucket_start,
            e.key
        );
    }
}

/// Same rows, same order, values equal to within float-combination
/// noise — the right oracle for *single vs sharded*, where per-shard
/// LFTAs flush partial sums in a different order than one big LFTA.
fn assert_equivalent(expected: &[Row], got: &[Row], label: &str) {
    assert_eq!(expected.len(), got.len(), "{label}: row count");
    for (e, g) in expected.iter().zip(got) {
        assert_eq!(
            (e.bucket_start, e.key),
            (g.bucket_start, g.key),
            "{label}: row identity"
        );
        let (ev, gv) = (
            e.value.as_float().expect("scalar aggregate"),
            g.value.as_float().expect("scalar aggregate"),
        );
        assert!(
            (ev - gv).abs() <= 1e-9 * ev.abs().max(gv.abs()).max(1.0),
            "{label}: bucket {} key {}: {ev} vs {gv}",
            e.bucket_start,
            e.key
        );
    }
}

/// The tentpole guarantee at scale: 8 shards, ~1M tuples, a worker crash
/// mid-stream — and the recovered run is bit-for-bit the unfaulted
/// sharded run (and semantically the single-threaded one).
#[test]
fn transient_crash_recovers_bit_identically_at_one_million_tuples() {
    let packets = trace(10.0, 100_000.0, 2);
    assert!(packets.len() >= 900_000, "want ~1M tuples");

    let baseline = Engine::new(decayed_query()).run(packets.iter().copied());

    let mut clean = ShardedEngine::try_new(decayed_query(), 8)
        .expect("spawn shards")
        .checkpoint_every(8_192);
    let clean_rows = clean.run(packets.iter().copied());
    assert_equivalent(&baseline, &clean_rows, "clean sharded vs single");

    let mut faulted = ShardedEngine::try_new(decayed_query(), 8)
        .expect("spawn shards")
        .checkpoint_every(8_192)
        .inject_fault(FaultPlan {
            shard: 3,
            kind: FaultKind::PanicAtTuple(40_000),
        });
    let faulted_rows = faulted.run(packets.iter().copied());
    assert_bit_identical(&clean_rows, &faulted_rows, "recovered vs clean");

    let t = faulted.telemetry().snapshot();
    assert_eq!(t.worker_panics, 1, "exactly the injected crash");
    assert_eq!(t.restarts, 1, "one restart heals a transient fault");
    assert!(t.checkpoints > 0, "workers checkpointed");
    assert!(
        t.replayed_tuples > 0,
        "the tail since the last checkpoint was replayed"
    );
    assert_eq!(t.degraded_shards, 0);
    assert_eq!(t.dropped_degraded, 0);
    // And the replay stayed a *tail*: far less than the shard's full feed.
    assert!(
        t.replayed_tuples < packets.len() as u64 / 8,
        "replayed {} of ~{} shard tuples — checkpointing is not bounding \
         the backlog",
        t.replayed_tuples,
        packets.len() / 8
    );
}

/// A permanent fault exhausts the restart budget, then degrades: the
/// supervisor salvages the shard's last checkpoint instead of aborting
/// the whole query, and accounts for every tuple it had to drop.
#[test]
fn poison_pill_degrades_gracefully_and_salvages_the_checkpoint() {
    let packets = trace(6.0, 20_000.0, 7);
    let mut e = ShardedEngine::try_new(decayed_query(), 4)
        .expect("spawn shards")
        .checkpoint_every(1_024)
        .max_restarts(2)
        .inject_fault(FaultPlan {
            shard: 1,
            kind: FaultKind::PoisonedBatch(10_000),
        });
    let rows = e.run(packets.iter().copied());
    assert!(!rows.is_empty(), "healthy shards still produce output");

    let t = e.telemetry().snapshot();
    assert_eq!(t.degraded_shards, 1);
    assert_eq!(t.restarts, 2, "the full restart budget was spent");
    assert_eq!(
        t.worker_panics,
        1 + t.restarts,
        "initial crash plus one per failed restart"
    );
    assert!(
        t.dropped_degraded > 0,
        "tuples routed to the dead shard are counted, not silently lost"
    );
    assert!(t.checkpoints > 0, "a checkpoint existed to salvage");

    // Admission still saw the whole stream; only the degraded shard's
    // tail (post-checkpoint backlog + later-routed tuples) was dropped.
    let stats = e.stats();
    assert_eq!(stats.tuples_in, packets.len() as u64);
    assert!(
        t.dropped_degraded < packets.len() as u64 / 2,
        "dropped {} of {} tuples — far more than one shard's tail",
        t.dropped_degraded,
        packets.len()
    );
    assert!(stats.rows_out > 0);
}

/// Recovery must be exact for *any* checkpoint interval and crash point:
/// a seeded sweep over both, honoring an `FD_FAULT` seed from the
/// environment (the CI fault matrix sets it; locally it defaults).
#[test]
fn randomized_checkpoint_intervals_recover_exactly() {
    let seed = fault::env_seed().unwrap_or(0xF0D4);
    let mut rng = SmallRng::seed_from_u64(seed);
    let packets = trace(4.0, 25_000.0, 11);
    // The bit-exact oracle for each round is the *unfaulted sharded run
    // with the same shard count* (float combination order depends on the
    // topology, not on checkpointing or crashes). Its per-shard tuple
    // counts also tell us where a crash point can actually fire.
    type CleanRun = (Vec<Row>, Vec<u64>);
    let mut clean: std::collections::BTreeMap<usize, CleanRun> = Default::default();

    for round in 0..6 {
        let n_shards = rng.gen_range(2..=6usize);
        let every = rng.gen_range(64..=8_192u64);
        let shard = rng.gen_range(0..n_shards);
        let (expected, per_shard) = clean.entry(n_shards).or_insert_with(|| {
            let mut e = ShardedEngine::try_new(decayed_query(), n_shards).expect("spawn shards");
            let rows = e.run(packets.iter().copied());
            let per_shard = e.per_shard_stats().iter().map(|s| s.tuples_in).collect();
            (rows, per_shard)
        });
        // Crash somewhere the shard's worker will actually reach.
        let at = rng.gen_range(1..=per_shard[shard]);
        let mut e = ShardedEngine::try_new(decayed_query(), n_shards)
            .expect("spawn shards")
            .checkpoint_every(every)
            .inject_fault(FaultPlan {
                shard,
                kind: FaultKind::PanicAtTuple(at),
            });
        let rows = e.run(packets.iter().copied());
        assert_bit_identical(
            expected,
            &rows,
            &format!(
                "seed {seed} round {round}: shards={n_shards} \
                 checkpoint_every={every} crash at tuple {at} of shard {shard}"
            ),
        );
        let t = e.telemetry().snapshot();
        assert_eq!(t.restarts, 1, "seed {seed} round {round}");
    }
}

/// The multi-producer ingress fabric under the same randomized sweep:
/// for any (producers, shards, checkpoint interval, crash point),
/// checkpoint restore plus merged-by-seq per-producer backlog replay
/// must reproduce the unfaulted fabric run bit for bit. Honors the CI
/// fault matrix's `FD_FAULT` seed like the single-dispatcher sweep.
#[test]
fn randomized_multi_producer_crashes_recover_exactly() {
    let seed = fault::env_seed().unwrap_or(0xFA8);
    let mut rng = SmallRng::seed_from_u64(seed);
    let packets = trace(4.0, 25_000.0, 12);
    // The oracle per (shards, producers) topology is the unfaulted fabric
    // run itself: worker drain order is a pure function of the dealt
    // epochs, so a crashed-and-recovered run has no excuse to differ.
    type CleanRun = (Vec<Row>, Vec<u64>);
    let mut clean: std::collections::BTreeMap<(usize, usize), CleanRun> = Default::default();

    for round in 0..6 {
        let n_shards = rng.gen_range(2..=6usize);
        let producers = rng.gen_range(1..=4usize);
        let every = rng.gen_range(64..=8_192u64);
        let shard = rng.gen_range(0..n_shards);
        let (expected, per_shard) = clean.entry((n_shards, producers)).or_insert_with(|| {
            let mut e = ShardedEngine::try_new(decayed_query(), n_shards)
                .expect("spawn shards")
                .try_producers(producers)
                .expect("fabric");
            let rows = e.run(packets.iter().copied());
            let per_shard = e.per_shard_stats().iter().map(|s| s.tuples_in).collect();
            (rows, per_shard)
        });
        let at = rng.gen_range(1..=per_shard[shard]);
        let mut e = ShardedEngine::try_new(decayed_query(), n_shards)
            .expect("spawn shards")
            .checkpoint_every(every)
            .inject_fault(FaultPlan {
                shard,
                kind: FaultKind::PanicAtTuple(at),
            })
            .try_producers(producers)
            .expect("fabric");
        let rows = e.run(packets.iter().copied());
        assert_bit_identical(
            expected,
            &rows,
            &format!(
                "seed {seed} round {round}: producers={producers} shards={n_shards} \
                 checkpoint_every={every} crash at tuple {at} of shard {shard}"
            ),
        );
        let t = e.telemetry().snapshot();
        assert_eq!(t.restarts, 1, "seed {seed} round {round}");
    }
}

/// A crash before the first checkpoint must also recover: the supervisor
/// rebuilds the worker from an empty engine and replays everything.
#[test]
fn crash_before_first_checkpoint_replays_from_scratch() {
    let packets = trace(2.0, 10_000.0, 3);
    let baseline = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .run(packets.iter().copied());
    let mut e = ShardedEngine::try_new(decayed_query(), 2)
        .expect("spawn shards")
        .checkpoint_every(1_000_000) // larger than the stream: never fires
        .inject_fault(FaultPlan {
            shard: 0,
            kind: FaultKind::PanicAtTuple(500),
        });
    let rows = e.run(packets.iter().copied());
    assert_bit_identical(&baseline, &rows, "from-scratch replay");
    let t = e.telemetry().snapshot();
    assert_eq!(t.restarts, 1);
    assert_eq!(t.checkpoints, 0, "no checkpoint ever fired");
    assert!(t.replayed_tuples > 0);
}

/// A wedge is the crash the panic path cannot see: the worker spins
/// forever without dying or heartbeating. Only the overload plane's
/// watchdog — ring jammed past the send deadline *and* a stale lease —
/// can detect it. This test pins down all three guarantees at once:
///
///  - **losslessness**: the respawned incarnation restores the last
///    checkpoint and replays the backlog, so the output is bit-identical
///    to an unfaulted run of the same topology;
///  - **detection latency**: the dispatcher may stall on the jammed ring
///    for at most ~2 lease periods before the watchdog retires and
///    respawns the worker, so the faulted run finishes within a 10%
///    throughput slack plus that detection budget;
///  - **sibling isolation**: the healthy shards still see their entire
///    feeds — a wedge on one shard never becomes data loss on another.
#[test]
fn wedged_worker_respawns_within_the_lease_budget() {
    use std::time::{Duration, Instant};

    let packets = trace(4.0, 25_000.0, 17);
    let lease = Duration::from_millis(250);

    let mut clean = ShardedEngine::try_new(decayed_query(), 3)
        .expect("spawn shards")
        .batch_size(64);
    let t0 = Instant::now();
    let expected = clean.run(packets.iter().copied());
    let clean_elapsed = t0.elapsed();
    let clean_per_shard: Vec<u64> = clean
        .per_shard_stats()
        .iter()
        .map(|s| s.tuples_in)
        .collect();

    let mut e = ShardedEngine::try_new(decayed_query(), 3)
        .expect("spawn shards")
        .batch_size(64)
        .try_overload(OverloadConfig {
            send_deadline: Duration::from_millis(5),
            lease,
            ..OverloadConfig::default()
        })
        .expect("overload config")
        .inject_fault(FaultPlan {
            shard: 1,
            kind: FaultKind::WedgeAtTuple(5_000),
        });
    let t0 = Instant::now();
    let rows = e.run(packets.iter().copied());
    let elapsed = t0.elapsed();

    assert_bit_identical(&expected, &rows, "respawned vs clean");
    let t = e.telemetry().snapshot();
    assert_eq!(t.wedged_respawns, 1, "exactly the injected wedge");
    assert_eq!(t.restarts, 1, "the respawn spends one restart");
    assert_eq!(t.worker_panics, 0, "a wedge is not a panic");
    assert_eq!(t.degraded_shards, 0);
    assert_eq!(t.shed_tuples, 0, "the default Block policy never sheds");
    assert!(t.replayed_tuples > 0, "the backlog was replayed");

    let got_per_shard: Vec<u64> = e.per_shard_stats().iter().map(|s| s.tuples_in).collect();
    assert_eq!(
        clean_per_shard, got_per_shard,
        "every shard — wedged and healthy alike — saw its full feed"
    );
    assert!(
        elapsed <= clean_elapsed.mul_f64(1.1) + 2 * lease,
        "detection blew the lease budget: faulted run took {elapsed:?} \
         against a {clean_elapsed:?} baseline (lease {lease:?})"
    );
}

/// The checkpoint codec itself: freezing an engine mid-stream and
/// restoring it must not perturb anything downstream.
#[test]
fn engine_checkpoint_roundtrip_is_transparent_mid_stream() {
    let packets = trace(4.0, 10_000.0, 5);
    let (head, tail) = packets.split_at(packets.len() / 2);

    let mut original = Engine::new(decayed_query());
    original.keep_closed_state();
    for p in head {
        original.process(p);
    }
    let bytes = original.checkpoint().expect("checkpoint");
    let mut restored = Engine::restore(decayed_query(), &bytes).expect("restore");

    for p in tail {
        original.process(p);
        restored.process(p);
    }
    let a = original.finish();
    let b = restored.finish();
    assert_bit_identical(&a, &b, "restored engine");
    assert_eq!(original.stats(), restored.stats());
}

/// Sampling-based aggregates decline checkpointing (their state is not
/// exactly serializable); a supervised engine running one must fall back
/// to fail-hard semantics rather than silently replaying wrong state —
/// and a clean run must stay exact.
#[test]
fn non_checkpointable_aggregates_still_run_supervised() {
    let q = || {
        Query::builder("sample")
            .group_by(|p| p.dst_host())
            .bucket_secs(2)
            .aggregate(pri_sample_factory(Monomial::new(1.0), 16, 99, |p| {
                p.len as u64
            }))
            .build()
    };
    let packets = trace(3.0, 5_000.0, 13);
    let mut e = ShardedEngine::try_new(q(), 2)
        .expect("spawn shards")
        .checkpoint_every(256);
    let rows = e.run(packets.iter().copied());
    assert!(!rows.is_empty());
    let t = e.telemetry().snapshot();
    assert_eq!(
        t.checkpoints, 0,
        "samplers cannot checkpoint; the slot must be marked unsupported"
    );
    assert_eq!(t.worker_panics, 0);
}
