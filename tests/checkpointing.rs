//! Checkpoint/restore: every fd-core summary snapshots to bytes mid-stream,
//! restores, continues ingesting, and answers exactly like the original —
//! the state-recovery story a production stream processor needs.

use forward_decay::core::aggregates::{DecayedCount, DecayedSum, DecayedVariance};
use forward_decay::core::backward::{
    DeterministicWave, ExponentialHistogram, PrefixBackwardHH, SlidingWindowHH,
};
use forward_decay::core::checkpoint::{from_bytes, to_bytes};
use forward_decay::core::cm::CmSketch;
use forward_decay::core::decay::{AnyDecay, BackExponential, Exponential, Monomial};
use forward_decay::core::distinct::{DominanceSketch, ExactDominance};
use forward_decay::core::heavy_hitters::{
    DecayedHeavyHitters, UnarySpaceSaving, WeightedSpaceSaving,
};
use forward_decay::core::quantiles::{DecayedQuantiles, QDigest, WeightedGK};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 97,
        duration_secs: 20.0,
        rate_pps: 10_000.0,
        n_hosts: 500,
        ..Default::default()
    }
    .generate()
}

/// Ingests the first half, snapshots, restores, feeds the second half into
/// both the original and the restored copy, and compares via `query`.
fn check_roundtrip<S, Q>(mut summary: S, mut feed: impl FnMut(&mut S, &Packet), query: Q)
where
    S: serde::Serialize + serde::de::DeserializeOwned,
    Q: Fn(&S) -> f64,
{
    let packets = trace();
    let mid = packets.len() / 2;
    for p in &packets[..mid] {
        feed(&mut summary, p);
    }
    let snapshot = to_bytes(&summary).expect("serialize");
    let mut restored: S = from_bytes(&snapshot).expect("deserialize");
    // HashMap-backed summaries may iterate in a different order after
    // restore, reordering floating-point accumulation — allow ULP noise.
    let (a0, b0) = (query(&summary), query(&restored));
    assert!(
        (a0 - b0).abs() <= 1e-12 * a0.abs().max(1.0),
        "state differs at snapshot: {a0} vs {b0}"
    );
    for p in &packets[mid..] {
        feed(&mut summary, p);
        feed(&mut restored, p);
    }
    let (a, b) = (query(&summary), query(&restored));
    assert!(
        (a - b).abs() <= 1e-12 * a.abs().max(1.0),
        "diverged after restore: {a} vs {b}"
    );
}

#[test]
fn scalar_aggregates_checkpoint() {
    check_roundtrip(
        DecayedSum::new(Monomial::quadratic(), 0.0),
        |s, p| s.update(p.ts_secs(), p.len as f64),
        |s| s.query(21.0),
    );
    check_roundtrip(
        DecayedCount::new(Exponential::new(0.5), 0.0), // exercises renormalizer state
        |s, p| s.update(p.ts_secs()),
        |s| s.query(21.0),
    );
    check_roundtrip(
        DecayedVariance::new(AnyDecay::Monomial(Monomial::new(1.5)), 0.0),
        |s, p| s.update(p.ts_secs(), p.len as f64),
        |s| s.query(21.0).unwrap(),
    );
}

#[test]
fn heavy_hitter_summaries_checkpoint() {
    check_roundtrip(
        WeightedSpaceSaving::with_epsilon(0.01),
        |s, p| s.update(p.dst_host(), p.len as f64),
        |s| {
            s.heavy_hitters(0.02)
                .first()
                .map(|h| h.count)
                .unwrap_or(0.0)
        },
    );
    check_roundtrip(
        UnarySpaceSaving::with_epsilon(0.01),
        |s, p| s.update(p.dst_host()),
        |s| {
            s.heavy_hitters(0.02)
                .first()
                .map(|h| h.count)
                .unwrap_or(0.0)
        },
    );
    check_roundtrip(
        DecayedHeavyHitters::new(Exponential::new(0.2), 0.0, 256),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
        |s| s.decayed_count(21.0),
    );
    check_roundtrip(
        CmSketch::with_epsilon_delta(0.01, 0.01, 5),
        |s, p| s.update(p.dst_host(), 1.0),
        |s| s.query(0x0A00_0000),
    );
}

#[test]
fn quantile_summaries_checkpoint() {
    check_roundtrip(
        QDigest::with_epsilon(11, 0.02),
        |s, p| s.update(p.len as u64, 1.0),
        |s| s.quantile(0.5).unwrap_or(0) as f64,
    );
    check_roundtrip(
        WeightedGK::new(0.02),
        |s, p| s.update(p.len as f64, 1.0),
        |s| s.quantile(0.5).unwrap_or(0.0),
    );
    check_roundtrip(
        DecayedQuantiles::new(Monomial::quadratic(), 0.0, 11, 0.02),
        |s, p| s.update(p.ts_secs(), p.len as u64),
        |s| s.quantile(0.5, 21.0).unwrap_or(0) as f64,
    );
}

#[test]
fn distinct_summaries_checkpoint() {
    check_roundtrip(
        ExactDominance::new(Monomial::new(1.0), 0.0),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
        |s| s.query(21.0),
    );
    check_roundtrip(
        DominanceSketch::new(Monomial::new(1.0), 0.0, 0.2, 9),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
        |s| s.query(21.0),
    );
}

#[test]
fn backward_baselines_checkpoint() {
    let f = BackExponential::new(0.1);
    check_roundtrip(
        ExponentialHistogram::with_epsilon(0.05),
        |s, p| s.insert_value(p.ts_secs(), p.len as u64),
        |s| s.decayed_query(&f, 21.0),
    );
    check_roundtrip(
        DeterministicWave::with_epsilon(0.1),
        |s, p| s.insert(p.ts_secs()),
        |s| s.window_query(5.0, 21.0),
    );
    check_roundtrip(
        SlidingWindowHH::new(1.0, 6),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
        |s| s.decayed_counts(&f, 21.0).1,
    );
    check_roundtrip(
        PrefixBackwardHH::new(10, 0.1),
        |s, p| s.update(p.ts_secs(), p.dst_host() % 1024),
        |s| s.decayed_total(&f, 21.0),
    );
}

#[test]
fn renormalizing_summaries_checkpoint_mid_renormalization() {
    // α = 20 drives g(t − L) past the rescale threshold several times inside
    // the 20 s trace, so the snapshot lands *between* renormalizations: the
    // restored copy must carry the effective landmark and rescale count, not
    // just the raw accumulator, or the halves disagree after restore.
    check_roundtrip(
        DecayedCount::new(Exponential::new(20.0), 0.0),
        |s, p| s.update(p.ts_secs()),
        |s| s.query(21.0),
    );
    check_roundtrip(
        DecayedHeavyHitters::new(Exponential::new(20.0), 0.0, 64),
        |s, p| s.update(p.ts_secs(), p.dst_host()),
        |s| s.decayed_count(21.0),
    );
    check_roundtrip(
        DecayedQuantiles::new(Exponential::new(20.0), 0.0, 11, 0.05),
        |s, p| s.update(p.ts_secs(), p.len as u64),
        |s| s.decayed_count(21.0),
    );
}

#[test]
fn restored_summary_merges_across_renormalization_gap() {
    // Regression (found by the differential oracle harness): restore a
    // shard whose renormalizer moved its effective landmark ~800 s ahead,
    // then merge it with a shard still at the original landmark. The
    // landmark gap exceeds ln(f64::MAX)/α ≈ 709 s, so the old linear-domain
    // alignment factor `1/g(ΔL)` evaluated as `1/∞ = 0` — silently zeroing
    // the stale shard's mass in release and tripping `scale_all`'s
    // positivity assert under debug assertions. The factor now comes out of
    // the log domain ([`landmark_shift_factor`]) as an honest subnormal.
    use forward_decay::core::merge::Mergeable;
    use forward_decay::core::summary::Summary;

    let g = Exponential::new(1.0);
    let mut stale = DecayedCount::new(g, 0.0);
    stale.update(1.0);
    let mut ahead = DecayedCount::new(g, 0.0);
    ahead.update(800.0);
    ahead.update(801.0);
    assert!(
        Summary::stats(&ahead).renormalizations >= 1,
        "the fast shard must actually have renormalized"
    );
    let restored: DecayedCount<Exponential> =
        from_bytes(&to_bytes(&ahead).expect("serialize")).expect("restore");
    assert_eq!(
        Summary::stats(&restored).renormalizations,
        Summary::stats(&ahead).renormalizations,
        "rescale count must survive the snapshot"
    );
    let t = 802.0;
    use forward_decay::core::decay::ForwardDecay;
    let want = g.weight(0.0, 1.0, t) + g.weight(0.0, 800.0, t) + g.weight(0.0, 801.0, t);
    // Stale into restored-ahead…
    let mut a = restored.clone();
    a.merge_from(&stale);
    assert!(
        (a.query(t) - want).abs() <= 1e-9 * want,
        "{} vs {want}",
        a.query(t)
    );
    // …and restored-ahead into stale.
    let mut b = stale.clone();
    b.merge_from(&restored);
    assert!(
        (b.query(t) - want).abs() <= 1e-9 * want,
        "{} vs {want}",
        b.query(t)
    );
    a.check_invariants().expect("merged state sane");
    b.check_invariants().expect("merged state sane");
}

#[test]
fn snapshots_are_compact() {
    // A constant-space aggregate's snapshot is a few dozen bytes; a
    // SpaceSaving summary is proportional to its counters, not the stream.
    let mut sum = DecayedSum::new(Monomial::quadratic(), 0.0);
    let mut ss = WeightedSpaceSaving::with_epsilon(0.01);
    for p in trace() {
        sum.update(p.ts_secs(), p.len as f64);
        ss.update(p.dst_host(), 1.0);
    }
    let sum_bytes = to_bytes(&sum).unwrap();
    let ss_bytes = to_bytes(&ss).unwrap();
    assert!(
        sum_bytes.len() < 128,
        "scalar snapshot is {} bytes",
        sum_bytes.len()
    );
    assert!(
        ss_bytes.len() < 64 * 1024,
        "SS snapshot is {} bytes",
        ss_bytes.len()
    );
}

#[test]
fn corrupted_snapshots_fail_loudly() {
    let mut q = QDigest::with_epsilon(8, 0.1);
    q.update(5, 1.0);
    let mut bytes = to_bytes(&q).unwrap();
    bytes.truncate(bytes.len() / 2);
    assert!(from_bytes::<QDigest>(&bytes).is_err());
}
