//! End-to-end correctness: the full engine pipeline (filter → LFTA → HFTA →
//! bucket close) against brute-force reference computations on a realistic
//! synthetic trace.

use std::collections::HashMap;

use forward_decay::core::decay::{Exponential, ForwardDecay, Monomial};
use forward_decay::engine::prelude::*;
use forward_decay::gen::TraceConfig;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 11,
        duration_secs: 150.0, // spans three 60 s buckets
        rate_pps: 20_000.0,
        n_hosts: 1_000,
        zipf_skew: 1.1,
        tcp_fraction: 0.8,
        ..Default::default()
    }
    .generate()
}

/// Brute-force per-(bucket, group) reference for a decayed sum.
fn reference_decayed_sum<G: ForwardDecay>(
    packets: &[Packet],
    g: &G,
    val: impl Fn(&Packet) -> f64,
    key: impl Fn(&Packet) -> u64,
    tcp_only: bool,
) -> HashMap<(u64, u64), f64> {
    let mut out: HashMap<(u64, u64), f64> = HashMap::new();
    for p in packets {
        if tcp_only && p.proto != Proto::Tcp {
            continue;
        }
        let bucket = p.ts / (60 * MICROS_PER_SEC);
        let landmark = (bucket * 60) as f64;
        let t_end = ((bucket + 1) * 60) as f64;
        let w = g.weight(landmark, p.ts_secs(), t_end);
        *out.entry((bucket, key(p))).or_default() += w * val(p);
    }
    out
}

#[test]
fn undecayed_count_matches_exact_per_group() {
    let packets = trace();
    let q = Query::builder("count")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_key())
        .bucket_secs(60)
        .aggregate(count_factory())
        .build();
    let rows = Engine::new(q).run(packets.iter().copied());

    let mut exact: HashMap<(u64, u64), f64> = HashMap::new();
    for p in packets.iter().filter(|p| p.proto == Proto::Tcp) {
        *exact
            .entry((p.ts / (60 * MICROS_PER_SEC), p.dst_key()))
            .or_default() += 1.0;
    }
    assert_eq!(rows.len(), exact.len());
    for r in &rows {
        let bucket = r.bucket_start / (60 * MICROS_PER_SEC);
        assert_eq!(r.value.as_float().unwrap(), exact[&(bucket, r.key)]);
    }
}

#[test]
fn forward_quadratic_sum_matches_brute_force_both_architectures() {
    let packets = trace();
    let g = Monomial::quadratic();
    let exact = reference_decayed_sum(&packets, &g, |p| p.len as f64, |p| p.dst_key(), true);
    for two_level in [true, false] {
        let q = Query::builder("fwd_sum")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_key())
            .bucket_secs(60)
            .aggregate(fwd_sum_factory(g, |p| p.len as f64))
            .two_level(two_level)
            .lfta_slots(512) // force eviction traffic
            .build();
        let mut e = Engine::new(q);
        let rows = e.run(packets.iter().copied());
        assert_eq!(rows.len(), exact.len(), "two_level = {two_level}");
        if two_level {
            assert!(
                e.stats().lfta_evictions > 0,
                "test should exercise evictions"
            );
        }
        for r in &rows {
            let bucket = r.bucket_start / (60 * MICROS_PER_SEC);
            let want = exact[&(bucket, r.key)];
            let got = r.value.as_float().unwrap();
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "two_level = {two_level}, bucket {bucket}, key {}: {got} vs {want}",
                r.key
            );
        }
    }
}

#[test]
fn forward_exponential_count_matches_brute_force() {
    let packets = trace();
    let g = Exponential::new(0.1);
    let exact = reference_decayed_sum(&packets, &g, |_| 1.0, |p| p.dst_host(), false);
    let q = Query::builder("fwd_count")
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_count_factory(g))
        .build();
    let rows = Engine::new(q).run(packets.iter().copied());
    assert_eq!(rows.len(), exact.len());
    for r in &rows {
        let bucket = r.bucket_start / (60 * MICROS_PER_SEC);
        let want = exact[&(bucket, r.key)];
        let got = r.value.as_float().unwrap();
        assert!((got - want).abs() <= 1e-9 * want.max(1.0));
    }
}

#[test]
fn engine_heavy_hitters_match_exact_decayed_counts() {
    let packets = trace();
    let g = Monomial::quadratic();
    // Exact decayed counts per host in bucket 0.
    let mut exact: HashMap<u64, f64> = HashMap::new();
    let mut total = 0.0;
    for p in packets
        .iter()
        .filter(|p| p.ts < 60 * MICROS_PER_SEC && p.proto == Proto::Tcp)
    {
        let w = g.weight(0.0, p.ts_secs(), 60.0);
        *exact.entry(p.dst_host()).or_default() += w;
        total += w;
    }
    let phi = 0.02;
    let eps = 0.001;
    let q = Query::builder("hh")
        .filter(|p| p.proto == Proto::Tcp)
        .bucket_secs(60)
        .aggregate(fwd_hh_factory(g, eps, phi, |p| p.dst_host()))
        .build();
    let rows = Engine::new(q).run(packets.iter().copied());
    let bucket0 = rows.iter().find(|r| r.bucket_start == 0).expect("bucket 0");
    let reported: HashMap<u64, f64> = bucket0
        .value
        .as_items()
        .unwrap()
        .iter()
        .map(|iv| (iv.item, iv.value))
        .collect();
    // Completeness: every true φ-heavy host is reported.
    for (&host, &c) in &exact {
        if c >= phi * total {
            assert!(reported.contains_key(&host), "missed heavy host {host}");
        }
    }
    // Soundness: nothing below (φ − ε)·C, and estimates within ε·C.
    for (&host, &est) in &reported {
        let truth = exact.get(&host).copied().unwrap_or(0.0);
        assert!(truth >= (phi - eps) * total - 1e-9, "false positive {host}");
        assert!(est >= truth - 1e-9 && est - truth <= eps * total + 1e-9);
    }
}

#[test]
fn engine_quantiles_track_exact_decayed_ranks() {
    let packets = trace();
    let g = Exponential::new(0.05);
    let eps = 0.02;
    let q = Query::builder("quant")
        .bucket_secs(60)
        .aggregate(fwd_quantile_factory(
            g,
            11,
            eps,
            vec![0.25, 0.5, 0.75, 0.95],
            |p| p.len as u64,
        ))
        .build();
    let rows = Engine::new(q).run(packets.iter().copied());
    let bucket0 = rows.iter().find(|r| r.bucket_start == 0).expect("bucket 0");
    // Exact weighted ranks in bucket 0.
    let in_bucket: Vec<&Packet> = packets
        .iter()
        .filter(|p| p.ts < 60 * MICROS_PER_SEC)
        .collect();
    let weights: Vec<f64> = in_bucket
        .iter()
        .map(|p| g.weight(0.0, p.ts_secs(), 60.0))
        .collect();
    let total: f64 = weights.iter().sum();
    for iv in bucket0.value.as_items().unwrap() {
        let (value, phi) = (iv.item, iv.value);
        // The length distribution has atoms (e.g. 30% of packets are exactly
        // 1500 B), so a correct φ-quantile `v` satisfies
        // rank(< v) ≤ (φ+ε)·C and rank(≤ v) ≥ (φ−ε)·C.
        let rank_le: f64 = in_bucket
            .iter()
            .zip(&weights)
            .filter(|(p, _)| (p.len as u64) <= value)
            .map(|(_, w)| w)
            .sum();
        let rank_lt: f64 = in_bucket
            .iter()
            .zip(&weights)
            .filter(|(p, _)| (p.len as u64) < value)
            .map(|(_, w)| w)
            .sum();
        assert!(
            rank_le / total >= phi - 4.0 * eps,
            "phi = {phi}: value {value} has rank(≤) fraction {}",
            rank_le / total
        );
        assert!(
            rank_lt / total <= phi + 4.0 * eps,
            "phi = {phi}: value {value} has rank(<) fraction {}",
            rank_lt / total
        );
    }
}

#[test]
fn space_per_group_ordering_matches_figure_2d() {
    // The paper's Figure 2(d): undecayed ≈ 4 B < forward ≈ 8 B ≪ EH (KBs).
    let packets = trace();
    let probe = |factory: std::sync::Arc<fd_engine::udaf::FnFactory>| -> f64 {
        let q = Query::builder("probe")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_key())
            .bucket_secs(60)
            .aggregate(factory)
            .two_level(false)
            .build();
        let mut e = Engine::new(q);
        for p in packets.iter().filter(|p| p.ts < 60 * MICROS_PER_SEC) {
            e.process(p);
        }
        e.space_per_group().expect("live groups")
    };
    let undecayed = probe(count_factory());
    let forward = probe(fwd_count_factory(Monomial::quadratic()));
    let eh = probe(eh_count_factory(
        0.1,
        DynBackward::from_decay(fd_core::decay::BackPolynomial::new(2.0)),
    ));
    assert_eq!(undecayed, 4.0);
    assert_eq!(forward, 8.0);
    assert!(
        eh > 50.0 * forward,
        "EH per-group space should be orders of magnitude above forward decay: {eh} bytes"
    );
}
