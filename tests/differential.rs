//! Differential oracle harness: every `Summary` implementor, cross-checked
//! against the brute-force reference in `fd_core::oracle` on seeded
//! adversarial streams, through four ingestion paths:
//!
//! - **scalar** — one `update_at` per event;
//! - **batched** — `update_batch_at` over columnar chunks (the kernel /
//!   memoized fast paths);
//! - **merged** — events round-robined across three shards fed
//!   independently, then folded with `Mergeable::merge_from` (shards
//!   renormalize at different times, so this exercises landmark alignment);
//! - **checkpointed** — snapshot to bytes mid-stream, restore, continue.
//!   The samplers carry raw RNG state without serde derives, so they have
//!   no checkpoint path — that exclusion is deliberate and documented
//!   (see DESIGN.md §6), not a silent skip.
//!
//! Error budgets: the O(1) aggregates and `ExactDominance` must agree to
//! floating-point accumulation order (1e-6 relative, against a
//! cancellation-aware scale); the sketches must agree within their paper
//! bounds (SpaceSaving `W/c`, q-digest `εW` per merge level, KMV `ε`
//! relative); the samplers are checked structurally (membership, size,
//! invariants) plus the Horvitz–Thompson estimate for priority sampling.
//!
//! On failure the ddmin shrinker minimizes the stream and prints it as a
//! Rust literal ready to commit as a named regression test — the
//! `regression_*` tests at the bottom are exactly such distilled cases.
//!
//! Seeds: the committed matrix below, or `FD_ORACLE_SEED=s1,s2,…` (CI's
//! nightly smoke sets it to the run id).

use forward_decay::core::aggregates::{
    DecayedAverage, DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance,
};
use forward_decay::core::checkpoint::{from_bytes, to_bytes};
use forward_decay::core::cm::DecayedCmHeavyHitters;
use forward_decay::core::decay::{AnyDecay, Exponential, ForwardDecay, Monomial, NoDecay};
use forward_decay::core::distinct::{DominanceSketch, ExactDominance};
use forward_decay::core::heavy_hitters::DecayedHeavyHitters;
use forward_decay::core::merge::Mergeable;
use forward_decay::core::oracle::{
    adversarial_stream, format_events, harness_seeds, shrink, Oracle, OracleEvent, StreamConfig,
};
use forward_decay::core::quantiles::DecayedQuantiles;
use forward_decay::core::sampling::{PrioritySampler, WeightedReservoir, WithReplacementSampler};
use forward_decay::core::summary::Summary;
use forward_decay::core::Timestamp;

/// The committed seed matrix — what CI's `differential` job runs.
const SEEDS: &[u64] = &[1, 7, 42, 1009, 86_028_157];
const LANDMARK: f64 = 100.0;
const Q_TIME: f64 = 175.0;
const SHARDS: usize = 3;
const BATCH: usize = 37;

fn q() -> Timestamp {
    Timestamp::from_secs_f64(Q_TIME)
}

/// The decay matrix: no decay (exact arithmetic), polynomial (the paper's
/// workhorse), and an exponential fast enough that the renormalizer fires
/// several times inside the stream's 60 s span (α·span ≫ ln 1e150).
fn decays() -> Vec<(&'static str, AnyDecay)> {
    vec![
        ("none", AnyDecay::None),
        ("quad", AnyDecay::Monomial(Monomial::quadratic())),
        ("exp20", AnyDecay::Exponential(Exponential::new(20.0))),
    ]
}

/// Runs `check` and, on failure, ddmin-shrinks the stream and panics with a
/// committed-regression-ready reproduction.
fn assert_stream(
    events: &[OracleEvent],
    seed: u64,
    label: &str,
    check: impl Fn(&[OracleEvent]) -> Result<(), String>,
) {
    if let Err(first) = check(events) {
        let minimal = shrink(events, |es| check(es).is_err());
        let err = check(&minimal).err().unwrap_or(first);
        panic!(
            "differential failure [{label}] seed {seed}: {err}\n\
             shrunk to {} event(s) — reproduce with FD_ORACLE_SEED={seed}, or\n\
             commit as a regression test over:\n{}",
            minimal.len(),
            format_events(&minimal),
        );
    }
}

/// Drives one summary through the scalar, batched and merged paths.
///
/// `mk` receives an instance id — 0 for the scalar/batched/checkpointed
/// instances, the shard index for the merged path's shards. Deterministic
/// summaries ignore it; the samplers fold it into their seed, because
/// merged shards must draw from independent RNG streams (same-seed shards
/// produce correlated priorities and a biased merged estimator — a bug this
/// harness caught; see the `Mergeable` docs on the samplers).
fn drive<S>(
    mk: &dyn Fn(u64) -> S,
    upd: &dyn Fn(&OracleEvent) -> S::Update,
    events: &[OracleEvent],
) -> Vec<(&'static str, S)>
where
    S: Summary + Mergeable,
    S::Update: Clone,
{
    let mut scalar = mk(0);
    for e in events {
        scalar.update_at(e.t, upd(e));
    }
    let mut batched = mk(0);
    for chunk in events.chunks(BATCH) {
        let ts: Vec<Timestamp> = chunk.iter().map(|e| e.t).collect();
        let us: Vec<S::Update> = chunk.iter().map(upd).collect();
        batched.update_batch_at(&ts, &us);
    }
    let mut shards: Vec<S> = (0..SHARDS).map(|i| mk(i as u64)).collect();
    for (i, e) in events.iter().enumerate() {
        shards[i % SHARDS].update_at(e.t, upd(e));
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge_from(s);
    }
    vec![("scalar", scalar), ("batched", batched), ("merged", merged)]
}

/// The checkpoint path: half the stream, snapshot/restore, the other half.
fn drive_checkpointed<S>(
    mk: &dyn Fn(u64) -> S,
    upd: &dyn Fn(&OracleEvent) -> S::Update,
    events: &[OracleEvent],
) -> S
where
    S: Summary + serde::Serialize + serde::de::DeserializeOwned,
{
    let mid = events.len() / 2;
    let mut s = mk(0);
    for e in &events[..mid] {
        s.update_at(e.t, upd(e));
    }
    let bytes = to_bytes(&s).expect("serialize mid-stream");
    let mut s: S = from_bytes(&bytes).expect("restore mid-stream");
    for e in &events[mid..] {
        s.update_at(e.t, upd(e));
    }
    s
}

fn close(path: &str, what: &str, got: f64, want: f64, tol: f64) -> Result<(), String> {
    if (got - want).abs() <= tol || (got.is_nan() && want.is_nan()) {
        Ok(())
    } else {
        Err(format!(
            "{path}: {what} = {got}, oracle says {want} (tol {tol})"
        ))
    }
}

// ---------------------------------------------------------------------------
// Exact O(1) aggregates: count, sum, average, variance — 1e-6 relative
// against a cancellation-aware magnitude scale.
// ---------------------------------------------------------------------------

#[test]
fn differential_count_and_sum() {
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("count/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let want = o.count(q());
                let mk = |_: u64| DecayedCount::new(gc.clone(), LANDMARK);
                let mut paths = drive(&mk, &|_| (), es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|_| (), es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    close(
                        path,
                        "count",
                        s.query_at(q()),
                        want,
                        1e-6 * want.abs().max(1e-12),
                    )?;
                }
                Ok(())
            });
            let gc = g.clone();
            assert_stream(&events, seed, &format!("sum/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let want = o.sum(q());
                // Scale against Σ w·|v|: ±1e6 values cancel in the sum, so a
                // tolerance relative to |want| alone would be meaningless.
                let scale: f64 = es.iter().map(|e| o.weight(e.t, q()) * e.v.abs()).sum();
                let mk = |_: u64| DecayedSum::new(gc.clone(), LANDMARK);
                let mut paths = drive(&mk, &|e| e.v, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.v, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    close(path, "sum", s.query_at(q()), want, 1e-6 * scale.max(1e-12))?;
                }
                Ok(())
            });
        }
    }
}

#[test]
fn differential_average_and_variance() {
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("avg+var/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let c = o.count(q());
                if c <= 1e-12 {
                    return Ok(()); // no decayed mass: both sides answer None
                }
                let scale: f64 = es
                    .iter()
                    .map(|e| o.weight(e.t, q()) * e.v.abs())
                    .sum::<f64>()
                    / c;
                let want_avg = o.average(q()).expect("mass > 0");
                let mk = |_: u64| DecayedAverage::new(gc.clone(), LANDMARK);
                let mut paths = drive(&mk, &|e| e.v, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.v, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    let got = s
                        .query_at(q())
                        .ok_or_else(|| format!("{path}: average None, oracle {want_avg}"))?;
                    close(path, "average", got, want_avg, 1e-6 * scale.max(1e-12))?;
                }
                let sq_scale: f64 = es
                    .iter()
                    .map(|e| o.weight(e.t, q()) * e.v * e.v)
                    .sum::<f64>()
                    / c;
                let want_var = o.variance(q()).expect("mass > 0");
                let mk = |_: u64| DecayedVariance::new(gc.clone(), LANDMARK);
                let mut paths = drive(&mk, &|e| e.v, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.v, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    let got = s
                        .query_at(q())
                        .ok_or_else(|| format!("{path}: variance None, oracle {want_var}"))?;
                    close(path, "variance", got, want_var, 1e-6 * sq_scale.max(1e-12))?;
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Extremum: decayed value always exact; the witness (t_i, v_i) is asserted
// whenever the oracle's winner is clear of FP rounding (or the tie is exact,
// where the deterministic smallest-(t, v) rule applies on both sides).
// ---------------------------------------------------------------------------

#[test]
fn differential_extremum() {
    for seed in harness_seeds(SEEDS) {
        // NaN values on: the skip-NaN policy is part of what's under test.
        let cfg = StreamConfig {
            allow_nan: true,
            ..StreamConfig::default()
        };
        let events = adversarial_stream(seed, &cfg);
        for (gname, g) in decays() {
            for min in [true, false] {
                let gc = g.clone();
                let which = if min { "min" } else { "max" };
                assert_stream(&events, seed, &format!("{which}/{gname}"), move |es| {
                    let mut o = Oracle::new(gc.clone(), LANDMARK);
                    o.push_all(es);
                    let want = o.extremum(min, q());
                    let margin = o.extremum_margin(min, q());
                    let mk = |_: u64| {
                        if min {
                            DecayedExtremum::min(gc.clone(), LANDMARK)
                        } else {
                            DecayedExtremum::max(gc.clone(), LANDMARK)
                        }
                    };
                    let mut paths = drive(&mk, &|e| e.v, es);
                    paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.v, es)));
                    for (path, s) in paths {
                        s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                        match (s.query_at(q()), want) {
                            (None, None) => {}
                            (got, None) | (got @ None, _) => {
                                return Err(format!("{path}: got {got:?}, oracle {want:?}"));
                            }
                            (Some((gd, gt, gv)), Some((wd, wt, wv))) => {
                                let tol = 1e-6 * wd.abs().max(1e-12);
                                close(path, "decayed extremum", gd, wd, tol)?;
                                // Witness: only when the oracle's winner is
                                // unambiguous (clear margin, or an exact tie
                                // resolved by the shared tie rule).
                                let clear = margin.is_none_or(|m| m > tol);
                                if clear && (gt, gv) != (wt, wv) {
                                    return Err(format!(
                                        "{path}: witness ({gt:?}, {gv}), oracle ({wt:?}, {wv})"
                                    ));
                                }
                            }
                        }
                    }
                    Ok(())
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Heavy hitters (weighted SpaceSaving, capacity c = 256, φ = 0.1):
//  - the total decayed weight is tracked exactly;
//  - completeness: every key with true share ≥ φ is reported (SpaceSaving
//    never underestimates);
//  - soundness: every reported key has true share ≥ φ − ε_eff, where
//    ε_eff = 1/c for single-summary paths and SHARDS/c after merging.
// ---------------------------------------------------------------------------

#[test]
fn differential_heavy_hitters() {
    const CAP: usize = 256;
    const PHI: f64 = 0.1;
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("hh/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let w = o.count(q());
                let mk = |_: u64| DecayedHeavyHitters::new(gc.clone(), LANDMARK, CAP);
                let mut paths = drive(&mk, &|e| e.key, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.key, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    close(
                        path,
                        "total weight",
                        s.query_at(q()),
                        w,
                        1e-6 * w.max(1e-12),
                    )?;
                    if w <= 1e-12 {
                        continue;
                    }
                    let eps = if path == "merged" {
                        SHARDS as f64 / CAP as f64
                    } else {
                        1.0 / CAP as f64
                    };
                    let reported = s.heavy_hitters(PHI, q());
                    for (key, true_count) in o.heavy_hitters(PHI * (1.0 + 1e-9), q()) {
                        if !reported.iter().any(|h| h.item == key) {
                            return Err(format!(
                                "{path}: true heavy hitter {key} (count {true_count}, \
                                 threshold {}) not reported",
                                PHI * w
                            ));
                        }
                    }
                    for h in &reported {
                        let true_count = o.item_count(h.item, q());
                        let floor = (PHI - eps) * w - 1e-6 * w;
                        if true_count < floor {
                            return Err(format!(
                                "{path}: reported {} has true count {true_count} \
                                 below the soundness floor {floor}",
                                h.item
                            ));
                        }
                        if h.count + 1e-6 * w < true_count {
                            return Err(format!(
                                "{path}: SpaceSaving underestimates {}: {} < {true_count}",
                                h.item, h.count
                            ));
                        }
                    }
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Quantiles (q-digest over 11-bit keys, ε = 0.05): the total weight is
// exact; each reported φ-quantile must sit within the rank band
// (φ ± B)·W, with B = 2ε for single-summary paths and 4ε after merges
// (compression error compounds per merge).
// ---------------------------------------------------------------------------

#[test]
fn differential_quantiles() {
    const EPS: f64 = 0.05;
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("quantiles/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let w = o.count(q());
                let mk = |_: u64| DecayedQuantiles::new(gc.clone(), LANDMARK, 11, EPS);
                let mut paths = drive(&mk, &|e| e.key, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.key, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    close(
                        path,
                        "total weight",
                        s.query_at(q()),
                        w,
                        1e-6 * w.max(1e-12),
                    )?;
                    if w <= 1e-12 {
                        continue;
                    }
                    let band = if path == "merged" {
                        4.0 * EPS
                    } else {
                        2.0 * EPS
                    };
                    for phi in [0.25, 0.5, 0.9] {
                        let got = s
                            .quantile(phi, q())
                            .ok_or_else(|| format!("{path}: φ={phi} quantile None"))?;
                        let hi = o.rank(got, q());
                        if hi + 1e-9 * w < (phi - band) * w {
                            return Err(format!(
                                "{path}: φ={phi} quantile {got} ranks too low: \
                                 {hi} < {}",
                                (phi - band) * w
                            ));
                        }
                        let lo = if got == 0 { 0.0 } else { o.rank(got - 1, q()) };
                        if lo > (phi + band) * w + 1e-9 * w {
                            return Err(format!(
                                "{path}: φ={phi} quantile {got} ranks too high: \
                                 rank({}) = {lo} > {}",
                                got.saturating_sub(1),
                                (phi + band) * w
                            ));
                        }
                    }
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Dominance norms: ExactDominance must match the oracle to FP accumulation
// order; the KMV-backed DominanceSketch within its ε (fixed seeds make the
// randomized bound a deterministic check).
// ---------------------------------------------------------------------------

#[test]
fn differential_dominance() {
    const EPS: f64 = 0.2;
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("dominance/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let want = o.dominance(q());
                let mk = |_: u64| ExactDominance::new(gc.clone(), LANDMARK);
                let mut paths = drive(&mk, &|e| e.key, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.key, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    close(
                        path,
                        "dominance",
                        s.query_at(q()),
                        want,
                        1e-6 * want.max(1e-12),
                    )?;
                }
                let mk = |_: u64| DominanceSketch::new(gc.clone(), LANDMARK, EPS, 12345);
                let mut paths = drive(&mk, &|e| e.key, es);
                paths.push(("checkpointed", drive_checkpointed(&mk, &|e| e.key, es)));
                for (path, s) in paths {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    if want <= 1e-12 {
                        continue;
                    }
                    close(
                        path,
                        "dominance sketch",
                        s.query_at(q()),
                        want,
                        2.0 * EPS * want,
                    )?;
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Samplers. No checkpoint path: WithReplacementSampler / WeightedReservoir /
// PrioritySampler hold raw `SmallRng` state without serde derives, so they
// are not checkpointable by design (DESIGN.md §6) — scalar, batched and
// merged paths only. Samples are random, so the checks are structural:
// membership in the stream, size bounds, internal invariants, and the
// Horvitz–Thompson estimate for priority sampling.
// ---------------------------------------------------------------------------

#[test]
fn differential_samplers() {
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        let keys: std::collections::HashSet<u64> = events.iter().map(|e| e.key).collect();
        for (gname, g) in decays() {
            let gc = g.clone();
            let all_keys = keys.clone();
            assert_stream(&events, seed, &format!("samplers/{gname}"), move |es| {
                let keys: std::collections::HashSet<u64> = es.iter().map(|e| e.key).collect();
                let _ = &all_keys;
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let w = o.count(q());

                // With-replacement sampler: s independent chains.
                let mk = |inst: u64| {
                    WithReplacementSampler::<u64, _>::new(
                        gc.clone(),
                        LANDMARK,
                        8,
                        seed ^ (inst << 32),
                    )
                };
                for (path, s) in drive(&mk, &|e| e.key, es) {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    for item in s.query_at(q()) {
                        if !keys.contains(&item) {
                            return Err(format!("{path}: sampled {item} never streamed"));
                        }
                    }
                }
                // The default batched path replays updates one by one in
                // order, so its RNG consumption — and thus its sample — must
                // be identical to the scalar path's.
                let paths = drive(&mk, &|e| e.key, es);
                let scalar_sample = paths[0].1.query_at(q());
                let batched_sample = paths[1].1.query_at(q());
                if scalar_sample != batched_sample {
                    return Err(format!(
                        "with-replacement sampler diverges between scalar \
                         ({scalar_sample:?}) and batched ({batched_sample:?}) paths"
                    ));
                }

                // Weighted reservoir (without replacement): at most k items.
                let mk = |inst: u64| {
                    WeightedReservoir::<u64, _>::new(gc.clone(), LANDMARK, 16, seed ^ (inst << 32))
                };
                for (path, s) in drive(&mk, &|e| e.key, es) {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    let sample = s.query_at(q());
                    if sample.len() > 16 {
                        return Err(format!("{path}: reservoir holds {}", sample.len()));
                    }
                    for item in sample {
                        if !keys.contains(&item) {
                            return Err(format!("{path}: sampled {item} never streamed"));
                        }
                    }
                }

                // Priority sampler: the Horvitz–Thompson estimate of the
                // decayed count. k = 64 of ≤ 400 events keeps the estimator's
                // deterministic-per-seed error well inside ±50%.
                let mk = |inst: u64| {
                    PrioritySampler::<u64, _>::new(gc.clone(), LANDMARK, 64, seed ^ (inst << 32))
                };
                for (path, s) in drive(&mk, &|e| e.key, es) {
                    s.check_invariants().map_err(|e| format!("{path}: {e}"))?;
                    if w > 1e-12 {
                        close(path, "HT estimate", s.query_at(q()), w, 0.5 * w)?;
                    }
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Count-Min-backed heavy hitters (not a `Summary` implementor — driven
// through its inherent API): scalar and merged paths; CM overestimates by at
// most εW per committed seed, and the single heaviest true key must surface.
// ---------------------------------------------------------------------------

#[test]
fn differential_cm_heavy_hitters() {
    const PHI: f64 = 0.1;
    const EPS: f64 = 0.02;
    for seed in harness_seeds(SEEDS) {
        let events = adversarial_stream(seed, &StreamConfig::default());
        for (gname, g) in decays() {
            let gc = g.clone();
            assert_stream(&events, seed, &format!("cm-hh/{gname}"), move |es| {
                let mut o = Oracle::new(gc.clone(), LANDMARK);
                o.push_all(es);
                let w = o.count(q());
                if w <= 1e-12 {
                    return Ok(());
                }
                let mk = || DecayedCmHeavyHitters::new(gc.clone(), LANDMARK, PHI, EPS, 0.01, 99);
                let mut scalar = mk();
                for e in es {
                    scalar.update(e.t, e.key);
                }
                let mut shards: Vec<_> = (0..SHARDS).map(|_| mk()).collect();
                for (i, e) in es.iter().enumerate() {
                    shards[i % SHARDS].update(e.t, e.key);
                }
                let mut merged = shards.remove(0);
                for s in &shards {
                    merged.merge_from(s);
                }
                for (path, s, eps_eff) in [
                    ("scalar", &scalar, EPS),
                    ("merged", &merged, EPS * SHARDS as f64),
                ] {
                    let reported = s.heavy_hitters(q());
                    // Soundness: reported counts come from the CM sketch, so
                    // they overestimate by at most ε_eff·W; anything reported
                    // must genuinely weigh in at φ − ε_eff or more.
                    for h in &reported {
                        let true_count = o.item_count(h.item, q());
                        if true_count < (PHI - eps_eff) * w - 1e-6 * w {
                            return Err(format!(
                                "{path}: reported {} with true count {true_count} < {}",
                                h.item,
                                (PHI - eps_eff) * w
                            ));
                        }
                        if h.count + 1e-6 * w < true_count {
                            return Err(format!(
                                "{path}: CM underestimates {}: {} < {true_count}",
                                h.item, h.count
                            ));
                        }
                    }
                    // The heaviest true key (when clearly heavy) must surface.
                    if let Some((top, c)) = o.heavy_hitters(PHI + eps_eff, q()).first() {
                        if !reported.iter().any(|h| h.item == *top) {
                            return Err(format!(
                                "{path}: heaviest key {top} (count {c}) not reported"
                            ));
                        }
                    }
                }
                Ok(())
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Committed regression cases — streams distilled by the shrinker (or built
// by hand from its output) for the bugs this harness flushed out.
// ---------------------------------------------------------------------------

/// Merging shards whose effective landmarks drifted more than ~709/α apart
/// used to compute the alignment factor as `1 / g(ΔL)` in the linear domain:
/// `g` overflows to ∞, the factor collapses to 0, and the older shard's
/// entire mass vanished (or tripped `scale_all`'s positivity assert under
/// debug assertions). The factor now comes out of the log domain.
#[test]
fn regression_merge_across_renormalization_gap() {
    let g = Exponential::new(1.0);
    // Shard A: one item right after the landmark; never renormalizes.
    let mut a = DecayedCount::new(g, 0.0);
    a.update(1.0);
    // Shard B: items ~800 s later; its renormalizer moves the effective
    // landmark far enough that g(ΔL) overflows in the linear domain.
    let mut b = DecayedCount::new(g, 0.0);
    b.update(800.0);
    b.update(801.0);
    assert!(
        Summary::stats(&b).renormalizations >= 1,
        "shard B must have renormalized for this regression to bite"
    );
    let t = 802.0;
    let want = g.weight(0.0, 1.0, t) + g.weight(0.0, 800.0, t) + g.weight(0.0, 801.0, t);
    // Old shard into new: A's (negligible) mass shifts by e^{-800} — an
    // honest subnormal-rounds-to-zero, not 1/∞.
    let mut newer = b.clone();
    newer.merge_from(&a);
    assert!((newer.query(t) - want).abs() <= 1e-9 * want);
    // New shard into old: B renormalizes A up to its landmark, same answer.
    let mut older = a.clone();
    older.merge_from(&b);
    assert!((older.query(t) - want).abs() <= 1e-9 * want);
    newer.check_invariants().unwrap();
    older.check_invariants().unwrap();
}

/// Arrivals stamped before the landmark used to trip a debug assertion — and
/// in release, a linear `g` handed them *negative* weights that silently
/// corrupted sums. Policy now: clamp to the landmark, uniformly.
#[test]
fn regression_pre_landmark_arrivals_clamp() {
    let g = Monomial::new(1.0); // g(n) = n: pre-landmark n < 0 flips the sign
    let mut sum = DecayedSum::new(g, 100.0);
    let mut count = DecayedCount::new(g, 100.0);
    sum.update(95.0, 4.0); // straggler: clamps to L, weight g(0) = 0
    sum.update(110.0, 2.0);
    count.update(95.0);
    count.update(110.0);
    let t = 120.0;
    let want_sum = g.weight(100.0, 110.0, t) * 2.0; // straggler contributes 0
    assert!((sum.query(t) - want_sum).abs() <= 1e-12);
    assert!(sum.query(t) >= 0.0, "no negative mass from stragglers");
    let want_count = g.weight(100.0, 110.0, t);
    assert!((count.query(t) - want_count).abs() <= 1e-12);
    // Batched path clamps identically.
    let mut batched = DecayedSum::new(g, 100.0);
    batched.update_batch(
        &[
            Timestamp::from_secs_f64(95.0),
            Timestamp::from_secs_f64(110.0),
        ],
        &[4.0, 2.0],
    );
    assert!((batched.query(t) - sum.query(t)).abs() <= 1e-12);
}

/// Two shards seeing equal extremal keys — here undecayed value 7.0 at
/// t = 1 and t = 2 — used to report whichever witness merged first. The tie
/// rule (smallest `(t_i, v)`) now makes A⋅merge(B) and B⋅merge(A) agree.
#[test]
fn regression_extremum_merge_order_tie() {
    let mk = || DecayedExtremum::max(NoDecay, 0.0);
    let mut a = mk();
    a.update(1.0, 7.0);
    let mut b = mk();
    b.update(2.0, 7.0);
    let mut ab = a.clone();
    ab.merge_from(&b);
    let mut ba = b.clone();
    ba.merge_from(&a);
    let wa = ab.query(10.0).unwrap();
    let wb = ba.query(10.0).unwrap();
    assert_eq!(wa, wb, "merge order changed the witness");
    assert_eq!(wa.1, Timestamp::from_secs_f64(1.0), "earliest witness wins");
}

/// A NaN value used to lodge itself as the extremum forever (every
/// comparison against NaN is false, so nothing could displace it). NaN keys
/// are now skipped at ingestion and at merge.
#[test]
fn regression_extremum_ignores_nan_values() {
    let mut m = DecayedExtremum::max(Monomial::quadratic(), 0.0);
    m.update(1.0, f64::NAN);
    m.update(2.0, 3.0);
    let (_, t_i, v) = m.query(10.0).expect("real value present");
    assert_eq!((t_i, v), (Timestamp::from_secs_f64(2.0), 3.0));
    m.check_invariants().unwrap();
    // And across a merge: a shard holding only NaN contributes nothing.
    let mut nan_shard = DecayedExtremum::max(Monomial::quadratic(), 0.0);
    nan_shard.update(5.0, f64::NAN);
    assert!(
        nan_shard.query(10.0).is_none(),
        "NaN never becomes a witness"
    );
    let mut merged = m.clone();
    merged.merge_from(&nan_shard);
    assert_eq!(merged.query(10.0), m.query(10.0));
}

// ---------------------------------------------------------------------------
// Engine-level differential: the single-threaded Engine and the supervised
// ShardedEngine replay the same event sequence (data + punctuation) and must
// emit the same rows, modulo floating-point summation order.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Shedding differential: the sharded engine under each `ShedPolicy`,
// cross-checked against the single-threaded reference over the same stream.
//
//  - Block and DropOldest on a healthy run admit the entire stream: rows
//    must match the reference exactly (modulo FP summation order) and the
//    shed counters must read zero — "lossless when unpressured" is checked,
//    not assumed.
//  - DropOldest under forced ring pressure sheds whole epochs. Every
//    surviving row aggregates a subset of the reference's tuples, and fwd
//    contributions are non-negative, so each row is bounded above by the
//    reference row — and every shed shows up in telemetry.
//  - Subsample keeps tuple i with probability p_i ∝ its forward-decayed
//    weight and scales survivors by 1/p_i (Horvitz–Thompson), so each row
//    is an unbiased estimate of the reference. With ~1.5 k tuples per row
//    the fixed-seed estimator error sits well inside the asserted ±25% per
//    heavy row and ±5% in aggregate.
// ---------------------------------------------------------------------------

mod shedding {
    use forward_decay::core::decay::{AnyDecay, Monomial};
    use forward_decay::engine::prelude::*;
    use forward_decay::gen::TraceConfig;
    use std::collections::HashMap;
    use std::time::Duration;

    const FINAL_WM: Micros = 30 * MICROS_PER_SEC;

    /// The shared stream: 20 s at 5 k pps with 2 s of reordering jitter,
    /// punctuation interleaved every 1 000 events (lagging far enough that
    /// the jitter never turns into late drops).
    fn events() -> Vec<StreamEvent> {
        let packets = TraceConfig {
            seed: 47,
            duration_secs: 20.0,
            rate_pps: 5_000.0,
            n_hosts: 200,
            ooo_jitter_secs: 2.0,
            ..Default::default()
        }
        .generate();
        let mut events = Vec::with_capacity(packets.len() + packets.len() / 1000);
        let mut max_ts: Micros = 0;
        for (i, p) in packets.iter().enumerate() {
            max_ts = max_ts.max(p.ts);
            events.push(StreamEvent::Data(*p));
            if i % 1000 == 999 {
                events.push(StreamEvent::Punctuation(
                    max_ts.saturating_sub(10 * MICROS_PER_SEC),
                ));
            }
        }
        events
    }

    /// Forward-decayed sum of packet lengths — linear, so Horvitz–Thompson
    /// scaling applies, and non-negative, so shed rows are sub-sums.
    fn build() -> Query {
        Query::builder("shedding")
            .group_by(|p| p.dst_host() % 16)
            .bucket_secs(5)
            .slack_secs(6.0)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .build()
    }

    fn reference() -> Vec<Row> {
        let mut single = Engine::new(build());
        replay(&mut single, &events(), FINAL_WM).expect("single-threaded replay")
    }

    fn by_key(rows: &[Row]) -> HashMap<(Micros, u64), f64> {
        rows.iter()
            .map(|r| {
                (
                    (r.bucket_start, r.key),
                    r.value.as_float().expect("float row"),
                )
            })
            .collect()
    }

    #[test]
    fn block_and_drop_oldest_admit_everything_when_healthy() {
        let want = reference();
        assert!(!want.is_empty());
        for policy in [ShedPolicy::Block, ShedPolicy::DropOldest] {
            let mut sharded = ShardedEngine::try_new(build(), 3)
                .expect("spawn shards")
                .try_overload(OverloadConfig {
                    policy,
                    ..OverloadConfig::default()
                })
                .expect("fwd sum accepts every policy");
            let rows = replay(&mut sharded, &events(), FINAL_WM).expect("sharded replay");
            let snap = sharded.telemetry().snapshot();
            assert_eq!(snap.shed_tuples, 0, "{policy:?}: healthy run must not shed");
            assert_eq!(
                snap.shed_batches, 0,
                "{policy:?}: healthy run must not shed"
            );
            assert_eq!(rows.len(), want.len(), "{policy:?}: row counts diverge");
            for (x, y) in want.iter().zip(&rows) {
                assert_eq!((x.bucket_start, x.key), (y.bucket_start, y.key));
                let (xv, yv) = (x.value.as_float().unwrap(), y.value.as_float().unwrap());
                assert!(
                    (xv - yv).abs() <= 1e-9 * xv.abs().max(1.0),
                    "{policy:?}: bucket {} key {}: {xv} vs {yv}",
                    x.bucket_start,
                    x.key
                );
            }
        }
    }

    #[test]
    fn drop_oldest_rows_are_subsums_of_reference_under_pressure() {
        // One shard, a deliberately slow worker and a 2 ms send deadline:
        // the ring jams and DropOldest must displace whole epochs. The
        // admitted tuples are a subset of the stream, so with non-negative
        // contributions every surviving row is bounded by the reference.
        let stream: Vec<Packet> = TraceConfig {
            seed: 48,
            duration_secs: 4.0,
            rate_pps: 500.0,
            n_hosts: 40,
            ..Default::default()
        }
        .generate();
        let want = by_key(&Engine::new(build()).run(stream.clone()));
        let mut e = ShardedEngine::try_new(build(), 1)
            .expect("spawn shard")
            .batch_size(16)
            .try_overload(OverloadConfig {
                policy: ShedPolicy::DropOldest,
                send_deadline: Duration::from_millis(2),
                ..OverloadConfig::default()
            })
            .expect("overload config")
            .inject_fault(FaultPlan::parse("slow:0:10").expect("plan"));
        let rows = e.run(stream);
        let snap = e.telemetry().snapshot();
        assert!(snap.shed_batches > 0, "pressure must force displacement");
        assert!(snap.shed_tuples >= snap.shed_batches);
        assert!(!rows.is_empty(), "shedding must not erase the whole answer");
        let total_want: f64 = want.values().sum();
        let mut total_got = 0.0;
        for r in &rows {
            let got = r.value.as_float().expect("float row");
            total_got += got;
            let w = want
                .get(&(r.bucket_start, r.key))
                .unwrap_or_else(|| panic!("row ({}, {}) not in reference", r.bucket_start, r.key));
            assert!(
                got <= w * (1.0 + 1e-9) + 1e-9,
                "bucket {} key {}: admitted subset sums to {got} > reference {w}",
                r.bucket_start,
                r.key
            );
        }
        assert!(
            total_got < total_want,
            "sheds were counted ({}) but no mass is missing",
            snap.shed_tuples
        );
    }

    #[test]
    fn subsample_is_unbiased_within_ht_variance_budget() {
        let want = reference();
        // lag_budget 0 marks every shard permanently lagging, so the
        // thinner engages on every batch — the estimator's worst case.
        let mut sharded = ShardedEngine::try_new(build(), 3)
            .expect("spawn shards")
            .try_overload(OverloadConfig {
                policy: ShedPolicy::Subsample { target_rate: 0.5 },
                lag_budget: 0,
                decay: AnyDecay::Monomial(Monomial::quadratic()),
                seed: 0xD1FF,
                ..OverloadConfig::default()
            })
            .expect("fwd sum is linear, so HT scaling applies");
        let rows = replay(&mut sharded, &events(), FINAL_WM).expect("sharded replay");
        let snap = sharded.telemetry().snapshot();
        assert!(snap.shed_tuples > 0, "rate 0.5 over 100 k tuples must thin");

        // Survivors are a subset of the stream: no invented (bucket, key).
        let want_map = by_key(&want);
        let got_map = by_key(&rows);
        for k in got_map.keys() {
            assert!(want_map.contains_key(k), "row {k:?} not in reference");
        }
        // Aggregate mass: the HT estimate of the total is unbiased and
        // averages over every row's noise.
        let total_want: f64 = want_map.values().sum();
        let total_got: f64 = got_map.values().sum();
        assert!(
            (total_got - total_want).abs() <= 0.05 * total_want,
            "HT total {total_got} vs reference {total_want}"
        );
        // Per-row: every row carrying ≥1% of the mass must sit within the
        // variance budget. (Tiny rows can legitimately vanish — each tuple
        // survives with p ≥ P_MIN — so they are checked only for subset
        // membership above.)
        let floor = 0.01 * total_want;
        for (k, w) in &want_map {
            if *w < floor {
                continue;
            }
            let got = got_map
                .get(k)
                .unwrap_or_else(|| panic!("heavy row {k:?} vanished under subsampling"));
            assert!(
                (got - w).abs() <= 0.25 * w,
                "row {k:?}: HT estimate {got} vs reference {w} (±25% budget)"
            );
        }
    }
}

#[test]
fn differential_engine_vs_sharded_engine_replay() {
    use forward_decay::engine::prelude::*;
    use forward_decay::gen::TraceConfig;

    let packets = TraceConfig {
        seed: 31,
        duration_secs: 20.0,
        rate_pps: 5_000.0,
        n_hosts: 200,
        ooo_jitter_secs: 2.0,
        ..Default::default()
    }
    .generate();
    // Interleave punctuation (lagging well behind the max timestamp so the
    // jitter never turns into late drops) between data events.
    let mut events = Vec::with_capacity(packets.len() + packets.len() / 1000);
    let mut max_ts: Micros = 0;
    for (i, p) in packets.iter().enumerate() {
        max_ts = max_ts.max(p.ts);
        events.push(StreamEvent::Data(*p));
        if i % 1000 == 999 {
            events.push(StreamEvent::Punctuation(
                max_ts.saturating_sub(10 * MICROS_PER_SEC),
            ));
        }
    }
    let build = || {
        Query::builder("differential")
            .group_by(|p| p.dst_host() % 16)
            .bucket_secs(5)
            .slack_secs(6.0)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .build()
    };
    let final_wm = 30 * MICROS_PER_SEC;
    let mut single = Engine::new(build());
    let a = replay(&mut single, &events, final_wm).expect("single-threaded replay");
    let mut sharded = ShardedEngine::try_new(build(), 3).expect("spawn shards");
    let b = replay(&mut sharded, &events, final_wm).expect("sharded replay");
    assert_eq!(single.stats().late_drops, 0, "slack must absorb the jitter");
    assert_eq!(a.len(), b.len(), "row counts diverge");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.bucket_start, x.key), (y.bucket_start, y.key));
        let (xv, yv) = (x.value.as_float().unwrap(), y.value.as_float().unwrap());
        assert!(
            (xv - yv).abs() <= 1e-9 * xv.abs().max(1.0),
            "bucket {} key {}: {xv} vs {yv}",
            x.bucket_start,
            x.key
        );
    }
}
