//! Randomized property tests for fd-core: the paper's definitions, theorems
//! and error bounds checked on deterministic pseudo-random inputs.
//!
//! Each test runs a fixed number of cases from a seeded [`SmallRng`], so
//! failures are reproducible without an external property-testing framework.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fd_core::aggregates::{DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance};
use fd_core::backward::{DeterministicWave, ExponentialHistogram, PrefixBackwardHH};
use fd_core::cm::CmSketch;
use fd_core::decay::{
    check_backward_axioms, check_forward_axioms, BackExponential, BackPolynomial,
    BackSlidingWindow, BackwardDecay, Exponential, ForwardDecay, LandmarkWindow, Monomial, NoDecay,
    PolySum, SubPolynomial, SuperExponential,
};
use fd_core::distinct::{DominanceSketch, ExactDominance, Kmv};
use fd_core::heavy_hitters::{UnarySpaceSaving, WeightedSpaceSaving};
use fd_core::numerics::LogSum;
use fd_core::quantiles::{QDigest, WeightedGK};
use fd_core::sampling::{JumpWeightedReservoir, PrioritySampler, WeightedReservoir};
use fd_core::{Mergeable, Timestamp};

const CASES: u64 = 32;

/// Run [`CASES`] independent cases of `body`, each with its own seeded RNG.
fn cases(test_seed: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(test_seed.wrapping_mul(0x9e37_79b9) ^ case);
        body(&mut rng);
    }
}

/// A random stream of (timestamp, value) pairs with timestamps in
/// `(landmark, landmark + span]` and values in `[-100, 100)`.
fn random_stream(rng: &mut SmallRng, landmark: f64, span: f64, max_len: usize) -> Vec<(f64, f64)> {
    let len = rng.gen_range(1..max_len.max(2));
    (0..len)
        .map(|_| {
            (
                landmark + rng.gen_range(0.001..1.0) * span,
                rng.gen_range(-100.0..100.0),
            )
        })
        .collect()
}

fn random_vec_f64(
    rng: &mut SmallRng,
    lo: f64,
    hi: f64,
    min_len: usize,
    max_len: usize,
) -> Vec<f64> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

// ----- Definition 1 axioms -------------------------------------------

#[test]
fn forward_axioms_random_monomial() {
    cases(1, |rng| {
        let beta = rng.gen_range(0.1..6.0);
        check_forward_axioms(&Monomial::new(beta), 0.0, 200.0, 40).unwrap();
    });
}

#[test]
fn forward_axioms_random_exponential() {
    cases(2, |rng| {
        let alpha = rng.gen_range(0.001..2.0);
        check_forward_axioms(&Exponential::new(alpha), 5.0, 105.0, 40).unwrap();
    });
}

#[test]
fn forward_axioms_random_polysum() {
    cases(3, |rng| {
        let c0 = rng.gen_range(0.0..5.0);
        let c1 = rng.gen_range(0.0..5.0);
        let c2 = rng.gen_range(0.01..5.0);
        check_forward_axioms(&PolySum::new(vec![c0, c1, c2]), 0.0, 100.0, 40).unwrap();
    });
}

#[test]
fn backward_axioms_random() {
    cases(4, |rng| {
        let lambda = rng.gen_range(0.001..1.0);
        let alpha = rng.gen_range(0.1..4.0);
        let w = rng.gen_range(1.0..500.0);
        check_backward_axioms(&BackExponential::new(lambda), 300.0, 40).unwrap();
        check_backward_axioms(&BackPolynomial::new(alpha), 300.0, 40).unwrap();
        check_backward_axioms(&BackSlidingWindow::new(w), 600.0, 40).unwrap();
        check_backward_axioms(&SubPolynomial, 300.0, 40).unwrap();
        check_backward_axioms(&SuperExponential::new(lambda), 50.0, 40).unwrap();
    });
}

// ----- Section III-A: forward exp ≡ backward exp ----------------------

#[test]
fn exponential_models_coincide() {
    cases(5, |rng| {
        let alpha = rng.gen_range(0.001..1.0);
        let landmark = rng.gen_range(0.0..100.0);
        let t_i = landmark + rng.gen_range(0.0..100.0);
        let t = t_i + rng.gen_range(0.0..200.0);
        let fwd = Exponential::new(alpha).weight(landmark, t_i, t);
        let bwd = BackExponential::new(alpha).weight(t_i, t);
        assert!((fwd - bwd).abs() < 1e-9);
    });
}

// ----- Lemma 1: relative decay ----------------------------------------

#[test]
fn relative_decay_for_monomials() {
    cases(6, |rng| {
        let beta = rng.gen_range(0.1..5.0);
        let gamma = rng.gen_range(0.01..1.0);
        let t1 = rng.gen_range(1.0..1e4);
        let scale = rng.gen_range(1.1..1e3);
        let g = Monomial::new(beta);
        let landmark = 0.0;
        let t2 = t1 * scale;
        let w1 = g.weight(landmark, gamma * t1, t1);
        let w2 = g.weight(landmark, gamma * t2, t2);
        // Timestamps are quantized to integer microseconds, which perturbs the
        // effective gamma = t_i / t by up to ~1e-6/(gamma*t1); the exact law
        // holds on the quantized times, and to ~1e-3 on the analytic gamma.
        let quant = |x: f64| Timestamp::from(x).as_secs_f64();
        let g1 = quant(gamma * t1) / quant(t1);
        let g2 = quant(gamma * t2) / quant(t2);
        assert!(
            (w1 - g1.powf(beta)).abs() < 1e-9,
            "w({t1}) = {w1} != {g1}^{beta}"
        );
        assert!(
            (w2 - g2.powf(beta)).abs() < 1e-9,
            "w({t2}) = {w2} != {g2}^{beta}"
        );
        assert!((w1 - w2).abs() < 1e-3, "w({t1}) = {w1}, w({t2}) = {w2}");
        assert!((w1 - gamma.powf(beta)).abs() < 1e-3);
    });
}

// ----- Theorem 1: aggregates match brute force ------------------------

#[test]
fn decayed_sum_count_match_brute_force() {
    cases(7, |rng| {
        let items = random_stream(rng, 10.0, 90.0, 200);
        let beta = rng.gen_range(0.2..4.0);
        let g = Monomial::new(beta);
        let landmark = 10.0;
        let t_q = 110.0;
        let mut sum = DecayedSum::new(g, landmark);
        let mut count = DecayedCount::new(g, landmark);
        for &(t, v) in &items {
            sum.update(t, v);
            count.update(t);
        }
        let bs: f64 = items
            .iter()
            .map(|&(t, v)| g.weight(landmark, t, t_q) * v)
            .sum();
        let bc: f64 = items.iter().map(|&(t, _)| g.weight(landmark, t, t_q)).sum();
        assert!((sum.query(t_q) - bs).abs() <= 1e-9 * bs.abs().max(1.0));
        assert!((count.query(t_q) - bc).abs() <= 1e-9 * bc.max(1.0));
    });
}

#[test]
fn aggregates_are_order_invariant() {
    cases(8, |rng| {
        let items = random_stream(rng, 0.0, 50.0, 100);
        let seed = rng.gen_range(0u64..1000);
        let g = Exponential::new(0.1);
        let mut forward_order = DecayedVariance::new(g, 0.0);
        let mut shuffled_order = DecayedVariance::new(g, 0.0);
        for &(t, v) in &items {
            forward_order.update(t, v);
        }
        // Deterministic shuffle driven by `seed`.
        let mut shuffled = items.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        for &(t, v) in &shuffled {
            shuffled_order.update(t, v);
        }
        let (a, b) = (forward_order.query(60.0), shuffled_order.query(60.0));
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0)),
            _ => assert_eq!(a.is_some(), b.is_some()),
        }
    });
}

#[test]
fn merge_equals_concat_random_split() {
    cases(9, |rng| {
        let items = random_stream(rng, 0.0, 80.0, 150);
        let split_mask = rng.gen::<u64>();
        let g = Monomial::quadratic();
        let mut whole = DecayedSum::new(g, 0.0);
        let mut a = DecayedSum::new(g, 0.0);
        let mut b = DecayedSum::new(g, 0.0);
        for (i, &(t, v)) in items.iter().enumerate() {
            whole.update(t, v);
            if (split_mask >> (i % 64)) & 1 == 0 {
                a.update(t, v);
            } else {
                b.update(t, v);
            }
        }
        a.merge_from(&b);
        let (x, y) = (whole.query(100.0), a.query(100.0));
        assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
    });
}

#[test]
fn extremum_matches_brute_force() {
    cases(10, |rng| {
        let items = random_stream(rng, 0.0, 50.0, 120);
        let g = Monomial::new(1.0);
        let mut mx = DecayedExtremum::max(g, 0.0);
        for &(t, v) in &items {
            mx.update(t, v);
        }
        let t_q = 60.0;
        let brute = items
            .iter()
            .map(|&(t, v)| g.weight(0.0, t, t_q) * v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((mx.query(t_q).unwrap().0 - brute).abs() < 1e-9);
    });
}

// ----- Numerics --------------------------------------------------------

#[test]
fn logsum_matches_naive() {
    cases(11, |rng| {
        let xs = random_vec_f64(rng, 1e-6, 1e6, 1, 50);
        let mut ls = LogSum::new();
        for &x in &xs {
            ls.add_ln(x.ln());
        }
        let naive: f64 = xs.iter().sum();
        assert!((ls.value() - naive).abs() <= 1e-9 * naive);
    });
}

#[test]
fn exponential_count_is_landmark_invariant() {
    cases(12, |rng| {
        // Section III-A / VI-A: for exponential decay the landmark choice
        // must not affect the decayed result.
        let alpha = rng.gen_range(0.01..0.5);
        let items = random_vec_f64(rng, 0.0, 100.0, 1, 100);
        let g = Exponential::new(alpha);
        let t_q = 150.0;
        let mut c0 = DecayedCount::new(g, 0.0);
        let mut c50 = DecayedCount::new(g, -50.0);
        for &t in &items {
            c0.update(t);
            c50.update(t);
        }
        let (a, b) = (c0.query(t_q), c50.query(t_q));
        assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    });
}

// ----- Theorem 2: SpaceSaving bounds -----------------------------------

#[test]
fn space_saving_never_underestimates() {
    cases(13, |rng| {
        let n = rng.gen_range(50..400);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..40), rng.gen_range(0.5..5.0)))
            .collect();
        let cap = rng.gen_range(4usize..24);
        let mut ss = WeightedSpaceSaving::new(cap);
        let mut exact = std::collections::HashMap::<u64, f64>::new();
        let mut total = 0.0;
        for &(item, w) in &items {
            ss.update(item, w);
            *exact.entry(item).or_default() += w;
            total += w;
        }
        for (&item, &true_w) in &exact {
            if let Some(c) = ss.estimate(item) {
                assert!(c.count + 1e-9 >= true_w);
                assert!(c.count - true_w <= total / cap as f64 + 1e-9);
                assert!(c.count - c.error <= true_w + 1e-9);
            } else {
                assert!(true_w <= total / cap as f64 + 1e-9);
            }
        }
    });
}

#[test]
fn unary_space_saving_bounds() {
    cases(14, |rng| {
        let len = rng.gen_range(100usize..600);
        let items: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..60)).collect();
        let cap = rng.gen_range(4usize..32);
        let mut ss = UnarySpaceSaving::new(cap);
        let mut exact = std::collections::HashMap::<u64, u64>::new();
        for &item in &items {
            ss.update(item);
            *exact.entry(item).or_default() += 1;
        }
        let n = items.len() as f64;
        for (&item, &c) in &exact {
            if let Some((est, err)) = ss.estimate(item) {
                assert!(est >= c);
                assert!((est - c) as f64 <= n / cap as f64 + 1.0);
                assert!(est.saturating_sub(err) <= c);
            } else {
                assert!((c as f64) <= n / cap as f64 + 1.0);
            }
        }
    });
}

// ----- Theorem 3: quantile bounds --------------------------------------

#[test]
fn qdigest_rank_error() {
    cases(15, |rng| {
        let n = rng.gen_range(100..800);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..1024), rng.gen_range(0.5..4.0)))
            .collect();
        let eps = 0.1;
        let mut q = QDigest::with_epsilon(10, eps);
        for &(v, w) in &items {
            q.update(v, w);
        }
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [0u64, 128, 511, 777, 1023] {
            let exact: f64 = items
                .iter()
                .filter(|&&(v, _)| v <= probe)
                .map(|&(_, w)| w)
                .sum();
            assert!((q.rank(probe) - exact).abs() <= eps * total + 1e-9);
        }
    });
}

#[test]
fn gk_rank_error() {
    cases(16, |rng| {
        let n = rng.gen_range(100..800);
        let items: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(-1e3..1e3), rng.gen_range(0.5..4.0)))
            .collect();
        let eps = 0.05;
        let mut gk = WeightedGK::new(eps);
        for &(v, w) in &items {
            gk.update(v, w);
        }
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [-900.0, -100.0, 0.0, 333.3, 950.0] {
            let exact: f64 = items
                .iter()
                .filter(|&&(v, _)| v <= probe)
                .map(|&(_, w)| w)
                .sum();
            assert!((gk.rank(probe) - exact).abs() <= 2.0 * eps * total + 1e-9);
        }
    });
}

#[test]
fn qdigest_merge_preserves_bounds() {
    cases(17, |rng| {
        let n = rng.gen_range(100..500);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..256), rng.gen_range(1.0..2.0)))
            .collect();
        let mask = rng.gen::<u64>();
        let eps = 0.1;
        let mut a = QDigest::with_epsilon(8, eps);
        let mut b = QDigest::with_epsilon(8, eps);
        for (i, &(v, w)) in items.iter().enumerate() {
            if (mask >> (i % 64)) & 1 == 0 {
                a.update(v, w)
            } else {
                b.update(v, w)
            }
        }
        a.merge_from(&b);
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [0u64, 64, 128, 255] {
            let exact: f64 = items
                .iter()
                .filter(|&&(v, _)| v <= probe)
                .map(|&(_, w)| w)
                .sum();
            assert!((a.rank(probe) - exact).abs() <= 2.0 * eps * total + 1e-9);
        }
    });
}

// ----- Theorem 4: dominance norm ---------------------------------------

#[test]
fn exact_dominance_is_max_per_value() {
    cases(18, |rng| {
        let n = rng.gen_range(1..200);
        let items: Vec<(f64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0.1..50.0), rng.gen_range(0u64..30)))
            .collect();
        let g = Monomial::new(1.0);
        let mut d = ExactDominance::new(g, 0.0);
        let mut maxw = std::collections::HashMap::<u64, f64>::new();
        let t_q = 60.0;
        for &(t, v) in &items {
            d.update(t, v);
            let w = g.weight(0.0, t, t_q);
            maxw.entry(v).and_modify(|m| *m = m.max(w)).or_insert(w);
        }
        let brute: f64 = maxw.values().sum();
        assert!((d.query(t_q) - brute).abs() <= 1e-9 * brute.max(1.0));
    });
}

#[test]
fn kmv_merge_equals_union() {
    cases(19, |rng| {
        let n = rng.gen_range(10..500);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>()).collect();
        let mask = rng.gen::<u64>();
        let h = fd_core::hash::SeededHash::new(1);
        let mut a = Kmv::new(32);
        let mut b = Kmv::new(32);
        let mut whole = Kmv::new(32);
        for (i, &k) in keys.iter().enumerate() {
            whole.offer(h.hash(k));
            if (mask >> (i % 64)) & 1 == 0 {
                a.offer(h.hash(k));
            } else {
                b.offer(h.hash(k));
            }
        }
        a.merge_from(&b);
        assert_eq!(a.threshold(), whole.threshold());
        assert!((a.estimate() - whole.estimate()).abs() < 1e-9);
    });
}

#[test]
fn dominance_sketch_order_invariance() {
    cases(20, |rng| {
        // The sketch must give identical answers for any arrival order
        // (Section VI-B: out-of-order arrivals are free).
        let n = rng.gen_range(10..200);
        let items: Vec<(f64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0.1..20.0), rng.gen_range(0u64..100)))
            .collect();
        let g = Monomial::new(2.0);
        let mut fwd = DominanceSketch::new(g, 0.0, 0.2, 7);
        let mut rev = DominanceSketch::new(g, 0.0, 0.2, 7);
        for &(t, v) in &items {
            fwd.update(t, v);
        }
        for &(t, v) in items.iter().rev() {
            rev.update(t, v);
        }
        let (a, b) = (fwd.query(25.0), rev.query(25.0));
        assert!((a - b).abs() <= 0.05 * a.abs().max(1.0), "{a} vs {b}");
    });
}

// ----- Theorem 6 / samplers --------------------------------------------

#[test]
fn weighted_reservoir_invariants() {
    cases(21, |rng| {
        let items = random_vec_f64(rng, 0.1, 100.0, 1, 300);
        let k = rng.gen_range(1usize..20);
        let seed = rng.gen::<u64>();
        let g = Monomial::new(1.0);
        let mut wr = WeightedReservoir::new(g, 0.0, k, seed);
        for (i, &t) in items.iter().enumerate() {
            wr.update(t, &(i as u64));
        }
        let sample = wr.sample();
        assert_eq!(sample.len(), k.min(items.len()));
        let mut ids: Vec<u64> = sample.iter().map(|e| e.item).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate items in sample");
    });
}

#[test]
fn priority_sampler_estimate_exact_underfull() {
    cases(22, |rng| {
        let items = random_vec_f64(rng, 0.1, 50.0, 1, 10);
        let seed = rng.gen::<u64>();
        let g = Monomial::new(1.0);
        let mut ps = PrioritySampler::new(g, 0.0, 16, seed);
        for (i, &t) in items.iter().enumerate() {
            ps.update(t, &(i as u64));
        }
        let t_q = 60.0;
        let truth: f64 = items.iter().map(|&t| g.weight(0.0, t, t_q)).sum();
        assert!((ps.estimate_decayed_count(t_q) - truth).abs() <= 1e-9 * truth.max(1.0));
    });
}

// ----- Exponential histograms ------------------------------------------

#[test]
fn eh_window_error() {
    cases(23, |rng| {
        let n = rng.gen_range(100usize..3000);
        let eps_inv = rng.gen_range(5u32..20);
        let wfrac = rng.gen_range(0.05..1.0);
        let eps = 1.0 / eps_inv as f64;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let ts: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for &t in &ts {
            eh.insert(t);
        }
        let t_q = ts[n - 1];
        let w = wfrac * n as f64;
        let exact = ts.iter().filter(|&&x| x > t_q - w).count() as f64;
        let est = eh.window_query(w, t_q);
        assert!(
            (est - exact).abs() <= eps * exact.max(1.0) + 1.0,
            "n={n} eps={eps} w={w}: est {est} exact {exact}"
        );
    });
}

#[test]
fn eh_total_is_exact() {
    cases(24, |rng| {
        let len = rng.gen_range(1usize..500);
        let values: Vec<u64> = (0..len).map(|_| rng.gen_range(1u64..1000)).collect();
        let mut eh = ExponentialHistogram::with_epsilon(0.1);
        for (i, &v) in values.iter().enumerate() {
            eh.insert_value(i as f64, v);
        }
        assert_eq!(eh.total(), values.iter().sum::<u64>());
        // Whole-stream window query must also be near-exact (no straddler).
        let est = eh.window_query(values.len() as f64 + 10.0, values.len() as f64);
        assert!((est - eh.total() as f64).abs() <= 1e-9);
    });
}

// ----- Landmark window / no decay --------------------------------------

#[test]
fn landmark_window_counts_post_landmark_items() {
    cases(25, |rng| {
        let items = random_vec_f64(rng, 0.0, 100.0, 1, 100);
        let landmark = rng.gen_range(0.0..100.0);
        let mut c = DecayedCount::new(LandmarkWindow, landmark);
        let mut expected = 0u32;
        for &t in &items {
            if t >= landmark {
                c.update(t);
                if t > landmark {
                    expected += 1;
                }
            }
        }
        assert!((c.query(200.0) - expected as f64).abs() < 1e-9);
    });
}

// ----- Count-Min -------------------------------------------------------

#[test]
fn cm_sketch_is_an_upper_bound() {
    cases(26, |rng| {
        let n = rng.gen_range(20..400);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..50), rng.gen_range(0.1..5.0)))
            .collect();
        let seed = rng.gen::<u64>();
        let mut cm = CmSketch::new(128, 3, seed);
        let mut exact = std::collections::HashMap::<u64, f64>::new();
        for &(item, w) in &items {
            cm.update(item, w);
            *exact.entry(item).or_default() += w;
        }
        for (&item, &true_w) in &exact {
            assert!(cm.query(item) + 1e-9 >= true_w);
        }
        let total: f64 = exact.values().sum();
        assert!((cm.total_weight() - total).abs() <= 1e-9 * total);
    });
}

#[test]
fn cm_merge_equals_concat_prop() {
    cases(27, |rng| {
        let n = rng.gen_range(20..300);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..100), rng.gen_range(0.5..2.0)))
            .collect();
        let mask = rng.gen::<u64>();
        let mut a = CmSketch::new(64, 3, 9);
        let mut b = CmSketch::new(64, 3, 9);
        let mut whole = CmSketch::new(64, 3, 9);
        for (i, &(item, w)) in items.iter().enumerate() {
            whole.update(item, w);
            if (mask >> (i % 64)) & 1 == 0 {
                a.update(item, w)
            } else {
                b.update(item, w)
            }
        }
        a.merge_from(&b);
        for item in 0..100u64 {
            assert!((a.query(item) - whole.query(item)).abs() < 1e-9);
        }
    });
}

// ----- Deterministic waves ---------------------------------------------

#[test]
fn wave_window_error_prop() {
    cases(28, |rng| {
        let n = rng.gen_range(100u64..5000);
        let eps_inv = rng.gen_range(5u32..15);
        let wfrac = rng.gen_range(0.05..0.95);
        let eps = 1.0 / eps_inv as f64;
        let mut wave = DeterministicWave::with_epsilon(eps);
        for i in 0..n {
            wave.insert(i as f64);
        }
        let t_q = (n - 1) as f64;
        let w = wfrac * n as f64;
        let exact = (0..n).filter(|&i| (i as f64) > t_q - w).count() as f64;
        let est = wave.window_query(w, t_q);
        assert!(
            (est - exact).abs() <= eps * exact.max(1.0) + 1.0,
            "n={n} eps={eps} w={w}: est {est}, exact {exact}"
        );
    });
}

// ----- Prefix-hierarchy backward HH -------------------------------------

#[test]
fn prefix_hh_total_prop() {
    cases(29, |rng| {
        let n = rng.gen_range(100usize..1000);
        let alpha = rng.gen_range(0.01..0.5);
        let mut hh = PrefixBackwardHH::new(8, 0.05);
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        for (i, &t) in ts.iter().enumerate() {
            hh.update(t, (i % 256) as u64);
        }
        let f = BackExponential::new(alpha);
        let t_q = ts[n - 1] + 1.0;
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let got = hh.decayed_total(&f, t_q);
        assert!(
            (got - exact).abs() / exact.max(1e-9) < 0.2,
            "{got} vs {exact}"
        );
    });
}

// ----- Jump-accelerated weighted reservoir ------------------------------

#[test]
fn jump_reservoir_invariants() {
    cases(30, |rng| {
        let items = random_vec_f64(rng, 0.1, 100.0, 1, 300);
        let k = rng.gen_range(1usize..20);
        let seed = rng.gen::<u64>();
        let g = Monomial::new(1.0);
        let mut jr = JumpWeightedReservoir::new(0.0, k, seed);
        for (i, &t) in items.iter().enumerate() {
            jr.update(&g, t, &(i as u64));
        }
        let sample = jr.sample();
        assert_eq!(sample.len(), k.min(items.len()));
        let mut ids: Vec<u64> = sample.iter().map(|(&item, _)| item).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate items in jump sample");
        assert!(jr.random_draws() <= jr.items_seen() + k as u64 + 2);
    });
}

// ----- AnyDecay ----------------------------------------------------------

#[test]
fn any_decay_poly_matches_monomial() {
    cases(31, |rng| {
        use fd_core::decay::AnyDecay;
        let beta = rng.gen_range(0.1..5.0);
        let t_i = rng.gen_range(1.0..50.0);
        let dt = rng.gen_range(0.0..50.0);
        let spec: AnyDecay = format!("poly:{beta}").parse().unwrap();
        let stat = Monomial::new(beta);
        let t = t_i + dt;
        assert!((spec.weight(0.0, t_i, t) - stat.weight(0.0, t_i, t)).abs() < 1e-12);
    });
}

#[test]
fn no_decay_count_is_plain_count() {
    cases(32, |rng| {
        let items = random_vec_f64(rng, 0.0, 100.0, 1, 100);
        let mut c = DecayedCount::new(NoDecay, 0.0);
        for &t in &items {
            c.update(t);
        }
        assert!((c.query(1000.0) - items.len() as f64).abs() < 1e-9);
    });
}

// ----- Checkpoint codec ---------------------------------------------------

#[test]
fn checkpoint_roundtrips_decayed_sum() {
    cases(33, |rng| {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let n = rng.gen_range(0..200);
        let items: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(-50.0..50.0)))
            .collect();
        let alpha = rng.gen_range(0.01..2.0);
        let mut s = DecayedSum::new(Exponential::new(alpha), 0.0);
        for &(t, v) in &items {
            s.update(t, v);
        }
        let bytes = to_bytes(&s).unwrap();
        let restored: DecayedSum<Exponential> = from_bytes(&bytes).unwrap();
        assert_eq!(s.query(150.0).to_bits(), restored.query(150.0).to_bits());
    });
}

#[test]
fn checkpoint_roundtrips_space_saving() {
    cases(34, |rng| {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let n = rng.gen_range(1..300);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..200), rng.gen_range(0.1..5.0)))
            .collect();
        let cap = rng.gen_range(2usize..32);
        let mut ss = WeightedSpaceSaving::new(cap);
        for &(item, w) in &items {
            ss.update(item, w);
        }
        let bytes = to_bytes(&ss).unwrap();
        let restored: WeightedSpaceSaving = from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), ss.len());
        assert!((restored.total_weight() - ss.total_weight()).abs() < 1e-12);
        for &(item, _) in &items {
            let (a, b) = (ss.estimate(item), restored.estimate(item));
            assert_eq!(a.map(|c| c.count.to_bits()), b.map(|c| c.count.to_bits()));
        }
    });
}

#[test]
fn checkpoint_roundtrips_qdigest() {
    cases(35, |rng| {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let n = rng.gen_range(1..300);
        let items: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..256), rng.gen_range(0.5..3.0)))
            .collect();
        let mut q = QDigest::with_epsilon(8, 0.1);
        for &(v, w) in &items {
            q.update(v, w);
        }
        let bytes = to_bytes(&q).unwrap();
        let restored: QDigest = from_bytes(&bytes).unwrap();
        for probe in [0u64, 63, 128, 255] {
            assert!((q.rank(probe) - restored.rank(probe)).abs() < 1e-9);
        }
    });
}

#[test]
fn checkpoint_rejects_random_corruption() {
    cases(36, |rng| {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        // Flipping a bit either changes the value or breaks decoding — it
        // must never panic.
        let corrupt_at = rng.gen_range(0usize..64);
        let bit = rng.gen_range(0u8..8);
        let mut ss = WeightedSpaceSaving::new(4);
        ss.update(1, 2.0);
        ss.update(2, 3.0);
        let mut bytes = to_bytes(&ss).unwrap();
        let idx = corrupt_at % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = from_bytes::<WeightedSpaceSaving>(&bytes); // Ok or Err, no panic
    });
}

#[test]
fn checkpoint_prefixes_error_never_panic() {
    // Every strict prefix of a valid checkpoint is what a torn write
    // leaves behind. Decoding one must be a clean `Err` — truncated input
    // or trailing-byte mismatch — and never a panic or a bogus `Ok`.
    cases(37, |rng| {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let mut s = DecayedSum::new(Exponential::new(rng.gen_range(0.01..1.0)), 0.0);
        for (t, v) in random_stream(rng, 0.0, 50.0, 64) {
            s.update(t, v);
        }
        let sum_bytes = to_bytes(&s).unwrap();
        let mut ss = WeightedSpaceSaving::new(rng.gen_range(2usize..16));
        for _ in 0..rng.gen_range(1..100) {
            ss.update(rng.gen_range(0u64..50), rng.gen_range(0.1..4.0));
        }
        let ss_bytes = to_bytes(&ss).unwrap();
        let cut = rng.gen_range(0..sum_bytes.len());
        assert!(
            from_bytes::<DecayedSum<Exponential>>(&sum_bytes[..cut]).is_err(),
            "prefix of len {cut}/{} decoded as DecayedSum",
            sum_bytes.len()
        );
        let cut = rng.gen_range(0..ss_bytes.len());
        assert!(
            from_bytes::<WeightedSpaceSaving>(&ss_bytes[..cut]).is_err(),
            "prefix of len {cut}/{} decoded as WeightedSpaceSaving",
            ss_bytes.len()
        );
        // Cross-type decodes of the prefixes may land anywhere in Ok/Err —
        // but never in a panic.
        let _ = from_bytes::<WeightedSpaceSaving>(&sum_bytes[..cut.min(sum_bytes.len())]);
        let _ = from_bytes::<DecayedSum<Exponential>>(&ss_bytes[..cut]);
    });
}

#[test]
fn reader_survives_arbitrary_byte_soup() {
    // The durability layer points `Reader` at whatever survived a crash.
    // Any read schedule over any bytes must either succeed or error —
    // and a failed read must consume nothing.
    cases(38, |rng| {
        use fd_core::checkpoint::Reader;
        let len = rng.gen_range(0usize..128);
        let soup: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let mut r = Reader::new(&soup);
        for _ in 0..64 {
            let before = r.remaining();
            let consumed = match rng.gen_range(0u8..4) {
                0 => r.u64().is_ok().then_some(8),
                1 => r.u32().is_ok().then_some(4),
                2 => r.u8().is_ok().then_some(1),
                _ => {
                    let n = rng.gen_range(0usize..64);
                    r.bytes(n).is_ok().then_some(n)
                }
            };
            match consumed {
                Some(n) => assert_eq!(r.remaining(), before - n),
                None => assert_eq!(r.remaining(), before, "failed read consumed bytes"),
            }
        }
    });
}

#[test]
fn frame_stream_prefixes_truncate_cleanly() {
    // A log is a concatenation of frames; cutting it at any byte must
    // yield some complete frames followed by exactly one Torn (or a clean
    // End when the cut lands on a frame boundary) — the invariant behind
    // the WAL's torn-tail truncation rule.
    cases(39, |rng| {
        use fd_core::checkpoint::{put_frame, read_frame, Frame};
        let n_frames = rng.gen_range(1usize..8);
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for _ in 0..n_frames {
            let len = rng.gen_range(0usize..64);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            put_frame(&mut log, &payload);
            boundaries.push(log.len());
        }
        let cut = rng.gen_range(0..=log.len());
        let mut cursor = &log[..cut];
        let mut complete = 0usize;
        let clean = loop {
            match read_frame(cursor) {
                Frame::Complete { consumed, .. } => {
                    complete += 1;
                    cursor = &cursor[consumed..];
                }
                Frame::End => break true,
                Frame::Torn => break false,
            }
        };
        let on_boundary = boundaries.contains(&cut);
        assert_eq!(
            clean, on_boundary,
            "cut at {cut} (boundaries {boundaries:?}): clean={clean}"
        );
        // The frames before the cut always survive intact.
        assert_eq!(
            complete,
            boundaries.iter().filter(|&&b| b > 0 && b <= cut).count(),
            "cut at {cut}"
        );
    });
}

// ----- Section VI-B: merges for the backward-decay baselines -----------

#[test]
fn sliding_window_hh_merge_equals_concat() {
    use fd_core::backward::SlidingWindowHH;
    cases(37, |rng| {
        let n = rng.gen_range(50usize..600);
        let mut whole = SlidingWindowHH::new(1.0, 6);
        let mut a = SlidingWindowHH::new(1.0, 6);
        let mut b = SlidingWindowHH::new(1.0, 6);
        let mut t_max = 0.0f64;
        for _ in 0..n {
            let t = rng.gen_range(0.0..40.0);
            let item = rng.gen_range(0u64..20);
            t_max = t_max.max(t);
            whole.update(t, item);
            if rng.gen_range(0.0..1.0) < 0.5 {
                a.update(t, item);
            } else {
                b.update(t, item);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.items_seen(), whole.items_seen());
        let t_q = t_max + 1.0;
        for item in 0..20u64 {
            for window in [5.0, 17.0, 41.0] {
                let (m, w) = (
                    a.window_count(item, window, t_q),
                    whole.window_count(item, window, t_q),
                );
                assert!(
                    (m - w).abs() < 1e-9,
                    "item {item} window {window}: {m} vs {w}"
                );
            }
        }
        let f = BackExponential::new(0.1);
        let (ma, ta) = a.decayed_counts(&f, t_q);
        let (mw, tw) = whole.decayed_counts(&f, t_q);
        assert!((ta - tw).abs() <= 1e-9 * tw.max(1.0));
        for (k, v) in &mw {
            assert!((ma.get(k).copied().unwrap_or(0.0) - v).abs() <= 1e-9 * v.max(1.0));
        }
    });
}

#[test]
fn prefix_hh_merge_preserves_totals() {
    cases(38, |rng| {
        let n = rng.gen_range(100usize..800);
        let mut whole = PrefixBackwardHH::new(8, 0.1);
        let mut a = PrefixBackwardHH::new(8, 0.1);
        let mut b = PrefixBackwardHH::new(8, 0.1);
        for i in 0..n {
            let t = i as f64 * 0.05;
            let item = rng.gen_range(0u64..256);
            whole.update(t, item);
            if i % 2 == 0 {
                a.update(t, item);
            } else {
                b.update(t, item);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.items_seen(), whole.items_seen());
        let f = BackSlidingWindow::new(n as f64); // everything in window
        let t_q = n as f64 * 0.05;
        let (ta, tw) = (a.decayed_total(&f, t_q), whole.decayed_total(&f, t_q));
        // EH merge keeps totals exact for all-in-window queries.
        assert!((ta - tw).abs() <= 1e-9 * tw.max(1.0), "{ta} vs {tw}");
    });
}

#[test]
fn cm_hh_merge_equals_concat() {
    use fd_core::cm::DecayedCmHeavyHitters;
    cases(39, |rng| {
        let g = Monomial::quadratic();
        let mk = || DecayedCmHeavyHitters::new(g, 0.0, 0.1, 0.01, 0.01, 77);
        let (mut whole, mut a, mut b) = (mk(), mk(), mk());
        let n = rng.gen_range(500usize..3000);
        for i in 0..n {
            let t = 1.0 + i as f64 * 0.01;
            let item = if i % 3 == 0 {
                42
            } else {
                rng.gen_range(0u64..500)
            };
            whole.update(t, item);
            if rng.gen_range(0.0..1.0) < 0.5 {
                a.update(t, item);
            } else {
                b.update(t, item);
            }
        }
        a.merge_from(&b);
        let t_q = 1.0 + n as f64 * 0.01 + 5.0;
        let (ca, cw) = (a.decayed_count(t_q), whole.decayed_count(t_q));
        assert!((ca - cw).abs() <= 1e-6 * cw.max(1.0), "{ca} vs {cw}");
        // The planted heavy item must survive the merged candidate set.
        let hits: Vec<u64> = a.heavy_hitters(t_q).iter().map(|h| h.item).collect();
        assert!(hits.contains(&42), "{hits:?}");
        assert!((a.estimate(42, t_q) - whole.estimate(42, t_q)).abs() <= 1e-6 * cw.max(1.0));
    });
}

// ----- Batched weight kernel and columnar update paths ------------------

/// Asserts the memoizing kernel agrees with direct scalar evaluation for
/// every age in `ages` — to 1e-12 relative where finite, bit-for-bit where
/// not (`±inf` overflow past [`RESCALE_THRESHOLD`], `-inf` from `ln_g(0)`).
fn assert_kernel_matches<G: ForwardDecay>(g: &G, ages: &[f64]) {
    use fd_core::kernel::WeightKernel;
    let mut k = WeightKernel::new(g.clone());
    for &n in ages {
        for (got, want, which) in [(k.g(n), g.g(n), "g"), (k.ln_g(n), g.ln_g(n), "ln_g")] {
            if want.is_finite() {
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "{which}({n}): kernel {got} vs scalar {want}"
                );
            } else {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{which}({n}): kernel {got} vs scalar {want}"
                );
            }
        }
    }
}

#[test]
fn weight_kernel_matches_scalar_all_families() {
    use fd_core::decay::AnyDecay;
    use fd_core::numerics::RESCALE_THRESHOLD;
    cases(41, |rng| {
        // Ages with heavy duplication (repeated ticks exercise the memo),
        // zero/negative ages (ln_g = -inf branches), and ages straddling the
        // overflow boundary where g saturates to +inf but ln_g stays finite.
        let ln_thresh = RESCALE_THRESHOLD.ln();
        let mut ages = Vec::new();
        for _ in 0..rng.gen_range(5..40) {
            let n = rng.gen_range(-10.0..1e4);
            let dups = rng.gen_range(1..6);
            ages.extend(std::iter::repeat_n(n, dups));
        }
        ages.extend([0.0, -1.0, 1e100, 1e300]);

        let beta = rng.gen_range(0.1..6.0);
        let alpha = rng.gen_range(0.01..2.0);
        // Ages just below/at/above the rescale boundary for this alpha.
        for f in [0.5, 0.999, 1.0, 1.001, 4.0] {
            ages.push(f * ln_thresh / alpha);
        }

        assert_kernel_matches(&NoDecay, &ages);
        assert_kernel_matches(&Monomial::new(beta), &ages);
        assert_kernel_matches(&Monomial::quadratic(), &ages);
        assert_kernel_matches(&Exponential::new(alpha), &ages);
        assert_kernel_matches(&LandmarkWindow, &ages);
        assert_kernel_matches(&PolySum::new(vec![1.0, 0.5, 0.25, 0.1, 0.05]), &ages);
        let any: AnyDecay = format!("exp:{alpha}").parse().unwrap();
        assert_kernel_matches(&any, &ages);
    });
}

#[test]
fn batched_count_sum_match_scalar() {
    cases(42, |rng| {
        let items = random_stream(rng, 0.0, 100.0, 200);
        let ts: Vec<Timestamp> = items.iter().map(|&(t, _)| t.into()).collect();
        let vs: Vec<f64> = items.iter().map(|&(_, v)| v).collect();
        let beta = rng.gen_range(0.2..4.0);
        let g = Monomial::new(beta);

        let mut sc = DecayedCount::new(g, 0.0);
        let mut bc = DecayedCount::new(g, 0.0);
        let mut ss = DecayedSum::new(g, 0.0);
        let mut bs = DecayedSum::new(g, 0.0);
        for &(t, v) in &items {
            sc.update(t);
            ss.update(t, v);
        }
        bc.update_batch(&ts);
        bs.update_batch(&ts, &vs);

        let t_q = 120.0;
        let (a, b) = (sc.query(t_q), bc.query(t_q));
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "count {a} vs {b}");
        let (a, b) = (ss.query(t_q), bs.query(t_q));
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "sum {a} vs {b}");
    });
}

#[test]
fn batched_count_matches_scalar_across_rescale_boundary() {
    use fd_core::summary::Summary;
    cases(43, |rng| {
        // Exponential decay with timestamps far enough out that ln g(n)
        // crosses ln(RESCALE_THRESHOLD): the scalar path renormalizes
        // stepwise, the batch path renormalizes once to the batch max.
        // Both must agree on the (scale-free) decayed answer.
        let alpha = rng.gen_range(0.5..2.0);
        let span = 2.5 * fd_core::numerics::RESCALE_THRESHOLD.ln() / alpha;
        let mut ts: Vec<Timestamp> = (0..rng.gen_range(10..120))
            .map(|_| Timestamp::from(rng.gen_range(0.001..1.0) * span))
            .collect();
        ts.sort_unstable();
        let g = Exponential::new(alpha);
        let mut scalar = DecayedCount::new(g, 0.0);
        let mut batched = DecayedCount::new(g, 0.0);
        for &t in &ts {
            scalar.update(t);
        }
        batched.update_batch(&ts);
        assert!(
            scalar.stats().renormalizations > 0,
            "test must actually cross the rescale boundary"
        );
        let t_q = Timestamp::from(span * 1.01);
        let (a, b) = (scalar.query(t_q), batched.query(t_q));
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "alpha={alpha}: scalar {a} vs batched {b}"
        );
    });
}

#[test]
fn batched_hh_quantiles_match_scalar_bitwise() {
    use fd_core::heavy_hitters::DecayedHeavyHitters;
    use fd_core::quantiles::DecayedQuantiles;
    cases(44, |rng| {
        let n = rng.gen_range(10..300);
        let ts: Vec<Timestamp> = {
            let mut v: Vec<Timestamp> = (0..n)
                .map(|_| Timestamp::from(rng.gen_range(0.001..80.0)))
                .collect();
            v.sort_unstable();
            v
        };
        let items: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..40)).collect();
        let beta = rng.gen_range(0.2..4.0);
        let g = Monomial::new(beta);

        // Monomial never renormalizes and the kernel memo returns exact
        // values, so the batched paths replay the identical update sequence:
        // SpaceSaving state must match bit-for-bit. The q-digest holds its
        // nodes in a HashMap whose iteration order differs per instance, so
        // its rank sums reassociate — those get a 1e-12 relative bound.
        let mut s_hh = DecayedHeavyHitters::new(g, 0.0, 12);
        let mut b_hh = DecayedHeavyHitters::new(g, 0.0, 12);
        let mut s_q = DecayedQuantiles::new(g, 0.0, 6, 0.1);
        let mut b_q = DecayedQuantiles::new(g, 0.0, 6, 0.1);
        for (&t, &item) in ts.iter().zip(&items) {
            s_hh.update(t, item);
            s_q.update(t, item);
        }
        b_hh.update_batch(&ts, &items);
        b_q.update_batch(&ts, &items);

        let t_q = 90.0;
        assert_eq!(
            s_hh.decayed_count(t_q).to_bits(),
            b_hh.decayed_count(t_q).to_bits()
        );
        for item in 0..40u64 {
            let (a, b) = (s_hh.estimate(item, t_q), b_hh.estimate(item, t_q));
            assert_eq!(
                a.map(|c| c.count.to_bits()),
                b.map(|c| c.count.to_bits()),
                "item {item}"
            );
        }
        for probe in [0u64, 7, 20, 39] {
            let (a, b) = (s_q.rank(probe, t_q), b_q.rank(probe, t_q));
            assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "probe {probe}: {a} vs {b}"
            );
        }
    });
}

#[test]
fn batched_samplers_match_scalar_draws() {
    cases(45, |rng| {
        let n = rng.gen_range(1..200);
        let ts: Vec<Timestamp> = (0..n)
            .map(|_| Timestamp::from(rng.gen_range(0.001..100.0)))
            .collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let k = rng.gen_range(1usize..16);
        let seed = rng.gen::<u64>();
        let g = Monomial::new(rng.gen_range(0.2..3.0));

        // The batched path consumes the RNG in the same order with the same
        // weights, so the realized sample must be identical.
        let mut s_wr = WeightedReservoir::new(g, 0.0, k, seed);
        let mut b_wr = WeightedReservoir::new(g, 0.0, k, seed);
        let mut s_ps = PrioritySampler::new(g, 0.0, k, seed);
        let mut b_ps = PrioritySampler::new(g, 0.0, k, seed);
        for (&t, &id) in ts.iter().zip(&ids) {
            s_wr.update(t, &id);
            s_ps.update(t, &id);
        }
        b_wr.update_batch(&ts, &ids);
        b_ps.update_batch(&ts, &ids);

        let key = |sample: Vec<&fd_core::sampling::SampleEntry<u64>>| {
            let mut v: Vec<u64> = sample.iter().map(|e| e.item).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(s_wr.sample()), key(b_wr.sample()));
        let t_q = 120.0;
        assert_eq!(
            s_ps.estimate_decayed_count(t_q).to_bits(),
            b_ps.estimate_decayed_count(t_q).to_bits()
        );
    });
}

#[test]
fn biased_reservoir_merge_invariants() {
    use fd_core::sampling::BiasedReservoir;
    cases(40, |rng| {
        let lambda = 0.05;
        let mut a = BiasedReservoir::new(lambda, rng.gen_range(0..1000));
        let mut b = BiasedReservoir::new(lambda, rng.gen_range(0..1000));
        let (na, nb) = (rng.gen_range(0usize..200), rng.gen_range(0usize..200));
        for i in 0..na {
            a.update(i as u64);
        }
        for i in 0..nb {
            b.update(10_000 + i as u64);
        }
        let cap = a.capacity();
        a.merge_from(&b);
        assert_eq!(a.items_seen(), (na + nb) as u64);
        assert!(a.sample().len() <= cap);
        if na + nb > 0 {
            assert!(!a.sample().is_empty());
        }
        // Every sampled item must come from one of the two streams.
        for &x in a.sample() {
            assert!(x < na as u64 || (10_000..10_000 + nb as u64).contains(&x));
        }
    });
}
