//! Property-based tests for fd-core: the paper's definitions, theorems and
//! error bounds checked on randomized inputs.

use proptest::prelude::*;

use fd_core::aggregates::{DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance};
use fd_core::backward::{DeterministicWave, ExponentialHistogram, PrefixBackwardHH};
use fd_core::cm::CmSketch;
use fd_core::decay::{
    check_backward_axioms, check_forward_axioms, BackExponential, BackPolynomial,
    BackSlidingWindow, BackwardDecay, Exponential, ForwardDecay, LandmarkWindow, Monomial, NoDecay,
    PolySum, SubPolynomial, SuperExponential,
};
use fd_core::distinct::{DominanceSketch, ExactDominance, Kmv};
use fd_core::heavy_hitters::{UnarySpaceSaving, WeightedSpaceSaving};
use fd_core::numerics::LogSum;
use fd_core::quantiles::{QDigest, WeightedGK};
use fd_core::sampling::{JumpWeightedReservoir, PrioritySampler, WeightedReservoir};
use fd_core::Mergeable;

/// A random stream of (timestamp, value) pairs with timestamps in
/// `[landmark, landmark + span]`.
fn stream_strategy(
    landmark: f64,
    span: f64,
    max_len: usize,
) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((0.001..1.0f64), (-100.0..100.0f64)), 1..max_len).prop_map(move |raw| {
        raw.into_iter()
            .map(|(frac, v)| (landmark + frac * span, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- Definition 1 axioms -------------------------------------------

    #[test]
    fn forward_axioms_random_monomial(beta in 0.1..6.0f64) {
        check_forward_axioms(&Monomial::new(beta), 0.0, 200.0, 40).unwrap();
    }

    #[test]
    fn forward_axioms_random_exponential(alpha in 0.001..2.0f64) {
        check_forward_axioms(&Exponential::new(alpha), 5.0, 105.0, 40).unwrap();
    }

    #[test]
    fn forward_axioms_random_polysum(c0 in 0.0..5.0f64, c1 in 0.0..5.0f64, c2 in 0.01..5.0f64) {
        check_forward_axioms(&PolySum::new(vec![c0, c1, c2]), 0.0, 100.0, 40).unwrap();
    }

    #[test]
    fn backward_axioms_random(lambda in 0.001..1.0f64, alpha in 0.1..4.0f64, w in 1.0..500.0f64) {
        check_backward_axioms(&BackExponential::new(lambda), 300.0, 40).unwrap();
        check_backward_axioms(&BackPolynomial::new(alpha), 300.0, 40).unwrap();
        check_backward_axioms(&BackSlidingWindow::new(w), 600.0, 40).unwrap();
        check_backward_axioms(&SubPolynomial, 300.0, 40).unwrap();
        check_backward_axioms(&SuperExponential::new(lambda), 50.0, 40).unwrap();
    }

    // ----- Section III-A: forward exp ≡ backward exp ----------------------

    #[test]
    fn exponential_models_coincide(
        alpha in 0.001..1.0f64,
        landmark in 0.0..100.0f64,
        dt_i in 0.0..100.0f64,
        dt_q in 0.0..200.0f64,
    ) {
        let t_i = landmark + dt_i;
        let t = t_i + dt_q;
        let fwd = Exponential::new(alpha).weight(landmark, t_i, t);
        let bwd = BackExponential::new(alpha).weight(t_i, t);
        prop_assert!((fwd - bwd).abs() < 1e-9);
    }

    // ----- Lemma 1: relative decay ----------------------------------------

    #[test]
    fn relative_decay_for_monomials(
        beta in 0.1..5.0f64,
        gamma in 0.01..1.0f64,
        t1 in 1.0..1e4f64,
        scale in 1.1..1e3f64,
    ) {
        let g = Monomial::new(beta);
        let landmark = 0.0;
        let t2 = t1 * scale;
        let w1 = g.weight(landmark, gamma * t1, t1);
        let w2 = g.weight(landmark, gamma * t2, t2);
        prop_assert!((w1 - w2).abs() < 1e-9, "w({t1}) = {w1}, w({t2}) = {w2}");
        prop_assert!((w1 - gamma.powf(beta)).abs() < 1e-9);
    }

    // ----- Theorem 1: aggregates match brute force ------------------------

    #[test]
    fn decayed_sum_count_match_brute_force(
        items in stream_strategy(10.0, 90.0, 200),
        beta in 0.2..4.0f64,
    ) {
        let g = Monomial::new(beta);
        let landmark = 10.0;
        let t_q = 110.0;
        let mut sum = DecayedSum::new(g, landmark);
        let mut count = DecayedCount::new(g, landmark);
        for &(t, v) in &items {
            sum.update(t, v);
            count.update(t);
        }
        let bs: f64 = items.iter().map(|&(t, v)| g.weight(landmark, t, t_q) * v).sum();
        let bc: f64 = items.iter().map(|&(t, _)| g.weight(landmark, t, t_q)).sum();
        prop_assert!((sum.query(t_q) - bs).abs() <= 1e-9 * bs.abs().max(1.0));
        prop_assert!((count.query(t_q) - bc).abs() <= 1e-9 * bc.max(1.0));
    }

    #[test]
    fn aggregates_are_order_invariant(
        items in stream_strategy(0.0, 50.0, 100),
        seed in 0u64..1000,
    ) {
        let g = Exponential::new(0.1);
        let mut forward_order = DecayedVariance::new(g, 0.0);
        let mut shuffled_order = DecayedVariance::new(g, 0.0);
        for &(t, v) in &items {
            forward_order.update(t, v);
        }
        // Deterministic shuffle driven by `seed`.
        let mut shuffled = items.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        for &(t, v) in &shuffled {
            shuffled_order.update(t, v);
        }
        let (a, b) = (forward_order.query(60.0), shuffled_order.query(60.0));
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0)),
            _ => prop_assert_eq!(a.is_some(), b.is_some()),
        }
    }

    #[test]
    fn merge_equals_concat_random_split(
        items in stream_strategy(0.0, 80.0, 150),
        split_mask in any::<u64>(),
    ) {
        let g = Monomial::quadratic();
        let mut whole = DecayedSum::new(g, 0.0);
        let mut a = DecayedSum::new(g, 0.0);
        let mut b = DecayedSum::new(g, 0.0);
        for (i, &(t, v)) in items.iter().enumerate() {
            whole.update(t, v);
            if (split_mask >> (i % 64)) & 1 == 0 {
                a.update(t, v);
            } else {
                b.update(t, v);
            }
        }
        a.merge_from(&b);
        let (x, y) = (whole.query(100.0), a.query(100.0));
        prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
    }

    #[test]
    fn extremum_matches_brute_force(items in stream_strategy(0.0, 50.0, 120)) {
        let g = Monomial::new(1.0);
        let mut mx = DecayedExtremum::max(g, 0.0);
        for &(t, v) in &items {
            mx.update(t, v);
        }
        let t_q = 60.0;
        let brute = items
            .iter()
            .map(|&(t, v)| g.weight(0.0, t, t_q) * v)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((mx.query(t_q).unwrap().0 - brute).abs() < 1e-9);
    }

    // ----- Numerics --------------------------------------------------------

    #[test]
    fn logsum_matches_naive(xs in prop::collection::vec(1e-6..1e6f64, 1..50)) {
        let mut ls = LogSum::new();
        for &x in &xs {
            ls.add_ln(x.ln());
        }
        let naive: f64 = xs.iter().sum();
        prop_assert!((ls.value() - naive).abs() <= 1e-9 * naive);
    }

    #[test]
    fn exponential_count_is_landmark_invariant(
        alpha in 0.01..0.5f64,
        items in prop::collection::vec(0.0..100.0f64, 1..100),
    ) {
        // Section III-A / VI-A: for exponential decay the landmark choice
        // must not affect the decayed result.
        let g = Exponential::new(alpha);
        let t_q = 150.0;
        let mut c0 = DecayedCount::new(g, 0.0);
        let mut c50 = DecayedCount::new(g, -50.0);
        for &t in &items {
            c0.update(t);
            c50.update(t);
        }
        let (a, b) = (c0.query(t_q), c50.query(t_q));
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    }

    // ----- Theorem 2: SpaceSaving bounds -----------------------------------

    #[test]
    fn space_saving_never_underestimates(
        items in prop::collection::vec((0u64..40, 0.5..5.0f64), 50..400),
        cap in 4usize..24,
    ) {
        let mut ss = WeightedSpaceSaving::new(cap);
        let mut exact = std::collections::HashMap::<u64, f64>::new();
        let mut total = 0.0;
        for &(item, w) in &items {
            ss.update(item, w);
            *exact.entry(item).or_default() += w;
            total += w;
        }
        for (&item, &true_w) in &exact {
            if let Some(c) = ss.estimate(item) {
                prop_assert!(c.count + 1e-9 >= true_w);
                prop_assert!(c.count - true_w <= total / cap as f64 + 1e-9);
                prop_assert!(c.count - c.error <= true_w + 1e-9);
            } else {
                prop_assert!(true_w <= total / cap as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn unary_space_saving_bounds(
        items in prop::collection::vec(0u64..60, 100..600),
        cap in 4usize..32,
    ) {
        let mut ss = UnarySpaceSaving::new(cap);
        let mut exact = std::collections::HashMap::<u64, u64>::new();
        for &item in &items {
            ss.update(item);
            *exact.entry(item).or_default() += 1;
        }
        let n = items.len() as f64;
        for (&item, &c) in &exact {
            if let Some((est, err)) = ss.estimate(item) {
                prop_assert!(est >= c);
                prop_assert!((est - c) as f64 <= n / cap as f64 + 1.0);
                prop_assert!(est.saturating_sub(err) <= c);
            } else {
                prop_assert!((c as f64) <= n / cap as f64 + 1.0);
            }
        }
    }

    // ----- Theorem 3: quantile bounds --------------------------------------

    #[test]
    fn qdigest_rank_error(
        items in prop::collection::vec((0u64..1024, 0.5..4.0f64), 100..800),
    ) {
        let eps = 0.1;
        let mut q = QDigest::with_epsilon(10, eps);
        for &(v, w) in &items {
            q.update(v, w);
        }
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [0u64, 128, 511, 777, 1023] {
            let exact: f64 = items.iter().filter(|&&(v, _)| v <= probe).map(|&(_, w)| w).sum();
            prop_assert!((q.rank(probe) - exact).abs() <= eps * total + 1e-9);
        }
    }

    #[test]
    fn gk_rank_error(
        items in prop::collection::vec((-1e3..1e3f64, 0.5..4.0f64), 100..800),
    ) {
        let eps = 0.05;
        let mut gk = WeightedGK::new(eps);
        for &(v, w) in &items {
            gk.update(v, w);
        }
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [-900.0, -100.0, 0.0, 333.3, 950.0] {
            let exact: f64 = items.iter().filter(|&&(v, _)| v <= probe).map(|&(_, w)| w).sum();
            prop_assert!((gk.rank(probe) - exact).abs() <= 2.0 * eps * total + 1e-9);
        }
    }

    #[test]
    fn qdigest_merge_preserves_bounds(
        items in prop::collection::vec((0u64..256, 1.0..2.0f64), 100..500),
        mask in any::<u64>(),
    ) {
        let eps = 0.1;
        let mut a = QDigest::with_epsilon(8, eps);
        let mut b = QDigest::with_epsilon(8, eps);
        for (i, &(v, w)) in items.iter().enumerate() {
            if (mask >> (i % 64)) & 1 == 0 { a.update(v, w) } else { b.update(v, w) }
        }
        a.merge_from(&b);
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        for probe in [0u64, 64, 128, 255] {
            let exact: f64 = items.iter().filter(|&&(v, _)| v <= probe).map(|&(_, w)| w).sum();
            prop_assert!((a.rank(probe) - exact).abs() <= 2.0 * eps * total + 1e-9);
        }
    }

    // ----- Theorem 4: dominance norm ---------------------------------------

    #[test]
    fn exact_dominance_is_max_per_value(
        items in prop::collection::vec((0.1..50.0f64, 0u64..30), 1..200),
    ) {
        let g = Monomial::new(1.0);
        let mut d = ExactDominance::new(g, 0.0);
        let mut maxw = std::collections::HashMap::<u64, f64>::new();
        let t_q = 60.0;
        for &(t, v) in &items {
            d.update(t, v);
            let w = g.weight(0.0, t, t_q);
            maxw.entry(v).and_modify(|m| *m = m.max(w)).or_insert(w);
        }
        let brute: f64 = maxw.values().sum();
        prop_assert!((d.query(t_q) - brute).abs() <= 1e-9 * brute.max(1.0));
    }

    #[test]
    fn kmv_merge_equals_union(
        keys in prop::collection::vec(any::<u64>(), 10..500),
        mask in any::<u64>(),
    ) {
        let h = fd_core::hash::SeededHash::new(1);
        let mut a = Kmv::new(32);
        let mut b = Kmv::new(32);
        let mut whole = Kmv::new(32);
        for (i, &k) in keys.iter().enumerate() {
            whole.offer(h.hash(k));
            if (mask >> (i % 64)) & 1 == 0 { a.offer(h.hash(k)); } else { b.offer(h.hash(k)); }
        }
        a.merge_from(&b);
        prop_assert_eq!(a.threshold(), whole.threshold());
        prop_assert!((a.estimate() - whole.estimate()).abs() < 1e-9);
    }

    #[test]
    fn dominance_sketch_order_invariance(
        items in prop::collection::vec((0.1..20.0f64, 0u64..100), 10..200),
    ) {
        // The sketch must give identical answers for any arrival order
        // (Section VI-B: out-of-order arrivals are free).
        let g = Monomial::new(2.0);
        let mut fwd = DominanceSketch::new(g, 0.0, 0.2, 7);
        let mut rev = DominanceSketch::new(g, 0.0, 0.2, 7);
        for &(t, v) in &items {
            fwd.update(t, v);
        }
        for &(t, v) in items.iter().rev() {
            rev.update(t, v);
        }
        let (a, b) = (fwd.query(25.0), rev.query(25.0));
        prop_assert!((a - b).abs() <= 0.05 * a.abs().max(1.0), "{a} vs {b}");
    }

    // ----- Theorem 6 / samplers --------------------------------------------

    #[test]
    fn weighted_reservoir_invariants(
        items in prop::collection::vec(0.1..100.0f64, 1..300),
        k in 1usize..20,
        seed in any::<u64>(),
    ) {
        let g = Monomial::new(1.0);
        let mut wr = WeightedReservoir::new(g, 0.0, k, seed);
        for (i, &t) in items.iter().enumerate() {
            wr.update(t, &(i as u64));
        }
        let sample = wr.sample();
        prop_assert_eq!(sample.len(), k.min(items.len()));
        let mut ids: Vec<u64> = sample.iter().map(|e| e.item).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate items in sample");
    }

    #[test]
    fn priority_sampler_estimate_exact_underfull(
        items in prop::collection::vec(0.1..50.0f64, 1..10),
        seed in any::<u64>(),
    ) {
        let g = Monomial::new(1.0);
        let mut ps = PrioritySampler::new(g, 0.0, 16, seed);
        for (i, &t) in items.iter().enumerate() {
            ps.update(t, &(i as u64));
        }
        let t_q = 60.0;
        let truth: f64 = items.iter().map(|&t| g.weight(0.0, t, t_q)).sum();
        prop_assert!((ps.estimate_decayed_count(t_q) - truth).abs() <= 1e-9 * truth.max(1.0));
    }

    // ----- Exponential histograms ------------------------------------------

    #[test]
    fn eh_window_error(
        n in 100usize..3000,
        eps_inv in 5u32..20,
        wfrac in 0.05..1.0f64,
    ) {
        let eps = 1.0 / eps_inv as f64;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let ts: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for &t in &ts {
            eh.insert(t);
        }
        let t_q = ts[n - 1];
        let w = wfrac * n as f64;
        let exact = ts.iter().filter(|&&x| x > t_q - w).count() as f64;
        let est = eh.window_query(w, t_q);
        prop_assert!((est - exact).abs() <= eps * exact.max(1.0) + 1.0,
            "n={n} eps={eps} w={w}: est {est} exact {exact}");
    }

    #[test]
    fn eh_total_is_exact(values in prop::collection::vec(1u64..1000, 1..500)) {
        let mut eh = ExponentialHistogram::with_epsilon(0.1);
        for (i, &v) in values.iter().enumerate() {
            eh.insert_value(i as f64, v);
        }
        prop_assert_eq!(eh.total(), values.iter().sum::<u64>());
        // Whole-stream window query must also be near-exact (no straddler).
        let est = eh.window_query(values.len() as f64 + 10.0, values.len() as f64);
        prop_assert!((est - eh.total() as f64).abs() <= 1e-9);
    }

    // ----- Landmark window / no decay --------------------------------------

    #[test]
    fn landmark_window_counts_post_landmark_items(
        items in prop::collection::vec(0.0..100.0f64, 1..100),
        landmark in 0.0..100.0f64,
    ) {
        let mut c = DecayedCount::new(LandmarkWindow, landmark);
        let mut expected = 0u32;
        for &t in &items {
            if t >= landmark {
                c.update(t);
                if t > landmark {
                    expected += 1;
                }
            }
        }
        prop_assert!((c.query(200.0) - expected as f64).abs() < 1e-9);
    }

    // ----- Count-Min -------------------------------------------------------

    #[test]
    fn cm_sketch_is_an_upper_bound(
        items in prop::collection::vec((0u64..50, 0.1..5.0f64), 20..400),
        seed in any::<u64>(),
    ) {
        let mut cm = CmSketch::new(128, 3, seed);
        let mut exact = std::collections::HashMap::<u64, f64>::new();
        for &(item, w) in &items {
            cm.update(item, w);
            *exact.entry(item).or_default() += w;
        }
        for (&item, &true_w) in &exact {
            prop_assert!(cm.query(item) + 1e-9 >= true_w);
        }
        let total: f64 = exact.values().sum();
        prop_assert!((cm.total_weight() - total).abs() <= 1e-9 * total);
    }

    #[test]
    fn cm_merge_equals_concat_prop(
        items in prop::collection::vec((0u64..100, 0.5..2.0f64), 20..300),
        mask in any::<u64>(),
    ) {
        let mut a = CmSketch::new(64, 3, 9);
        let mut b = CmSketch::new(64, 3, 9);
        let mut whole = CmSketch::new(64, 3, 9);
        for (i, &(item, w)) in items.iter().enumerate() {
            whole.update(item, w);
            if (mask >> (i % 64)) & 1 == 0 { a.update(item, w) } else { b.update(item, w) }
        }
        a.merge_from(&b);
        for item in 0..100u64 {
            prop_assert!((a.query(item) - whole.query(item)).abs() < 1e-9);
        }
    }

    // ----- Deterministic waves ---------------------------------------------

    #[test]
    fn wave_window_error_prop(
        n in 100u64..5000,
        eps_inv in 5u32..15,
        wfrac in 0.05..0.95f64,
    ) {
        let eps = 1.0 / eps_inv as f64;
        let mut wave = DeterministicWave::with_epsilon(eps);
        for i in 0..n {
            wave.insert(i as f64);
        }
        let t_q = (n - 1) as f64;
        let w = wfrac * n as f64;
        let exact = (0..n).filter(|&i| (i as f64) > t_q - w).count() as f64;
        let est = wave.window_query(w, t_q);
        prop_assert!((est - exact).abs() <= eps * exact.max(1.0) + 1.0,
            "n={n} eps={eps} w={w}: est {est}, exact {exact}");
    }

    // ----- Prefix-hierarchy backward HH -------------------------------------

    #[test]
    fn prefix_hh_total_prop(
        n in 100usize..1000,
        alpha in 0.01..0.5f64,
    ) {
        use fd_core::decay::BackExponential;
        let mut hh = PrefixBackwardHH::new(8, 0.05);
        let ts: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        for (i, &t) in ts.iter().enumerate() {
            hh.update(t, (i % 256) as u64);
        }
        let f = BackExponential::new(alpha);
        let t_q = ts[n - 1] + 1.0;
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let got = hh.decayed_total(&f, t_q);
        prop_assert!((got - exact).abs() / exact.max(1e-9) < 0.2,
            "{got} vs {exact}");
    }

    // ----- Jump-accelerated weighted reservoir ------------------------------

    #[test]
    fn jump_reservoir_invariants(
        items in prop::collection::vec(0.1..100.0f64, 1..300),
        k in 1usize..20,
        seed in any::<u64>(),
    ) {
        let g = Monomial::new(1.0);
        let mut jr = JumpWeightedReservoir::new(0.0, k, seed);
        for (i, &t) in items.iter().enumerate() {
            jr.update(&g, t, &(i as u64));
        }
        let sample = jr.sample();
        prop_assert_eq!(sample.len(), k.min(items.len()));
        let mut ids: Vec<u64> = sample.iter().map(|(&item, _)| item).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate items in jump sample");
        prop_assert!(jr.random_draws() <= jr.items_seen() + k as u64 + 2);
    }

    // ----- AnyDecay ----------------------------------------------------------

    #[test]
    fn any_decay_poly_matches_monomial(beta in 0.1..5.0f64, t_i in 1.0..50.0f64, dt in 0.0..50.0f64) {
        use fd_core::decay::AnyDecay;
        let spec: AnyDecay = format!("poly:{beta}").parse().unwrap();
        let stat = Monomial::new(beta);
        let t = t_i + dt;
        prop_assert!((spec.weight(0.0, t_i, t) - stat.weight(0.0, t_i, t)).abs() < 1e-12);
    }

    #[test]
    fn no_decay_count_is_plain_count(items in prop::collection::vec(0.0..100.0f64, 0..100)) {
        let mut c = DecayedCount::new(NoDecay, 0.0);
        for &t in &items {
            c.update(t);
        }
        prop_assert!((c.query(1000.0) - items.len() as f64).abs() < 1e-9);
    }

    // ----- Checkpoint codec ---------------------------------------------------

    #[test]
    fn checkpoint_roundtrips_decayed_sum(
        items in prop::collection::vec((0.0..100.0f64, -50.0..50.0f64), 0..200),
        alpha in 0.01..2.0f64,
    ) {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let mut s = DecayedSum::new(Exponential::new(alpha), 0.0);
        for &(t, v) in &items {
            s.update(t, v);
        }
        let bytes = to_bytes(&s).unwrap();
        let restored: DecayedSum<Exponential> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(s.query(150.0).to_bits(), restored.query(150.0).to_bits());
    }

    #[test]
    fn checkpoint_roundtrips_space_saving(
        items in prop::collection::vec((0u64..200, 0.1..5.0f64), 1..300),
        cap in 2usize..32,
    ) {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let mut ss = WeightedSpaceSaving::new(cap);
        for &(item, w) in &items {
            ss.update(item, w);
        }
        let bytes = to_bytes(&ss).unwrap();
        let restored: WeightedSpaceSaving = from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.len(), ss.len());
        prop_assert!((restored.total_weight() - ss.total_weight()).abs() < 1e-12);
        for &(item, _) in &items {
            let (a, b) = (ss.estimate(item), restored.estimate(item));
            prop_assert_eq!(a.map(|c| c.count.to_bits()), b.map(|c| c.count.to_bits()));
        }
    }

    #[test]
    fn checkpoint_roundtrips_qdigest(
        items in prop::collection::vec((0u64..256, 0.5..3.0f64), 1..300),
    ) {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        let mut q = QDigest::with_epsilon(8, 0.1);
        for &(v, w) in &items {
            q.update(v, w);
        }
        let bytes = to_bytes(&q).unwrap();
        let restored: QDigest = from_bytes(&bytes).unwrap();
        for probe in [0u64, 63, 128, 255] {
            prop_assert!((q.rank(probe) - restored.rank(probe)).abs() < 1e-9);
        }
    }

    #[test]
    fn checkpoint_rejects_random_corruption(
        corrupt_at in 0usize..64,
        bit in 0u8..8,
    ) {
        use fd_core::checkpoint::{from_bytes, to_bytes};
        // Flipping a bit either changes the value or breaks decoding — it
        // must never panic.
        let mut ss = WeightedSpaceSaving::new(4);
        ss.update(1, 2.0);
        ss.update(2, 3.0);
        let mut bytes = to_bytes(&ss).unwrap();
        let idx = corrupt_at % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = from_bytes::<WeightedSpaceSaving>(&bytes); // Ok or Err, no panic
    }
}
