//! Small, fast, seedable 64-bit hashing used by the sketches in this crate.
//!
//! The sketches ([`crate::distinct`], and the group tables in `fd-engine`)
//! need a hash with good avalanche behaviour that maps keys to
//! pseudo-uniform 64-bit values and to uniform reals in `[0, 1)`. We
//! implement the well-known `splitmix64` finalizer (Steele, Lea, Flood 2014)
//! rather than pulling an external hashing crate.

/// The splitmix64 finalizer: a cheap bijective mixer on `u64` with full
/// avalanche (every input bit flips every output bit with probability ≈ ½).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded 64-bit hash function over `u64` keys.
///
/// Different seeds give (empirically) independent hash functions, which is
/// what the KMV distinct sketches require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Creates a hash function for the given seed.
    pub fn new(seed: u64) -> Self {
        // Pre-mix the seed so that consecutive small seeds (0, 1, 2, …)
        // still yield unrelated hash functions.
        Self {
            seed: mix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Hashes a key to a pseudo-uniform 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        mix64(key ^ self.seed)
    }

    /// Hashes a key to a uniform real in `[0, 1)`.
    ///
    /// Uses the top 53 bits so the value is exactly representable as `f64`.
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        (self.hash(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hashes an arbitrary byte string to a `u64` (FNV-1a folded through
/// [`mix64`]). Handy for hashing composite keys.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), 42);
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn mix64_avalanche_single_bit() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix64(0x1234_5678_9ABC_DEF0);
        for bit in 0..64 {
            let flipped = mix64(0x1234_5678_9ABC_DEF0 ^ (1u64 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!(
                (16..=48).contains(&diff),
                "bit {bit}: only {diff} bits flipped"
            );
        }
    }

    #[test]
    fn seeded_hashes_differ_by_seed() {
        let h1 = SeededHash::new(1);
        let h2 = SeededHash::new(2);
        let collisions = (0..1000u64).filter(|&k| h1.hash(k) == h2.hash(k)).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn unit_is_in_unit_interval_and_uniformish() {
        let h = SeededHash::new(7);
        let n = 100_000u64;
        let mut sum = 0.0;
        for k in 0..n {
            let u = h.unit(k);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn unit_buckets_are_balanced() {
        // Chi-square-ish check over 16 buckets.
        let h = SeededHash::new(99);
        let n = 160_000u64;
        let mut buckets = [0u32; 16];
        for k in 0..n {
            buckets[(h.unit(k) * 16.0) as usize] += 1;
        }
        let expected = (n / 16) as f64;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn hash_bytes_discriminates() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_eq!(hash_bytes(b"stream"), hash_bytes(b"stream"));
    }
}
