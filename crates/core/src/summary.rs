//! The unified [`Summary`] trait: one ingestion/query shape for every
//! forward-decay summary in this crate.
//!
//! Everything the paper builds — aggregates (Theorem 1), heavy hitters
//! (Theorem 2), quantiles (Theorem 3), dominance norms (Theorem 4) and
//! samplers (Theorems 5–6) — shares the same lifecycle: timestamped
//! arrivals go in, and at query time the accumulated state is normalized
//! by `g(t − L)` to produce a decayed answer. [`Summary`] captures that
//! shape so engine, checkpoint and merge layers can be written once,
//! generically, instead of once per summary type.
//!
//! What varies per summary is captured by two associated types:
//!
//! - [`Update`](Summary::Update) — the payload accompanying each
//!   timestamp: `()` for a count, `f64` for a sum/average/variance,
//!   `u64` for an item identifier, `T` for a sampled record;
//! - [`Output`](Summary::Output) — the query-time answer: `f64` for the
//!   scalar aggregates and sketch mass, `Option<f64>` where an empty
//!   summary has no answer, `Vec<T>` for a drawn sample.
//!
//! The trait methods are named `update_at` / `query_at` (rather than
//! shadowing the inherent `update` / `query` methods) so that summaries
//! keep their richer inherent APIs — e.g. `heavy_hitters(phi, t)`,
//! `quantile(phi, t)` — while generic code has one spelling:
//!
//! ```
//! use fd_core::prelude::*;
//! use fd_core::summary::Summary;
//!
//! /// Replays a stream into any summary and answers at `t` — works for
//! /// counts, sums, sketches and samplers alike.
//! fn replay<S: Summary>(
//!     s: &mut S,
//!     stream: impl IntoIterator<Item = (Timestamp, S::Update)>,
//!     t: Timestamp,
//! ) -> S::Output {
//!     for (t_i, u) in stream {
//!         s.update_at(t_i, u);
//!     }
//!     s.query_at(t)
//! }
//!
//! let g = Monomial::quadratic();
//! let mut sum = DecayedSum::new(g, 100.0);
//! let mut count = DecayedCount::new(g, 100.0);
//! let stream = [(105.0, 4.0), (107.0, 8.0), (103.0, 3.0)];
//!
//! let s = replay(&mut sum, stream.map(|(t, v)| (t.into(), v)), 110.0.into());
//! let c = replay(&mut count, stream.map(|(t, _)| (t.into(), ())), 110.0.into());
//! assert!(s > 0.0 && c > 0.0);
//! ```

use crate::Timestamp;

/// Occupancy and activity counters for a summary, surfaced through
/// [`Summary::stats`] — the fd-core half of the engine's telemetry layer.
///
/// Every field is a plain monotone counter or gauge sampled at call time;
/// reading them never perturbs the summary. Fields that make no sense for a
/// given summary are left at zero (e.g. `capacity` for the exact O(1)
/// aggregates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SummaryStats {
    /// Landmark renormalization events so far (each is a linear pass over
    /// the summary's state; see [`crate::numerics::Renormalizer`]).
    pub renormalizations: u64,
    /// Live entries held right now: SpaceSaving counters in use, q-digest
    /// nodes, sample slots filled. Zero for constant-space aggregates.
    pub occupancy: u64,
    /// Hard bound on `occupancy`, when one exists; zero means unbounded (or
    /// not applicable).
    pub capacity: u64,
    /// Items offered to the summary.
    pub items: u64,
    /// Items that changed the retained state. Equal to `items` for
    /// deterministic summaries; for the samplers this counts accepted draws,
    /// so `accepted / items` is the live acceptance rate.
    pub accepted: u64,
}

impl SummaryStats {
    /// `accepted / items`, or `None` before any item arrives.
    pub fn acceptance_rate(&self) -> Option<f64> {
        (self.items > 0).then(|| self.accepted as f64 / self.items as f64)
    }

    /// `occupancy / capacity`, or `None` when the summary is unbounded.
    pub fn occupancy_fraction(&self) -> Option<f64> {
        (self.capacity > 0).then(|| self.occupancy as f64 / self.capacity as f64)
    }
}

/// A forward-decay stream summary: timestamped updates in, a
/// `g(t − L)`-normalized answer out.
///
/// Implementors decay against a fixed landmark `L` ([`landmark`]); the
/// per-item weight `g(t_i − L)` is fixed at arrival (the paper's central
/// trick), so summaries with equal landmarks and decay functions are
/// mergeable — most implementors also implement
/// [`Mergeable`](crate::merge::Mergeable), which is what the sharded
/// engine exploits to combine per-shard state.
///
/// [`landmark`]: Summary::landmark
pub trait Summary {
    /// Per-arrival payload fed alongside the timestamp.
    type Update;

    /// The answer produced at query time.
    type Output;

    /// The landmark `L` this summary decays against (as passed to the
    /// constructor; internal renormalization is invisible here).
    fn landmark(&self) -> Timestamp;

    /// Feeds one timestamped arrival.
    ///
    /// Equivalent to the summary's inherent `update`; `t_i` must be at
    /// or after [`landmark`](Summary::landmark).
    fn update_at(&mut self, t_i: Timestamp, u: Self::Update);

    /// Feeds a columnar batch of arrivals: `ts[i]` pairs with `us[i]`.
    ///
    /// The default loops over [`update_at`](Summary::update_at).
    /// Summaries with a batched fast path — hoisted renormalization
    /// checks, per-tick weight memoization via
    /// [`WeightKernel`](crate::kernel::WeightKernel) — override it; see
    /// the inherent `update_batch` methods on the aggregates, heavy
    /// hitters, quantiles and samplers.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    fn update_batch_at(&mut self, ts: &[Timestamp], us: &[Self::Update])
    where
        Self::Update: Clone,
    {
        assert_eq!(ts.len(), us.len(), "columnar batch slices must align");
        for (&t_i, u) in ts.iter().zip(us) {
            self.update_at(t_i, u.clone());
        }
    }

    /// Whether this summary honors non-unit per-item scales in
    /// [`update_batch_scaled_at`](Summary::update_batch_scaled_at).
    ///
    /// Linear aggregates (count / sum / average) return `true`: a
    /// Horvitz–Thompson scale multiplies their frozen numerators without
    /// disturbing mergeability. Order-statistic and sampling summaries
    /// return the default `false` and must only ever see all-ones scale
    /// columns — the engine's overload controller gates shed policies on
    /// this flag at configuration time.
    fn supports_scaled_batches(&self) -> bool {
        false
    }

    /// Feeds a columnar batch of arrivals each carrying a per-item scale:
    /// `ts[i]` pairs with `us[i]` and `scales[i]`.
    ///
    /// Scales are Horvitz–Thompson inverse-inclusion-probability weights
    /// attached by decay-aware load shedding: a survivor admitted with
    /// probability `p_i` arrives with `scales[i] = 1 / p_i`, so scaled
    /// linear aggregates remain unbiased estimates of the unshed stream.
    /// A scale of `1.0` means "not thinned" and reproduces
    /// [`update_batch_at`](Summary::update_batch_at) exactly.
    ///
    /// The default asserts every scale is `1.0` and delegates to
    /// [`update_batch_at`](Summary::update_batch_at); summaries reporting
    /// [`supports_scaled_batches`](Summary::supports_scaled_batches) honor
    /// arbitrary non-negative scales.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ, or (for the default) if any
    /// scale differs from `1.0`.
    fn update_batch_scaled_at(&mut self, ts: &[Timestamp], us: &[Self::Update], scales: &[f64])
    where
        Self::Update: Clone,
    {
        assert_eq!(ts.len(), scales.len(), "scale column must align with batch");
        assert!(
            scales.iter().all(|&s| s == 1.0),
            "summary does not support non-unit Horvitz–Thompson scales"
        );
        self.update_batch_at(ts, us);
    }

    /// Feeds a columnar batch of timestamp-only arrivals — the fast path
    /// for summaries whose [`Update`](Summary::Update) is the zero-sized
    /// `()` (counts), sparing callers the parallel slice of units that
    /// [`update_batch_at`](Summary::update_batch_at) would demand (and the
    /// `Clone` bound it drags in).
    ///
    /// The default loops over [`update_at`](Summary::update_at); counts
    /// with a batched kernel (e.g. `DecayedCount::update_batch`) override
    /// it to keep the hoisted-renormalization / weight-memo path.
    fn update_batch_counts(&mut self, ts: &[Timestamp])
    where
        Self: Summary<Update = ()>,
    {
        for &t_i in ts {
            self.update_at(t_i, ());
        }
    }

    /// Answers at query time `t ≥ t_i` for all fed items: the state
    /// normalized by `g(t − L)`.
    fn query_at(&self, t: Timestamp) -> Self::Output;

    /// Instrumentation counters for this summary ([`SummaryStats`]).
    ///
    /// The default returns all zeros; summaries with observable internals
    /// (sketches, samplers, renormalizing aggregates) override it.
    fn stats(&self) -> SummaryStats {
        SummaryStats::default()
    }

    /// Structural self-check, used by the differential oracle harness
    /// (`fd_core::oracle`, `tests/differential.rs`): verifies whatever
    /// internal invariants the summary can state about itself — totals are
    /// non-negative and non-NaN, occupancy stays within capacity, and so
    /// on — and reports the first violation as an `Err` describing it.
    ///
    /// This is a test-path hook, not a hot-path guard: implementations may
    /// walk their entire state. The default has nothing to check.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}
