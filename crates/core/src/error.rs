//! The workspace error type behind every fallible (`try_`) constructor.
//!
//! Decay functions and builders validate their parameters: a monomial
//! exponent must be positive, a half-life finite and positive, a query
//! needs an aggregate. The original constructors panic on violation —
//! right for tests and examples, wrong for anything that feeds on user
//! input (the `fdql` CLI, config files). Each such constructor therefore
//! has a `try_` twin returning `Result<_, Error>`, and the panicking
//! version is a thin wrapper over it.

use std::fmt;

/// Why a `try_` constructor refused its arguments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A numeric parameter was out of its valid range.
    InvalidParameter {
        /// Which parameter (e.g. `"beta"`, `"half_life"`).
        name: &'static str,
        /// The offending value.
        value: f64,
        /// What the parameter must satisfy, human-readable.
        requirement: &'static str,
    },
    /// A builder was finalized without a required component.
    MissingComponent {
        /// The builder (e.g. `"Query"`).
        builder: &'static str,
        /// The component that was never supplied (e.g. `"aggregate"`).
        component: &'static str,
    },
    /// A parallel worker died and supervision was disabled, so its state
    /// (and any tuples routed to it) cannot be recovered.
    WorkerLost {
        /// Index of the shard whose worker is gone.
        shard: usize,
    },
    /// The durable store could not be opened or recovered: unreadable
    /// manifest, corrupt checkpoint, or a WAL that no longer covers the
    /// newest durable commit. Torn *tails* are repaired silently; this
    /// variant means the store is damaged below the last commit point,
    /// where recovering would silently drop acknowledged data.
    Durability {
        /// What went wrong, human-readable.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid {name} = {value}: must be {requirement}"),
            Error::MissingComponent { builder, component } => {
                write!(f, "{builder} is missing its {component}")
            }
            Error::WorkerLost { shard } => {
                write!(f, "shard {shard} worker has died (supervision disabled)")
            }
            Error::Durability { detail } => write!(f, "durable store: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

/// Checks one numeric parameter: finite and strictly positive — the
/// requirement shared by every decay-family constructor.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, Error> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(Error::InvalidParameter {
            name,
            value,
            requirement: "finite and > 0",
        })
    }
}
