//! Decayed count-distinct under forward decay (Section IV-D, Theorem 4).
//!
//! Definition 9 generalizes COUNT DISTINCT to time-decayed data by summing,
//! per distinct value, the **maximum** current weight of its occurrences:
//!
//! ```text
//! D = Σ_v max_{v_i = v} g(t_i − L) / g(t − L)
//! ```
//!
//! Factoring out `g(t − L)` leaves the *dominance norm* `Σ_v max_i w_i` over
//! the static weights `w_i = g(t_i − L)` — estimable from combinations of
//! unweighted count-distinct summaries.
//!
//! Two implementations:
//!
//! - [`ExactDominance`] — a per-value max (O(distinct values) space), the
//!   ground truth for tests and small domains;
//! - [`DominanceSketch`] — the small-space estimator: geometric weight
//!   *levels* (base `1 + ε`), one KMV distinct sketch per level estimating
//!   `d_j = |{v : max weight of v ≥ (1+ε)^j}|`, combined as
//!   `D ≈ Σ_j ((1+ε)^j − (1+ε)^{j−1}) · d_j`. Only a logarithmic window of
//!   levels below the current maximum is retained — lower levels contribute
//!   at most an ε fraction — so space is `O(k · log_{1+ε}(n/ε))` for KMV
//!   size `k = O(1/ε²)`, and updates touch each active level with a single
//!   comparison (`Õ(1)` in the paper's notation). The paper points to the
//!   range-efficient distinct counter of Pavan–Tirthapura for the
//!   asymptotically tightest `Õ(1/ε²)` bound; this level-set construction is
//!   the same "careful combination of unweighted count distinct summaries"
//!   with an extra log factor, and identical streaming behaviour.
//!
//! All arithmetic runs in the log domain, so exponential decay needs no
//! renormalization.

use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

use crate::decay::ForwardDecay;
use crate::hash::SeededHash;
use crate::merge::Mergeable;
use crate::numerics::LogSum;
use crate::Timestamp;

// ---------------------------------------------------------------------------
// Exact reference
// ---------------------------------------------------------------------------

/// Exact decayed count-distinct: tracks `max ln g(t_i − L)` per distinct
/// value. Linear space; the reference implementation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExactDominance<G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    /// value → max ln-weight observed.
    max_ln_w: HashMap<u64, f64>,
}

impl<G: ForwardDecay> ExactDominance<G> {
    /// Creates an empty summary.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            landmark,
            max_ln_w: HashMap::new(),
        }
    }

    /// Ingests an occurrence of `value` at `t_i`. Pre-landmark timestamps
    /// are clamped to the landmark ([`crate::decay::clamp_to_landmark`]).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, value: u64) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.landmark);
        let ln_w = self.g.ln_g(t_i - self.landmark);
        if ln_w == f64::NEG_INFINITY {
            return;
        }
        self.max_ln_w
            .entry(value)
            .and_modify(|m| *m = m.max(ln_w))
            .or_insert(ln_w);
    }

    /// The decayed distinct count `D` at query time `t` (Definition 9).
    pub fn query(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let mut ls = LogSum::new();
        for &ln_w in self.max_ln_w.values() {
            ls.add_ln(ln_w);
        }
        (ls.ln() - self.g.ln_g(t - self.landmark)).exp()
    }

    /// Number of distinct values observed.
    pub fn distinct_values(&self) -> usize {
        self.max_ln_w.len()
    }
}

impl<G: ForwardDecay> Mergeable for ExactDominance<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.landmark, other.landmark, "landmarks must match");
        for (&v, &ln_w) in &other.max_ln_w {
            self.max_ln_w
                .entry(v)
                .and_modify(|m| *m = m.max(ln_w))
                .or_insert(ln_w);
        }
    }
}

// ---------------------------------------------------------------------------
// KMV distinct sketch
// ---------------------------------------------------------------------------

/// A K-Minimum-Values distinct counter over pre-hashed 64-bit keys: keeps
/// the `k` smallest distinct hash values; the distinct count is estimated
/// as `(k − 1) · 2⁶⁴ / τ` where `τ` is the k-th smallest hash.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Kmv {
    k: usize,
    /// Max-heap of the k smallest hashes.
    heap: BinaryHeap<u64>,
    members: HashSet<u64>,
}

impl Kmv {
    /// Creates a sketch keeping `k` minimum values (standard error
    /// ≈ `1/√(k−2)`).
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2);
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            members: HashSet::with_capacity(k * 2),
        }
    }

    /// The k-th smallest hash currently held, or `u64::MAX` while under-full
    /// (every hash is accepted until then).
    #[inline]
    pub fn threshold(&self) -> u64 {
        if self.heap.len() < self.k {
            u64::MAX
        } else {
            *self.heap.peek().expect("non-empty")
        }
    }

    /// Offers a hash value. Returns true if it entered the sketch. O(log k)
    /// when accepted, O(1) when rejected.
    pub fn offer(&mut self, h: u64) -> bool {
        if h >= self.threshold() || self.members.contains(&h) {
            return false;
        }
        self.heap.push(h);
        self.members.insert(h);
        if self.heap.len() > self.k {
            let evicted = self.heap.pop().expect("non-empty");
            self.members.remove(&evicted);
        }
        true
    }

    /// Estimated number of distinct keys offered.
    pub fn estimate(&self) -> f64 {
        if self.heap.len() < self.k {
            return self.heap.len() as f64; // exact while under-full
        }
        let tau = self.threshold() as f64;
        (self.k as f64 - 1.0) * (u64::MAX as f64) / tau
    }

    /// Number of stored hashes.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no hashes are stored.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.heap.capacity() * 8 + self.members.capacity() * 16 + std::mem::size_of::<Self>()
    }
}

impl Mergeable for Kmv {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "sketch sizes must match");
        for &h in &other.members {
            self.offer(h);
        }
    }
}

// ---------------------------------------------------------------------------
// Dominance-norm sketch
// ---------------------------------------------------------------------------

/// Small-space estimator of the decayed distinct count (Theorem 4).
///
/// See the module docs for the construction. Relative error is
/// `(1 ± O(ε))` with high probability; the `epsilon` parameter controls
/// both the geometric level base and the per-level KMV size.
///
/// ```
/// use fd_core::distinct::DominanceSketch;
/// use fd_core::decay::NoDecay;
///
/// // With no decay, D is simply the number of distinct values.
/// let mut d = DominanceSketch::new(NoDecay, 0.0, 0.1, 42);
/// for i in 0..10_000u64 {
///     d.update(i as f64 * 0.001, i % 1000);
/// }
/// let est = d.query(10.0);
/// assert!((est - 1000.0).abs() / 1000.0 < 0.15);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DominanceSketch<G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    /// ln of the geometric level base `b = 1 + ε`.
    ln_base: f64,
    /// Per-level KMV size.
    k: usize,
    /// Number of levels retained below the maximum.
    window: i64,
    hasher: SeededHash,
    /// level j → KMV of values whose max weight reaches `b^j`.
    levels: BTreeMap<i64, Kmv>,
    /// Items ingested (drives the level-window width).
    n: u64,
}

impl<G: ForwardDecay> DominanceSketch<G> {
    /// Creates a sketch with target relative error `ε` (each level's KMV
    /// gets `k = ⌈4/ε²⌉` slots; level base `1 + ε`).
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 0.5`.
    pub fn new(g: G, landmark: impl Into<Timestamp>, epsilon: f64, seed: u64) -> Self {
        let landmark = landmark.into();
        assert!(epsilon > 0.0 && epsilon <= 0.5, "ε must be in (0, 0.5]");
        let k = (4.0 / (epsilon * epsilon)).ceil() as usize;
        Self::with_params(g, landmark, 1.0 + epsilon, k, seed)
    }

    /// Creates a sketch with explicit level base and per-level KMV size.
    ///
    /// # Panics
    /// Panics unless `base > 1` and `k ≥ 2`.
    pub fn with_params(
        g: G,
        landmark: impl Into<Timestamp>,
        base: f64,
        k: usize,
        seed: u64,
    ) -> Self {
        let landmark = landmark.into();
        assert!(base > 1.0 && base.is_finite());
        assert!(k >= 2);
        Self {
            g,
            landmark,
            ln_base: base.ln(),
            k,
            window: 0,
            hasher: SeededHash::new(seed),
            levels: BTreeMap::new(),
            n: 0,
        }
    }

    /// The level index of a log-weight.
    #[inline]
    fn level_of(&self, ln_w: f64) -> i64 {
        (ln_w / self.ln_base).floor() as i64
    }

    /// Current retained-window width in levels: `log_b(n/ε_trunc)` with the
    /// truncation error budget fixed at the level base's ε.
    fn target_window(&self) -> i64 {
        let eps = (self.ln_base.exp() - 1.0).max(1e-6);
        let n = (self.n.max(16)) as f64;
        ((n / eps).ln() / self.ln_base).ceil() as i64 + 1
    }

    /// Ingests an occurrence of `value` at `t_i` (pre-landmark timestamps
    /// clamp to the landmark). Touches at most `O(window)` levels, each
    /// with a single threshold comparison.
    pub fn update(&mut self, t_i: impl Into<Timestamp>, value: u64) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.landmark);
        let ln_w = self.g.ln_g(t_i - self.landmark);
        if ln_w == f64::NEG_INFINITY {
            return;
        }
        self.n += 1;
        self.window = self.window.max(self.target_window());
        let level = self.level_of(ln_w);
        let max_level = self.levels.keys().next_back().copied().unwrap_or(level);
        let new_max = max_level.max(level);
        let floor_level = new_max - self.window + 1;
        // Drop levels that fell out of the window.
        while let Some((&lo, _)) = self.levels.iter().next() {
            if lo < floor_level {
                self.levels.remove(&lo);
            } else {
                break;
            }
        }
        if level < floor_level {
            return; // too light to matter
        }
        let h = self.hasher.hash(value);
        for j in floor_level..=level {
            self.levels
                .entry(j)
                .or_insert_with(|| Kmv::new(self.k))
                .offer(h);
        }
    }

    /// The estimated decayed distinct count `D` at query time `t`.
    pub fn query(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        if self.levels.is_empty() {
            return 0.0;
        }
        // D̂ = Σ_j (b^j − b^{j−1}) d̂_j  +  b^{j_min − 1} · d̂_{j_min},
        // accumulated in the log domain. The telescoped sum reconstructs
        // Σ_v b^{ℓ_v} ∈ [D/b, D]; multiply by √b to center the bias.
        let mut ls = LogSum::new();
        let ln_step = (1.0 - (-self.ln_base).exp()).ln(); // ln(1 − 1/b)
        let j_min = *self.levels.keys().next().expect("non-empty");
        for (&j, kmv) in &self.levels {
            let d = kmv.estimate();
            if d > 0.0 {
                ls.add_ln(j as f64 * self.ln_base + ln_step + d.ln());
            }
        }
        let d_min = self.levels[&j_min].estimate();
        if d_min > 0.0 {
            ls.add_ln((j_min - 1) as f64 * self.ln_base + d_min.ln());
        }
        (ls.ln() + 0.5 * self.ln_base - self.g.ln_g(t - self.landmark)).exp()
    }

    /// Number of live levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels.values().map(Kmv::size_bytes).sum::<usize>()
            + self.levels.len() * 16
            + std::mem::size_of::<Self>()
    }
}

impl<G: ForwardDecay> Mergeable for DominanceSketch<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.landmark, other.landmark, "landmarks must match");
        assert_eq!(self.k, other.k, "sketch sizes must match");
        assert!(
            (self.ln_base - other.ln_base).abs() < 1e-12,
            "level bases must match"
        );
        assert_eq!(
            self.hasher, other.hasher,
            "hash seeds must match for a mergeable pair"
        );
        self.n += other.n;
        self.window = self.window.max(other.window).max(self.target_window());
        for (&j, kmv) in &other.levels {
            match self.levels.get_mut(&j) {
                Some(mine) => mine.merge_from(kmv),
                None => {
                    self.levels.insert(j, kmv.clone());
                }
            }
        }
        // Re-trim to the merged window.
        if let Some(&max_level) = self.levels.keys().next_back() {
            let floor_level = max_level - self.window + 1;
            let drop: Vec<i64> = self
                .levels
                .keys()
                .copied()
                .filter(|&j| j < floor_level)
                .collect();
            for j in drop {
                self.levels.remove(&j);
            }
        }
    }
}

// ----- unified Summary API ------------------------------------------------

use crate::summary::Summary;

impl<G: ForwardDecay> ExactDominance<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }
}

impl<G: ForwardDecay> Summary for ExactDominance<G> {
    type Update = u64;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark
    }

    fn update_at(&mut self, t_i: Timestamp, value: u64) {
        self.update(t_i, value);
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.query(t)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // One max-weight entry per distinct value; every stored log-weight
        // is a real number (NEG_INFINITY is filtered at ingestion).
        for (&v, &ln_w) in &self.max_ln_w {
            if ln_w.is_nan() || ln_w == f64::NEG_INFINITY {
                return Err(format!(
                    "ExactDominance stored invalid ln-weight {ln_w} for {v}"
                ));
            }
        }
        Ok(())
    }
}

impl<G: ForwardDecay> DominanceSketch<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }
}

impl<G: ForwardDecay> Summary for DominanceSketch<G> {
    type Update = u64;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark
    }

    fn update_at(&mut self, t_i: Timestamp, value: u64) {
        self.update(t_i, value);
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.query(t)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Live levels must fit inside the trimming window.
        if let (Some(&lo), Some(&hi)) = (self.levels.keys().next(), self.levels.keys().next_back())
        {
            if hi - lo + 1 > self.window {
                return Err(format!(
                    "DominanceSketch spans {} levels, window is {}",
                    hi - lo + 1,
                    self.window
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, Monomial, NoDecay};

    #[test]
    fn kmv_exact_when_underfull() {
        let mut kmv = Kmv::new(64);
        let h = SeededHash::new(1);
        for v in 0..40u64 {
            kmv.offer(h.hash(v));
            kmv.offer(h.hash(v)); // duplicates must not double count
        }
        assert_eq!(kmv.estimate(), 40.0);
    }

    #[test]
    fn kmv_estimate_within_error() {
        let k = 256;
        let mut kmv = Kmv::new(k);
        let h = SeededHash::new(7);
        let n = 100_000u64;
        for v in 0..n {
            kmv.offer(h.hash(v));
        }
        let est = kmv.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 4.0 / (k as f64).sqrt(), "relative error {rel}");
    }

    #[test]
    fn kmv_merge_equals_union() {
        let mut a = Kmv::new(128);
        let mut b = Kmv::new(128);
        let h = SeededHash::new(3);
        for v in 0..30_000u64 {
            if v % 2 == 0 {
                a.offer(h.hash(v));
            } else {
                b.offer(h.hash(v));
            }
        }
        let mut whole = Kmv::new(128);
        for v in 0..30_000u64 {
            whole.offer(h.hash(v));
        }
        a.merge_from(&b);
        assert_eq!(a.threshold(), whole.threshold());
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn exact_dominance_matches_brute_force() {
        let g = Monomial::quadratic();
        let landmark = 0.0;
        let mut d = ExactDominance::new(g, landmark);
        let items = [(1.0, 10u64), (2.0, 20), (3.0, 10), (4.0, 30), (2.5, 30)];
        for &(t, v) in &items {
            d.update(t, v);
        }
        let t_q = 5.0;
        // max weights: v=10 at t=3, v=20 at t=2, v=30 at t=4.
        let expected = (g.weight(landmark, 3.0, t_q))
            + (g.weight(landmark, 2.0, t_q))
            + (g.weight(landmark, 4.0, t_q));
        assert!((d.query(t_q) - expected).abs() < 1e-9);
        assert_eq!(d.distinct_values(), 3);
    }

    #[test]
    fn exact_dominance_no_decay_counts_distinct() {
        let mut d = ExactDominance::new(NoDecay, 0.0);
        for i in 0..1000u64 {
            d.update(i as f64 * 0.01, i % 77);
        }
        assert!((d.query(100.0) - 77.0).abs() < 1e-9);
    }

    #[test]
    fn exact_dominance_merge() {
        let g = Monomial::quadratic();
        let mut a = ExactDominance::new(g, 0.0);
        let mut b = ExactDominance::new(g, 0.0);
        let mut whole = ExactDominance::new(g, 0.0);
        for i in 0..500u64 {
            let (t, v) = (1.0 + i as f64 * 0.01, i % 50);
            whole.update(t, v);
            if i % 2 == 0 {
                a.update(t, v)
            } else {
                b.update(t, v)
            }
        }
        a.merge_from(&b);
        assert!((a.query(10.0) - whole.query(10.0)).abs() < 1e-9);
    }

    #[test]
    fn sketch_tracks_exact_under_polynomial_decay() {
        let g = Monomial::quadratic();
        let landmark = 0.0;
        let eps = 0.15;
        let mut sketch = DominanceSketch::new(g, landmark, eps, 99);
        let mut exact = ExactDominance::new(g, landmark);
        // 2000 distinct values, each appearing several times at different
        // moments.
        for i in 0..30_000u64 {
            let t = 1.0 + (i as f64) * 0.001;
            let v = i % 2000;
            sketch.update(t, v);
            exact.update(t, v);
        }
        let t_q = 32.0;
        let (e, s) = (exact.query(t_q), sketch.query(t_q));
        let rel = (s - e).abs() / e;
        assert!(
            rel < 3.0 * eps,
            "relative error {rel}: exact {e}, sketch {s}"
        );
    }

    #[test]
    fn sketch_tracks_exact_under_exponential_decay() {
        let g = Exponential::new(0.05);
        let landmark = 0.0;
        let eps = 0.15;
        let mut sketch = DominanceSketch::new(g, landmark, eps, 5);
        let mut exact = ExactDominance::new(g, landmark);
        for i in 0..20_000u64 {
            let t = (i as f64) * 0.01; // through t = 200: weights span e^10
            let v = (i * 13) % 997;
            sketch.update(t, v);
            exact.update(t, v);
        }
        let t_q = 200.0;
        let (e, s) = (exact.query(t_q), sketch.query(t_q));
        let rel = (s - e).abs() / e;
        assert!(
            rel < 3.0 * eps,
            "relative error {rel}: exact {e}, sketch {s}"
        );
    }

    #[test]
    fn sketch_survives_weights_beyond_f64_range() {
        // α·t reaches 5000 ≫ ln(f64::MAX) ≈ 709: only the log domain works.
        let g = Exponential::new(1.0);
        let mut sketch = DominanceSketch::new(g, 0.0, 0.2, 1);
        let mut exact = ExactDominance::new(g, 0.0);
        for i in 0..5_000u64 {
            let t = i as f64;
            sketch.update(t, i % 100);
            exact.update(t, i % 100);
        }
        let (e, s) = (exact.query(5_000.0), sketch.query(5_000.0));
        assert!(e.is_finite() && s.is_finite());
        let rel = (s - e).abs() / e;
        assert!(rel < 0.6, "relative error {rel}");
    }

    #[test]
    fn sketch_space_is_sublinear() {
        let g = NoDecay;
        let mut sketch = DominanceSketch::new(g, 0.0, 0.2, 4);
        for i in 0..200_000u64 {
            sketch.update(i as f64 * 1e-4, i); // all values distinct
        }
        // An exact structure would hold 200k entries ≈ 3 MB; the sketch must
        // stay far below that.
        assert!(
            sketch.size_bytes() < 400_000,
            "sketch uses {} bytes",
            sketch.size_bytes()
        );
        let est = sketch.query(20.0);
        let rel = (est - 200_000.0).abs() / 200_000.0;
        assert!(rel < 0.3, "relative error {rel}");
    }

    #[test]
    fn sketch_merge_tracks_exact() {
        let g = Monomial::quadratic();
        let eps = 0.15;
        let mut a = DominanceSketch::new(g, 0.0, eps, 21);
        let mut b = DominanceSketch::new(g, 0.0, eps, 21);
        let mut exact = ExactDominance::new(g, 0.0);
        for i in 0..20_000u64 {
            let t = 1.0 + i as f64 * 0.001;
            let v = (i * 31) % 1500;
            exact.update(t, v);
            if i % 2 == 0 {
                a.update(t, v)
            } else {
                b.update(t, v)
            }
        }
        a.merge_from(&b);
        let t_q = 25.0;
        let (e, s) = (exact.query(t_q), a.query(t_q));
        let rel = (s - e).abs() / e;
        assert!(
            rel < 3.0 * eps,
            "relative error {rel}: exact {e}, merged {s}"
        );
    }

    #[test]
    fn empty_sketches_answer_zero() {
        let g = Monomial::quadratic();
        assert_eq!(ExactDominance::new(g, 0.0).query(1.0), 0.0);
        assert_eq!(DominanceSketch::new(g, 0.0, 0.2, 0).query(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "hash seeds must match")]
    fn sketch_merge_rejects_different_seeds() {
        let g = NoDecay;
        let mut a = DominanceSketch::new(g, 0.0, 0.2, 1);
        let b = DominanceSketch::new(g, 0.0, 0.2, 2);
        a.merge_from(&b);
    }
}
