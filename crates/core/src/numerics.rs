//! Numerical machinery for forward decay (Section VI-A of the paper).
//!
//! The efficiency of forward decay comes from storing quantities built from
//! the *un-normalized* weights `g(t_i − L)` and scaling by `g(t − L)` only at
//! query time. For polynomial `g` these intermediates stay comfortably inside
//! `f64` range; for exponential `g(n) = exp(αn)` they grow without bound as
//! the stream ages. The paper's fix is **landmark renormalization**: because
//! exponential decay is invariant under the choice of landmark, all stored
//! values can be multiplied by `exp(−α(L′ − L))` to re-express them relative
//! to a fresh landmark `L′` — a linear pass over whatever data structure is in
//! use.
//!
//! This module provides two tools:
//!
//! - [`Renormalizer`], which watches the magnitude of stored `g` values and
//!   tells a summary when (and by how much) to rescale;
//! - [`LogSum`], a log-domain accumulator (`logsumexp`) used by the samplers,
//!   which never overflows regardless of `α` or stream length.

use crate::decay::ForwardDecay;
use crate::Timestamp;

/// Magnitude at which a summary should renormalize its stored `g` values.
///
/// `f64::MAX ≈ 1.8e308`; renormalizing at `1e150` leaves ~158 decimal orders
/// of headroom for sums of many terms and products taken during queries.
pub const RESCALE_THRESHOLD: f64 = 1e150;

/// Tracks the current *effective landmark* of a summary and decides when the
/// stored `g(t_i − L)` values must be rescaled to a newer landmark.
///
/// For decay functions that are not multiplicative (see
/// [`ForwardDecay::is_multiplicative`]) renormalization is unsound, and this
/// type never requests it; such functions (the polynomials) do not need it,
/// as their `g` values grow only polynomially in the stream age.
///
/// # Usage
///
/// ```
/// use fd_core::decay::{Exponential, ForwardDecay};
/// use fd_core::numerics::Renormalizer;
///
/// let g = Exponential::new(2.0);
/// let mut r = Renormalizer::new(0.0);
/// let mut acc = 0.0_f64; // Σ g(t_i − L_eff)
/// for i in 0..1000 {
///     let t = i as f64;
///     if let Some(rescale) = r.pre_update(&g, t) {
///         acc *= rescale; // the linear pass from Section VI-A
///     }
///     acc += g.g(t - r.landmark());
/// }
/// // Query at t = 1000: scale by g(t − L_eff) exactly as with the original L.
/// let decayed_count = acc / g.g(1000.0 - r.landmark());
/// assert!(decayed_count.is_finite() && decayed_count > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Renormalizer {
    /// The landmark all stored values are currently relative to.
    landmark: Timestamp,
    /// The original landmark, preserved for reporting.
    original: Timestamp,
    /// How many rescale events this renormalizer has requested.
    rescales: u64,
}

impl Renormalizer {
    /// Creates a renormalizer with the given initial landmark.
    pub fn new(landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            landmark,
            original: landmark,
            rescales: 0,
        }
    }

    /// The current effective landmark. Use this (not the original landmark)
    /// when computing `g(t_i − L)` for new arrivals and `g(t − L)` at query
    /// time.
    #[inline]
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }

    /// The landmark the summary was created with.
    #[inline]
    pub fn original_landmark(&self) -> Timestamp {
        self.original
    }

    /// How many rescale events ([`pre_update`](Self::pre_update) or
    /// [`rescale_to`](Self::rescale_to) returning `Some`) have occurred —
    /// each one is a linear pass over the owning summary's state, so this is
    /// the cost signal the telemetry layer surfaces.
    #[inline]
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// Call before ingesting an item with timestamp `t`. If the stored values
    /// need rescaling, advances the effective landmark to `t` and returns the
    /// factor `g(L − L′)⁻¹`-equivalent, i.e. the value every stored `g`-based
    /// quantity must be **multiplied by**. Returns `None` when no rescale is
    /// needed.
    #[inline]
    pub fn pre_update<G: ForwardDecay>(&mut self, g: &G, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        if !g.is_multiplicative() {
            return None;
        }
        let n = t - self.landmark;
        if n <= 0.0 || g.ln_g(n) < RESCALE_THRESHOLD.ln() {
            return None;
        }
        // Rescale so the newest item has g-value g(0)… but for exponential g,
        // g(0) = 1 and g(t_i − L′) = g(t_i − L) · exp(−α (L′ − L)).
        // Multiplicative g means g(a + b) = g(a) · g(b), so the factor is
        // 1 / g(L′ − L) — computed in the log domain, because after a long
        // idle gap g(n) itself overflows to +∞ and `1.0 / g(n)` would be
        // exactly 0.0, destroying every stored quantity it multiplies.
        let factor = (-g.ln_g(n)).exp();
        self.landmark = t;
        self.rescales += 1;
        Some(factor)
    }

    /// Forces the effective landmark to `new_landmark` (which must not
    /// precede the current one) and returns the multiplicative rescale factor
    /// for stored values, or `None` for non-multiplicative decay functions.
    pub fn rescale_to<G: ForwardDecay>(
        &mut self,
        g: &G,
        new_landmark: impl Into<Timestamp>,
    ) -> Option<f64> {
        let new_landmark = new_landmark.into();
        if !g.is_multiplicative() || new_landmark <= self.landmark {
            return None;
        }
        // Log domain for the same overflow reason as in `pre_update`.
        let factor = (-g.ln_g(new_landmark - self.landmark)).exp();
        self.landmark = new_landmark;
        self.rescales += 1;
        Some(factor)
    }
}

/// The factor that re-expresses a quantity stored relative to landmark
/// `from` in terms of the newer landmark `to ≥ from`, for a multiplicative
/// decay function: `1 / g(to − from)`, computed in the log domain.
///
/// Merge and restore paths use this to align two summaries whose effective
/// landmarks drifted apart — one shard renormalized (or was restored from a
/// checkpoint taken after renormalization) while the other did not. The
/// naïve linear-domain `1.0 / g.g(to - from)` overflows to `1/∞ = 0.0` once
/// the gap exceeds ≈ `709/α` seconds for `g(n) = exp(αn)`, silently zeroing
/// the older side's mass and tripping the sketches' `scale_all` sanity
/// asserts. The log-domain form degrades gradually through the subnormal
/// range instead; a gap so wide that even subnormals cannot express the
/// factor (≈ `745/α` seconds) yields `0.0`, which at that point *is* the
/// correctly rounded value — the older mass is below `f64` resolution
/// relative to the newer landmark.
///
/// For non-multiplicative `g` landmark shifting is unsound; callers must
/// not shift landmarks for those functions (their renormalizers never
/// advance, so the gap is always zero).
#[inline]
pub fn landmark_shift_factor<G: ForwardDecay>(
    g: &G,
    from: impl Into<Timestamp>,
    to: impl Into<Timestamp>,
) -> f64 {
    let (from, to) = (from.into(), to.into());
    debug_assert!(to >= from, "landmark shift target precedes source");
    if to <= from {
        return 1.0;
    }
    (-g.ln_g(to - from)).exp()
}

/// A log-domain accumulator: maintains `ln Σ exp(xᵢ)` without ever leaving
/// the representable range of `f64`.
///
/// Used by the samplers, whose acceptance probabilities are ratios
/// `g(t_i − L) / Σ g(t_j − L)`; with exponential decay and long streams both
/// numerator and denominator overflow long before the ratio does.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogSum {
    /// `ln` of the running sum; `-∞` for an empty sum.
    ln_total: f64,
}

impl Default for LogSum {
    fn default() -> Self {
        Self::new()
    }
}

impl LogSum {
    /// An empty sum (`ln 0 = −∞`).
    pub fn new() -> Self {
        Self {
            ln_total: f64::NEG_INFINITY,
        }
    }

    /// Adds a term given by its natural logarithm.
    ///
    /// A NaN term is ignored: the accumulator backs sampler weight totals,
    /// and before this guard a single NaN (both branch comparisons false)
    /// poisoned the running sum permanently. `+∞` saturates the sum instead
    /// of producing `∞ − ∞ = NaN` in the rebalancing arithmetic.
    #[inline]
    pub fn add_ln(&mut self, ln_x: f64) {
        if ln_x.is_nan() || ln_x == f64::NEG_INFINITY {
            return;
        }
        if ln_x == f64::INFINITY || self.ln_total == f64::INFINITY {
            self.ln_total = f64::INFINITY;
        } else if self.ln_total == f64::NEG_INFINITY {
            self.ln_total = ln_x;
        } else if ln_x > self.ln_total {
            self.ln_total = ln_x + (self.ln_total - ln_x).exp().ln_1p();
        } else {
            self.ln_total += (ln_x - self.ln_total).exp().ln_1p();
        }
    }

    /// `ln` of the current sum (`−∞` if empty).
    #[inline]
    pub fn ln(&self) -> f64 {
        self.ln_total
    }

    /// The current sum itself; may be `+∞` if it exceeds `f64` range.
    #[inline]
    pub fn value(&self) -> f64 {
        self.ln_total.exp()
    }

    /// True if no terms have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ln_total == f64::NEG_INFINITY
    }

    /// Merges another log-sum into this one (sum of the two sums).
    #[inline]
    pub fn merge(&mut self, other: &LogSum) {
        self.add_ln(other.ln_total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, Monomial};

    #[test]
    fn logsum_matches_direct_sum_for_small_values() {
        let xs: [f64; 5] = [0.5, 1.5, 2.0, 0.1, 3.3];
        let mut ls = LogSum::new();
        for &x in &xs {
            ls.add_ln(x.ln());
        }
        let direct: f64 = xs.iter().sum();
        assert!((ls.value() - direct).abs() < 1e-9);
    }

    #[test]
    fn logsum_handles_huge_terms() {
        let mut ls = LogSum::new();
        ls.add_ln(1000.0); // e^1000 — far beyond f64 range
        ls.add_ln(1001.0);
        ls.add_ln(999.0);
        // ln(e^1000 + e^1001 + e^999) = 1001 + ln(1 + e^-1 + e^-2)
        let expected = 1001.0 + (1.0 + (-1.0f64).exp() + (-2.0f64).exp()).ln();
        assert!((ls.ln() - expected).abs() < 1e-9);
    }

    #[test]
    fn logsum_empty_and_neg_infinity() {
        let mut ls = LogSum::new();
        assert!(ls.is_empty());
        assert_eq!(ls.value(), 0.0);
        ls.add_ln(f64::NEG_INFINITY); // adding zero changes nothing
        assert!(ls.is_empty());
        ls.add_ln(0.0); // add 1
        assert!(!ls.is_empty());
        assert!((ls.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn logsum_merge_equals_concat() {
        let mut a = LogSum::new();
        let mut b = LogSum::new();
        let mut all = LogSum::new();
        for i in 0..10 {
            let x = (i as f64) * 0.7 - 2.0;
            if i % 2 == 0 {
                a.add_ln(x);
            } else {
                b.add_ln(x);
            }
            all.add_ln(x);
        }
        a.merge(&b);
        assert!((a.ln() - all.ln()).abs() < 1e-9);
    }

    #[test]
    fn renormalizer_keeps_exponential_sums_finite() {
        // α = 1, items every second for 2000 seconds: g(2000) = e^2000
        // overflows f64 (max ~e^709) without renormalization.
        let g = Exponential::new(1.0);
        let mut r = Renormalizer::new(0.0);
        let mut acc = 0.0_f64;
        let mut rescales = 0;
        for i in 0..=2000 {
            let t = i as f64;
            if let Some(f) = r.pre_update(&g, t) {
                acc *= f;
                rescales += 1;
            }
            acc += g.g(t - r.landmark());
            assert!(acc.is_finite(), "overflow at t = {t}");
        }
        assert!(rescales >= 4, "expected several rescales, got {rescales}");
        // Decayed count at t = 2000 with α = 1: Σ e^{-(2000-i)} ≈ 1/(1-e^{-1}).
        let decayed = acc / g.g(2000.0 - r.landmark());
        let expected = 1.0 / (1.0 - (-1.0f64).exp());
        assert!((decayed - expected).abs() < 1e-9, "decayed = {decayed}");
    }

    #[test]
    fn renormalizer_is_inert_for_polynomials() {
        let g = Monomial::new(2.0);
        let mut r = Renormalizer::new(0.0);
        assert_eq!(r.pre_update(&g, 1e200), None);
        assert_eq!(r.landmark(), 0.0);
        assert_eq!(r.rescale_to(&g, 50.0), None);
    }

    #[test]
    fn renormalizer_rescale_to_is_exact() {
        let g = Exponential::new(0.5);
        let mut r = Renormalizer::new(10.0);
        let t_i = 30.0;
        let before = g.g(t_i - r.landmark());
        let factor = r.rescale_to(&g, 20.0).unwrap();
        let after = g.g(t_i - r.landmark());
        assert!((before * factor - after).abs() / after < 1e-12);
        assert_eq!(r.landmark(), 20.0);
        assert_eq!(r.original_landmark(), 10.0);
    }

    #[test]
    fn renormalizer_survives_overflow_gap() {
        // Regression: with α = 1 a 720 s idle gap gives g(720) = e^720 = +∞
        // in f64, so the old `1.0 / g(n)` factor was exactly 0.0 and one
        // rescale zeroed all stored state. The log-domain factor e^{-720}
        // is subnormal but strictly positive.
        let g = Exponential::new(1.0);
        let mut r = Renormalizer::new(0.0);
        let mut acc = g.g(0.0); // one item at t = 0
        let f = r.pre_update(&g, 720.0).expect("gap must trigger a rescale");
        assert!(f > 0.0, "rescale factor collapsed to 0.0");
        assert_eq!(f, (-720.0f64).exp());
        acc *= f;
        assert!(acc > 0.0, "stored state was zeroed by the rescale");
        acc += g.g(720.0 - r.landmark()); // second item, at t = 720
                                          // Decayed count at t = 720 is e^{-720} + 1 ≈ 1: correct and non-zero.
        let decayed = acc / g.g(720.0 - r.landmark());
        assert!(decayed.is_finite() && decayed >= 1.0, "decayed = {decayed}");
        assert_eq!(r.rescales(), 1);

        // `rescale_to` across the same kind of gap must not zero either.
        let mut r2 = Renormalizer::new(0.0);
        let f2 = r2.rescale_to(&g, 800.0).unwrap();
        assert!(f2 >= 0.0 && !f2.is_nan());
        assert_eq!(f2, (-800.0f64).exp());
        assert_eq!(r2.rescales(), 1);
    }

    #[test]
    fn renormalizer_counts_rescales() {
        let g = Exponential::new(1.0);
        let mut r = Renormalizer::new(0.0);
        assert_eq!(r.rescales(), 0);
        for i in 0..=2000 {
            r.pre_update(&g, i as f64);
        }
        assert!(r.rescales() >= 4, "rescales = {}", r.rescales());
        let inert = Renormalizer::new(0.0);
        assert_eq!(inert.rescales(), 0);
    }

    #[test]
    fn logsum_ignores_nan_and_saturates_at_infinity() {
        // NaN into an empty sum leaves it empty.
        let mut ls = LogSum::new();
        ls.add_ln(f64::NAN);
        assert!(ls.is_empty());

        // NaN into a non-empty sum leaves it unchanged (it used to poison
        // the accumulator forever: both branch comparisons were false).
        ls.add_ln(0.0); // add 1
        ls.add_ln(f64::NAN);
        assert_eq!(ls.ln(), 0.0);

        // A subnormal-scale term (ln 5e-324 ≈ −744.4) is absorbed without
        // disturbing the total.
        ls.add_ln(-745.0);
        assert!(ls.ln().is_finite() && ls.ln() >= 0.0);

        // +∞ saturates rather than producing (∞ − ∞) = NaN…
        ls.add_ln(f64::INFINITY);
        assert_eq!(ls.ln(), f64::INFINITY);
        ls.add_ln(f64::INFINITY); // …twice stays saturated, not NaN
        assert_eq!(ls.ln(), f64::INFINITY);
        ls.add_ln(0.0);
        assert_eq!(ls.ln(), f64::INFINITY);
        ls.add_ln(f64::NAN); // NaN still ignored at saturation
        assert_eq!(ls.ln(), f64::INFINITY);
    }

    #[test]
    fn landmark_shift_factor_matches_linear_domain_when_finite() {
        let g = Exponential::new(0.5);
        let f = landmark_shift_factor(&g, 10.0, 30.0);
        assert!((f - 1.0 / g.g(20.0)).abs() / f < 1e-12);
        // Zero gap (and reversed arguments in release builds) is the identity.
        assert_eq!(landmark_shift_factor(&g, 10.0, 10.0), 1.0);
    }

    #[test]
    fn landmark_shift_factor_survives_overflow_gap() {
        // α = 1, gap 720: g(720) = e^720 = +∞ in f64, so the linear-domain
        // factor 1/g(720) collapsed to exactly 0.0. The log-domain factor is
        // the subnormal e^{-720} > 0.
        let g = Exponential::new(1.0);
        let f = landmark_shift_factor(&g, 0.0, 720.0);
        assert!(f > 0.0, "factor collapsed to 0.0 across an overflow gap");
        assert_eq!(f, (-720.0f64).exp());
        // Past the subnormal range (gap ≳ 745) the factor rounds to 0.0 —
        // honest rounding, not a collapse: the old mass is below resolution.
        let f2 = landmark_shift_factor(&g, 0.0, 2000.0);
        assert_eq!(f2, 0.0);
        assert!(!f2.is_nan());
    }

    #[test]
    fn renormalizer_ignores_backward_time() {
        let g = Exponential::new(1.0);
        let mut r = Renormalizer::new(100.0);
        assert_eq!(r.pre_update(&g, 50.0), None);
        assert_eq!(r.rescale_to(&g, 50.0), None);
        assert_eq!(r.landmark(), 100.0);
    }
}
