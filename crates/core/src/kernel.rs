//! Batched weight evaluation with per-tick memoization.
//!
//! Every forward-decayed summary spends its per-update budget on one
//! evaluation of `g(t_i − L)` (or `ln g` for the samplers). For the
//! polynomial families that is a `powf`, for exponential decay an `exp` —
//! tens of cycles per tuple, dominating the arithmetic around it
//! (`BENCH_shard.json`: fwd poly 40.9 ns/tuple vs 32.2 undecayed).
//!
//! Two observations make most of that cost avoidable on real streams:
//!
//! 1. **Timestamps repeat.** Packet feeds quantize arrival times to a
//!    clock tick (the fig2 trace stamps 100k pkt/s on microsecond ticks;
//!    coarser feeds — NetFlow, millisecond loggers — repeat far more), so
//!    consecutive updates to a summary frequently carry the *same* age
//!    `n = t_i − L`. A one-entry tick cache turns every repeat into a
//!    compare and a load.
//! 2. **Batches share the renormalization decision.** Whether an update
//!    must rescale the summary first
//!    ([`Renormalizer::pre_update`](crate::numerics::Renormalizer::pre_update))
//!    depends
//!    only on the decay family and the largest age in flight — so a batch
//!    can hoist that check out of the inner loop entirely (see the
//!    `update_batch` methods on the summaries) and leave a bare
//!    multiply-accumulate loop the compiler can vectorize.
//!
//! [`WeightKernel`] packages observation 1: it wraps a [`ForwardDecay`] and
//! memoizes the last distinct age seen, separately for `g` and `ln_g`.
//! For decay functions whose evaluation is already a couple of arithmetic
//! ops ([`NoDecay`](crate::decay::NoDecay), the quadratic
//! [`Monomial`](crate::decay::Monomial) fast path, …) the cache would cost
//! more than it saves; [`ForwardDecay::prefers_tick_cache`] lets each
//! family opt out, and the kernel then degenerates to a plain call.
//!
//! ```
//! use fd_core::kernel::WeightKernel;
//! use fd_core::decay::Exponential;
//!
//! let mut k = WeightKernel::new(Exponential::new(0.5));
//! let ages = [1.0, 1.0, 1.0, 2.0, 2.0]; // duplicated ticks
//! let mut out = Vec::new();
//! k.g_into(&ages, &mut out);
//! assert_eq!(out.len(), 5);
//! assert_eq!(k.misses(), 2); // only two distinct ages were evaluated
//! ```

use crate::decay::ForwardDecay;
use crate::Timestamp;

/// Evaluates `g` / `ln_g` over ages with a one-entry per-tick memo.
///
/// The memo key is the age itself (`f64` equality, so a `NaN` age never
/// hits and is simply recomputed). `g` and `ln_g` keep independent entries
/// because callers rarely need both for the same age.
///
/// Cache effectiveness is observable via [`hits`](Self::hits) /
/// [`misses`](Self::misses) — the `hotpath` bench reports the measured hit
/// rate per workload.
#[derive(Debug, Clone)]
pub struct WeightKernel<G: ForwardDecay> {
    g: G,
    /// Cached decision from [`ForwardDecay::prefers_tick_cache`]: when
    /// false, every call forwards straight to the decay function.
    memoize: bool,
    g_key: f64,
    g_val: f64,
    ln_key: f64,
    ln_val: f64,
    hits: u64,
    misses: u64,
}

impl<G: ForwardDecay> WeightKernel<G> {
    /// Wraps a decay function. The cache starts cold.
    pub fn new(g: G) -> Self {
        let memoize = g.prefers_tick_cache();
        Self {
            g,
            memoize,
            g_key: f64::NAN,
            g_val: 0.0,
            ln_key: f64::NAN,
            ln_val: 0.0,
            hits: 0,
            misses: 0,
        }
    }

    /// The wrapped decay function.
    pub fn decay(&self) -> &G {
        &self.g
    }

    /// `g(n)`, memoized on the last distinct age.
    #[inline]
    pub fn g(&mut self, n: f64) -> f64 {
        if !self.memoize {
            return self.g.g(n);
        }
        if n == self.g_key {
            self.hits += 1;
            return self.g_val;
        }
        self.misses += 1;
        let v = self.g.g(n);
        self.g_key = n;
        self.g_val = v;
        v
    }

    /// `ln g(n)`, memoized on the last distinct age.
    #[inline]
    pub fn ln_g(&mut self, n: f64) -> f64 {
        if !self.memoize {
            return self.g.ln_g(n);
        }
        if n == self.ln_key {
            self.hits += 1;
            return self.ln_val;
        }
        self.misses += 1;
        let v = self.g.ln_g(n);
        self.ln_key = n;
        self.ln_val = v;
        v
    }

    /// Evaluates `g` over a slice of ages into `out` (cleared first).
    pub fn g_into(&mut self, ages: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(ages.len());
        for &n in ages {
            out.push(self.g(n));
        }
    }

    /// Evaluates `ln_g` over a slice of ages into `out` (cleared first).
    pub fn ln_g_into(&mut self, ages: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(ages.len());
        for &n in ages {
            out.push(self.ln_g(n));
        }
    }

    /// `Σ g(n)` over a slice of ages, accumulated in slice order (so the
    /// result is bit-identical to the equivalent scalar loop).
    pub fn sum_g(&mut self, ages: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &n in ages {
            acc += self.g(n);
        }
        acc
    }

    /// Cache hits so far (always 0 when the family opts out of the cache).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. real `g`/`ln_g` evaluations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of memoized calls served from the cache, or 0.0 before any
    /// call.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Number of independent accumulators in the striped batch loops: enough
/// to hide the f64 add latency behind the multiply pipeline.
const LANES: usize = 4;

/// How many leading timestamps [`batch_ticks_repeat`] samples.
const TICK_PROBE: usize = 64;

/// Decides whether a batch's ticks repeat often enough for the per-tick
/// memo to pay for itself, by sampling adjacent equality over the first
/// `TICK_PROBE` (64) timestamps. Streams arrive (near) time-ordered, so items
/// sharing a tick sit next to each other and adjacent equality estimates
/// the one-entry cache's hit rate directly. Returns `true` when at least a
/// quarter of the sampled pairs repeat — below that, the memo's
/// compare-and-store overhead outweighs the saved `g` evaluations and the
/// striped loops win (measured in the `hotpath` bench: a ~5%-hit µs-tick
/// feed loses ~20% to the memo, a ~99%-hit ms-tick feed gains ~75%).
pub fn batch_ticks_repeat(ts: &[Timestamp]) -> bool {
    let probe = &ts[..ts.len().min(TICK_PROBE)];
    if probe.len() < 2 {
        return false;
    }
    let repeats = probe.windows(2).filter(|w| w[0] == w[1]).count();
    repeats * 4 >= probe.len() - 1
}

/// `Σ f(ts[i])` with `LANES` (4) independent partial sums, so consecutive
/// adds pipeline instead of serializing on one accumulator's latency. The
/// reassociation changes results by at most normal `f64` rounding. The
/// batch maximum rides along in the same pass — measurably cheaper than a
/// second sweep over the slice. `ts` must be non-empty, else the returned
/// maximum is meaningless (`i64::MIN` micros).
///
/// This is the engine room of [`ForwardDecay::g_sum_batch`]; decay
/// families call it with a closure already specialized on their runtime
/// parameters so the inner loop carries no invariant branches.
pub fn striped_sum(ts: &[Timestamp], f: impl Fn(Timestamp) -> f64) -> (f64, Timestamp) {
    let mut lanes = [0.0f64; LANES];
    let mut max_us = i64::MIN;
    let mut chunks = ts.chunks_exact(LANES);
    for c in &mut chunks {
        for j in 0..LANES {
            lanes[j] += f(c[j]);
            max_us = max_us.max(c[j].as_micros());
        }
    }
    for &t in chunks.remainder() {
        lanes[0] += f(t);
        max_us = max_us.max(t.as_micros());
    }
    (lanes.iter().sum(), Timestamp::from_micros(max_us))
}

/// `Σ f(ts[i]) · vals[i]`, striped like [`striped_sum`] and likewise
/// returning the batch maximum; `ts` must be non-empty and no longer than
/// `vals`.
pub fn striped_dot(
    ts: &[Timestamp],
    vals: &[f64],
    f: impl Fn(Timestamp) -> f64,
) -> (f64, Timestamp) {
    let mut lanes = [0.0f64; LANES];
    let mut max_us = i64::MIN;
    let mut tc = ts.chunks_exact(LANES);
    let mut vc = vals.chunks_exact(LANES);
    for (t4, v4) in (&mut tc).zip(&mut vc) {
        for j in 0..LANES {
            lanes[j] += f(t4[j]) * v4[j];
            max_us = max_us.max(t4[j].as_micros());
        }
    }
    for (&t, &v) in tc.remainder().iter().zip(vc.remainder()) {
        lanes[0] += f(t) * v;
        max_us = max_us.max(t.as_micros());
    }
    (lanes.iter().sum(), Timestamp::from_micros(max_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{AnyDecay, Exponential, LandmarkWindow, Monomial, NoDecay};

    #[test]
    fn kernel_matches_scalar_exactly() {
        fn check<G: ForwardDecay>(g: G) {
            let mut k = WeightKernel::new(g.clone());
            let ages = [0.0, 0.5, 0.5, 3.0, 3.0, 3.0, 0.5, 1e6, -1.0];
            for &n in &ages {
                assert_eq!(k.g(n).to_bits(), g.g(n).to_bits(), "g({n})");
                assert_eq!(k.ln_g(n).to_bits(), g.ln_g(n).to_bits(), "ln_g({n})");
            }
        }
        check(NoDecay);
        check(Monomial::quadratic());
        check(Monomial::new(1.7));
        check(Exponential::new(0.3));
        check(LandmarkWindow);
        check("poly:1.5".parse::<AnyDecay>().unwrap());
    }

    #[test]
    fn duplicated_ticks_hit_the_cache() {
        let mut k = WeightKernel::new(Monomial::new(1.5)); // powf: memoized
        for _ in 0..10 {
            k.g(7.0);
        }
        assert_eq!(k.misses(), 1);
        assert_eq!(k.hits(), 9);
        assert!(k.hit_rate() > 0.89);
    }

    #[test]
    fn cheap_families_bypass_the_cache() {
        let mut k = WeightKernel::new(NoDecay);
        for _ in 0..10 {
            k.g(7.0);
        }
        assert_eq!(k.hits() + k.misses(), 0, "no cache traffic for NoDecay");
    }

    #[test]
    fn g_and_ln_g_keep_independent_entries() {
        let mut k = WeightKernel::new(Exponential::new(0.1));
        k.g(1.0);
        k.ln_g(1.0); // ln entry is its own miss…
        k.ln_g(1.0); // …then hits
        assert_eq!(k.misses(), 2);
        assert_eq!(k.hits(), 1);
    }

    #[test]
    fn slice_eval_matches_scalar_loop() {
        let g = Exponential::new(0.25);
        let mut k = WeightKernel::new(g);
        let ages: Vec<f64> = (0..100).map(|i| (i / 7) as f64 * 0.5).collect();
        let mut out = Vec::new();
        k.g_into(&ages, &mut out);
        for (&n, &v) in ages.iter().zip(&out) {
            assert_eq!(v.to_bits(), g.g(n).to_bits());
        }
        assert_eq!(k.sum_g(&ages).to_bits(), {
            let mut acc = 0.0;
            for &n in &ages {
                acc += g.g(n);
            }
            acc.to_bits()
        });
    }

    #[test]
    fn nan_age_never_poisons_the_cache() {
        let mut k = WeightKernel::new(Monomial::new(1.5));
        let a = k.g(f64::NAN);
        let b = k.g(f64::NAN);
        assert!(a.is_nan() && b.is_nan());
        assert_eq!(k.hits(), 0, "NaN never compares equal to the memo key");
    }
}
