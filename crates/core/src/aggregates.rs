//! Constant-space decayed aggregates under forward decay (Section IV-A/B).
//!
//! Theorem 1 of the paper: *any summation of an arithmetic operation on
//! tuples that can be computed in constant space without decay can also be
//! computed in constant space under any forward decay function.* The trick is
//! uniform across this module: maintain sums of `g(t_i − L)`-weighted terms,
//! and divide by `g(t − L)` only when a query is posed at time `t`.
//!
//! All aggregates here are exact (no approximation), use O(1) space, take
//! O(1) time per update, are mergeable across distributed sites
//! ([`crate::merge::Mergeable`]), accept out-of-order arrivals, and survive
//! exponential decay on unboundedly long streams via landmark
//! renormalization ([`crate::numerics::Renormalizer`]).

use crate::decay::{clamp_to_landmark, ForwardDecay};
use crate::kernel::WeightKernel;
use crate::merge::Mergeable;
use crate::numerics::{landmark_shift_factor, Renormalizer};
use crate::Timestamp;

/// Decayed count (Definition 5): `C = Σ_i g(t_i − L) / g(t − L)`.
///
/// ```
/// use fd_core::aggregates::DecayedCount;
/// use fd_core::decay::Monomial;
///
/// let mut c = DecayedCount::new(Monomial::quadratic(), 100.0);
/// for t in [105.0, 107.0, 103.0, 108.0, 104.0] {
///     c.update(t);
/// }
/// assert!((c.query(110.0) - 1.63).abs() < 1e-9); // Example 2 of the paper
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedCount<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    /// Σ g(t_i − L_eff)
    acc: f64,
    /// Raw (undecayed) number of updates, for diagnostics.
    n: u64,
    max_t: Timestamp,
}

impl<G: ForwardDecay> DecayedCount<G> {
    /// Creates an empty decayed count with the given decay function and
    /// landmark.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            acc: 0.0,
            n: 0,
            max_t: landmark,
        }
    }

    /// Ingests an item with timestamp `t_i`. Pre-landmark timestamps are
    /// clamped to the landmark ([`clamp_to_landmark`]).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>) {
        let t_i = clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.acc *= factor;
        }
        self.acc += self.g.g(t_i - self.renorm.landmark());
        self.n += 1;
        self.max_t = self.max_t.max(t_i);
    }

    /// Ingests an item with timestamp `t_i` carrying an importance weight
    /// `w ≥ 0` — typically a Horvitz–Thompson inverse-inclusion-probability
    /// scale attached by load shedding. The item contributes
    /// `w · g(t_i − L)` to the accumulator, so `update_weighted(t, 1.0)`
    /// is exactly [`update`](Self::update) and a survivor admitted with
    /// probability `p` fed as `update_weighted(t, 1.0 / p)` keeps the
    /// decayed count unbiased (the weight multiplies the *frozen numerator*,
    /// so mergeability and renormalization are untouched).
    #[inline]
    pub fn update_weighted(&mut self, t_i: impl Into<Timestamp>, w: f64) {
        let t_i = clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.acc *= factor;
        }
        self.acc += self.g.g(t_i - self.renorm.landmark()) * w;
        self.n += 1;
        self.max_t = self.max_t.max(t_i);
    }

    /// Ingests a batch of timestamps in one call.
    ///
    /// Computes the same count as per-item [`update`](Self::update) calls,
    /// but hoists the renormalization check out of the inner loop (one
    /// [`Renormalizer::pre_update`] against the batch maximum instead of
    /// one per item) and evaluates weights through a [`WeightKernel`]
    /// (per-tick memoization) or striped partial sums. The memo is used
    /// only when the family prefers it *and* the batch's ticks actually
    /// repeat ([`crate::kernel::batch_ticks_repeat`] samples the batch);
    /// otherwise the striped loop wins. Results agree with the scalar path
    /// up to `f64`
    /// rounding: the identical weights are summed, possibly reassociated,
    /// and exponential decay may renormalize once (to the batch maximum)
    /// where the scalar path renormalizes stepwise.
    ///
    /// Multiplicative families find the batch maximum up front (the
    /// renormalization check must see it before any weight is computed,
    /// since a rescale moves the landmark); for everything else the
    /// landmark cannot move mid-batch, so the maximum rides along in the
    /// weight pass and the slice is swept exactly once.
    pub fn update_batch(&mut self, ts: &[Timestamp]) {
        if ts.is_empty() {
            return;
        }
        let max_t = if self.g.is_multiplicative() {
            let &max_t = ts.iter().max().expect("batch is non-empty");
            if let Some(factor) = self.renorm.pre_update(&self.g, max_t) {
                self.acc *= factor;
            }
            // Clamp pre-landmark stragglers against the *original* landmark
            // (the effective landmark `l` only ever advances past it), so
            // the batched weights match the scalar path exactly.
            let l0 = self.renorm.original_landmark();
            let l = self.renorm.landmark();
            if self.g.prefers_tick_cache() && crate::kernel::batch_ticks_repeat(ts) {
                let mut k = WeightKernel::new(self.g.clone());
                let mut acc = 0.0;
                for &t in ts {
                    acc += k.g(clamp_to_landmark(t, l0) - l);
                }
                self.acc += acc;
            } else {
                self.acc +=
                    crate::kernel::striped_sum(ts, |t| self.g.g(clamp_to_landmark(t, l0) - l)).0;
            }
            max_t
        } else {
            // Non-multiplicative families clamp intrinsically (`g(n ≤ 0)`
            // equals `g(0)` for Monomial / LandmarkWindow / PolySum), so the
            // unswitched `g_sum_batch` overrides stay on this path.
            let l = self.renorm.landmark();
            if self.g.prefers_tick_cache() && crate::kernel::batch_ticks_repeat(ts) {
                let mut k = WeightKernel::new(self.g.clone());
                let mut acc = 0.0;
                let mut max_us = i64::MIN;
                for &t in ts {
                    acc += k.g(t - l);
                    max_us = max_us.max(t.as_micros());
                }
                self.acc += acc;
                Timestamp::from_micros(max_us)
            } else {
                let (sum, max_t) = self.g.g_sum_batch(ts, l);
                self.acc += sum;
                max_t
            }
        };
        self.n += ts.len() as u64;
        self.max_t = self.max_t.max(max_t);
    }

    /// The decayed count at query time `t`. `t` should be at least the
    /// largest timestamp observed, else some weights exceed 1 (Section VI-B
    /// permits this for "historical" queries).
    #[inline]
    pub fn query(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        if self.acc == 0.0 {
            return 0.0;
        }
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            return 0.0;
        }
        self.acc / denom
    }

    /// Number of raw updates ingested.
    pub fn raw_count(&self) -> u64 {
        self.n
    }

    /// The largest timestamp observed so far.
    pub fn max_timestamp(&self) -> Timestamp {
        self.max_t
    }

    /// The decay function.
    pub fn decay(&self) -> &G {
        &self.g
    }

    /// Internal un-normalized accumulator `Σ g(t_i − L_eff)` together with
    /// the effective landmark. Exposed for the sketch wrappers.
    pub fn raw_parts(&self) -> (f64, Timestamp) {
        (self.acc, self.renorm.landmark())
    }
}

impl<G: ForwardDecay> Mergeable for DecayedCount<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        // Align effective landmarks: rescale whichever is older.
        let (mut other_acc, other_lm) = (other.acc, other.renorm.landmark());
        if other_lm < self.renorm.landmark() {
            // Express other's accumulator relative to our landmark, in the
            // log domain: the linear `1/g(ΔL)` collapses to 0.0 once the
            // landmark gap overflows g (≈ 709/α s for exponential decay).
            other_acc *= landmark_shift_factor(&self.g, other_lm, self.renorm.landmark());
        } else if other_lm > self.renorm.landmark() {
            if let Some(f) = self.renorm.rescale_to(&self.g, other_lm) {
                self.acc *= f;
            }
        }
        self.acc += other_acc;
        self.n += other.n;
        self.max_t = self.max_t.max(other.max_t);
    }
}

/// Decayed sum (Definition 5): `S = Σ_i g(t_i − L) · v_i / g(t − L)`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedSum<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    /// Σ g(t_i − L_eff) · v_i
    acc: f64,
    n: u64,
    max_t: Timestamp,
}

impl<G: ForwardDecay> DecayedSum<G> {
    /// Creates an empty decayed sum.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            acc: 0.0,
            n: 0,
            max_t: landmark,
        }
    }

    /// Ingests an item `(t_i, v_i)`. Pre-landmark timestamps are clamped to
    /// the landmark ([`clamp_to_landmark`]).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, v: f64) {
        let t_i = clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.acc *= factor;
        }
        self.acc += self.g.g(t_i - self.renorm.landmark()) * v;
        self.n += 1;
        self.max_t = self.max_t.max(t_i);
    }

    /// Ingests an item `(t_i, v_i)` carrying a Horvitz–Thompson scale `w`:
    /// contributes `w · g(t_i − L) · v_i`, i.e. exactly
    /// [`update`](Self::update)`(t_i, v * w)`. See
    /// [`DecayedCount::update_weighted`].
    #[inline]
    pub fn update_weighted(&mut self, t_i: impl Into<Timestamp>, v: f64, w: f64) {
        self.update(t_i, v * w);
    }

    /// Ingests a columnar batch: `ts[i]` pairs with `vals[i]`.
    ///
    /// The batched counterpart of per-item [`update`](Self::update) calls,
    /// with the renormalization check hoisted to one
    /// [`Renormalizer::pre_update`] per batch and the weight loop run
    /// through a [`WeightKernel`] or striped partial sums (see
    /// [`DecayedCount::update_batch`] for the rounding caveats).
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    pub fn update_batch(&mut self, ts: &[Timestamp], vals: &[f64]) {
        assert_eq!(ts.len(), vals.len(), "columnar batch slices must align");
        if ts.is_empty() {
            return;
        }
        let max_t = if self.g.is_multiplicative() {
            let &max_t = ts.iter().max().expect("batch is non-empty");
            if let Some(factor) = self.renorm.pre_update(&self.g, max_t) {
                self.acc *= factor;
            }
            // Clamp against the original landmark, as in the scalar path.
            let l0 = self.renorm.original_landmark();
            let l = self.renorm.landmark();
            if self.g.prefers_tick_cache() && crate::kernel::batch_ticks_repeat(ts) {
                let mut k = WeightKernel::new(self.g.clone());
                let mut acc = 0.0;
                for (&t, &v) in ts.iter().zip(vals) {
                    acc += k.g(clamp_to_landmark(t, l0) - l) * v;
                }
                self.acc += acc;
            } else {
                self.acc += crate::kernel::striped_dot(ts, vals, |t| {
                    self.g.g(clamp_to_landmark(t, l0) - l)
                })
                .0;
            }
            max_t
        } else {
            let l = self.renorm.landmark();
            if self.g.prefers_tick_cache() && crate::kernel::batch_ticks_repeat(ts) {
                let mut k = WeightKernel::new(self.g.clone());
                let mut acc = 0.0;
                let mut max_us = i64::MIN;
                for (&t, &v) in ts.iter().zip(vals) {
                    acc += k.g(t - l) * v;
                    max_us = max_us.max(t.as_micros());
                }
                self.acc += acc;
                Timestamp::from_micros(max_us)
            } else {
                let (sum, max_t) = self.g.g_dot_batch(ts, vals, l);
                self.acc += sum;
                max_t
            }
        };
        self.n += ts.len() as u64;
        self.max_t = self.max_t.max(max_t);
    }

    /// The decayed sum at query time `t`.
    #[inline]
    pub fn query(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        if self.n == 0 {
            return 0.0;
        }
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            return 0.0;
        }
        self.acc / denom
    }

    /// Number of raw updates ingested.
    pub fn raw_count(&self) -> u64 {
        self.n
    }

    /// The largest timestamp observed so far.
    pub fn max_timestamp(&self) -> Timestamp {
        self.max_t
    }
}

impl<G: ForwardDecay> Mergeable for DecayedSum<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        let (mut other_acc, other_lm) = (other.acc, other.renorm.landmark());
        if other_lm < self.renorm.landmark() {
            // Log-domain alignment; see DecayedCount::merge_from.
            other_acc *= landmark_shift_factor(&self.g, other_lm, self.renorm.landmark());
        } else if other_lm > self.renorm.landmark() {
            if let Some(f) = self.renorm.rescale_to(&self.g, other_lm) {
                self.acc *= f;
            }
        }
        self.acc += other_acc;
        self.n += other.n;
        self.max_t = self.max_t.max(other.max_t);
    }
}

/// Decayed average (Definition 5): `A = S / C = Σ g(t_i−L)v_i / Σ g(t_i−L)`.
///
/// As the paper notes, the average is independent of the query time `t` (the
/// `g(t − L)` normalizations cancel): it is a weighted mean of the values,
/// weighted toward the recent ones.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedAverage<G: ForwardDecay> {
    sum: DecayedSum<G>,
    count: DecayedCount<G>,
}

impl<G: ForwardDecay> DecayedAverage<G> {
    /// Creates an empty decayed average.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            sum: DecayedSum::new(g.clone(), landmark),
            count: DecayedCount::new(g, landmark),
        }
    }

    /// Ingests an item `(t_i, v_i)`.
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, v: f64) {
        let t_i = t_i.into();
        self.sum.update(t_i, v);
        self.count.update(t_i);
    }

    /// Ingests an item `(t_i, v_i)` carrying a Horvitz–Thompson scale `w`:
    /// the scale enters numerator and denominator alike, keeping the
    /// weighted mean a consistent ratio estimator under subsampling. See
    /// [`DecayedCount::update_weighted`].
    #[inline]
    pub fn update_weighted(&mut self, t_i: impl Into<Timestamp>, v: f64, w: f64) {
        let t_i = t_i.into();
        self.sum.update_weighted(t_i, v, w);
        self.count.update_weighted(t_i, w);
    }

    /// The decayed average; `None` if no items (or all weights zero).
    #[inline]
    pub fn query(&self, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let c = self.count.query(t);
        if c == 0.0 {
            None
        } else {
            Some(self.sum.query(t) / c)
        }
    }
}

impl<G: ForwardDecay> Mergeable for DecayedAverage<G> {
    fn merge_from(&mut self, other: &Self) {
        self.sum.merge_from(&other.sum);
        self.count.merge_from(&other.count);
    }
}

/// Decayed variance (Section IV-A): interpreting the normalized weights as
/// probabilities, `V = Σ g(t_i − L) v_i² / C − A²` where `C` is the decayed
/// count and `A` the decayed average.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedVariance<G: ForwardDecay> {
    sum_sq: DecayedSum<G>,
    sum: DecayedSum<G>,
    count: DecayedCount<G>,
}

impl<G: ForwardDecay> DecayedVariance<G> {
    /// Creates an empty decayed variance.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            sum_sq: DecayedSum::new(g.clone(), landmark),
            sum: DecayedSum::new(g.clone(), landmark),
            count: DecayedCount::new(g, landmark),
        }
    }

    /// Ingests an item `(t_i, v_i)`.
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, v: f64) {
        let t_i = t_i.into();
        self.sum_sq.update(t_i, v * v);
        self.sum.update(t_i, v);
        self.count.update(t_i);
    }

    /// The decayed variance; `None` if no items. Clamped at zero against
    /// floating-point cancellation.
    pub fn query(&self, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let c = self.count.query(t);
        if c == 0.0 {
            return None;
        }
        let a = self.sum.query(t) / c;
        Some((self.sum_sq.query(t) / c - a * a).max(0.0))
    }

    /// The decayed mean, as a convenience.
    pub fn mean(&self, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let c = self.count.query(t);
        if c == 0.0 {
            None
        } else {
            Some(self.sum.query(t) / c)
        }
    }
}

impl<G: ForwardDecay> Mergeable for DecayedVariance<G> {
    fn merge_from(&mut self, other: &Self) {
        self.sum_sq.merge_from(&other.sum_sq);
        self.sum.merge_from(&other.sum);
        self.count.merge_from(&other.count);
    }
}

/// Which extremum a [`DecayedExtremum`] tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
enum Extremum {
    Min,
    Max,
}

/// Decayed Min / Max (Definition 6): the smallest (largest) decayed value
/// `g(t_i − L) v_i / g(t − L)`, found by tracking the extremal un-normalized
/// `g(t_i − L) v_i` (constant space — provably impossible under backward
/// decay).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedExtremum<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    which: Extremum,
    /// Extremal g(t_i − L_eff) · v_i and the item that achieved it.
    best: Option<(f64, Timestamp, f64)>,
}

impl<G: ForwardDecay> DecayedExtremum<G> {
    /// Creates a decayed-minimum tracker.
    pub fn min(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            which: Extremum::Min,
            best: None,
        }
    }

    /// Creates a decayed-maximum tracker.
    pub fn max(g: G, landmark: impl Into<Timestamp>) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            which: Extremum::Max,
            best: None,
        }
    }

    /// Whether candidate `(key, t_i, v)` replaces the current best.
    ///
    /// Strictly better keys (by `total_cmp`, so `-0.0 < 0.0` and the
    /// comparison is a total order) always win. *Equal* keys — duplicate
    /// timestamps with the same value, or distinct items whose decayed
    /// weights coincide — fall back to the lexicographically smallest
    /// `(t_i, v)`, so the reported witness is identical across the scalar,
    /// batched, and merge paths regardless of arrival or merge order.
    /// NaN keys are rejected at ingestion and never reach this comparison.
    fn candidate_wins(&self, key: f64, t_i: Timestamp, v: f64) -> bool {
        use std::cmp::Ordering;
        let Some((b, bt, bv)) = &self.best else {
            return true;
        };
        let ord = match self.which {
            Extremum::Min => key.total_cmp(b),
            Extremum::Max => b.total_cmp(&key),
        };
        match ord {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => t_i < *bt || (t_i == *bt && v.total_cmp(bv) == Ordering::Less),
        }
    }

    /// Ingests an item `(t_i, v_i)`. Pre-landmark timestamps are clamped to
    /// the landmark; a NaN value is ignored (it has no defined ordering, and
    /// before this guard the first-arriving NaN stuck as the extremum
    /// forever, making the result arrival-order-dependent).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, v: f64) {
        let t_i = clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            if let Some((key, _, _)) = &mut self.best {
                *key *= factor;
            }
        }
        let key = self.g.g(t_i - self.renorm.landmark()) * v;
        if key.is_nan() {
            return;
        }
        if self.candidate_wins(key, t_i, v) {
            self.best = Some((key, t_i, v));
        }
    }

    /// The decayed extremal value at query time `t`, with the item
    /// `(t_i, v_i)` that achieves it. `None` if empty.
    pub fn query(&self, t: impl Into<Timestamp>) -> Option<(f64, Timestamp, f64)> {
        let t = t.into();
        let (key, t_i, v) = self.best?;
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            return None;
        }
        Some((key / denom, t_i, v))
    }
}

impl<G: ForwardDecay> Mergeable for DecayedExtremum<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.which, other.which, "cannot merge min with max");
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        if let Some((okey, ot, ov)) = other.best {
            // Align the candidate's key to our effective landmark (log
            // domain, as in DecayedCount::merge_from).
            let okey = if other.renorm.landmark() < self.renorm.landmark() {
                okey * landmark_shift_factor(
                    &self.g,
                    other.renorm.landmark(),
                    self.renorm.landmark(),
                )
            } else if other.renorm.landmark() > self.renorm.landmark() {
                if let Some(f) = self.renorm.rescale_to(&self.g, other.renorm.landmark()) {
                    if let Some((key, _, _)) = &mut self.best {
                        *key *= f;
                    }
                }
                okey
            } else {
                okey
            };
            // Same winner rule as `update` — equal keys resolve to the
            // smallest (t_i, v), so A.merge_from(B) and B.merge_from(A)
            // report the same witness.
            if !okey.is_nan() && self.candidate_wins(okey, ot, ov) {
                self.best = Some((okey, ot, ov));
            }
        }
    }
}

// ----- unified Summary API ------------------------------------------------

use crate::summary::{Summary, SummaryStats};

impl<G: ForwardDecay> DecayedCount<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.renorm.original_landmark()
    }
}

impl<G: ForwardDecay> Summary for DecayedCount<G> {
    type Update = ();
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, _u: ()) {
        self.update(t_i);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], us: &[()]) {
        assert_eq!(ts.len(), us.len(), "columnar batch slices must align");
        self.update_batch(ts);
    }

    fn update_batch_counts(&mut self, ts: &[Timestamp]) {
        self.update_batch(ts);
    }

    fn supports_scaled_batches(&self) -> bool {
        true
    }

    fn update_batch_scaled_at(&mut self, ts: &[Timestamp], us: &[()], scales: &[f64]) {
        assert_eq!(ts.len(), us.len(), "columnar batch slices must align");
        assert_eq!(ts.len(), scales.len(), "scale column must align with batch");
        for (&t_i, &w) in ts.iter().zip(scales) {
            self.update_weighted(t_i, w);
        }
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.query(t)
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: self.renorm.rescales(),
            items: self.n,
            accepted: self.n,
            ..SummaryStats::default()
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Counts sum non-negative weights: the accumulator can never go
        // negative or NaN, whatever the stream threw at it.
        if self.acc.is_nan() {
            return Err("DecayedCount accumulator is NaN".into());
        }
        if self.acc < 0.0 {
            return Err(format!("DecayedCount accumulator negative: {}", self.acc));
        }
        if self.acc > 0.0 && self.n == 0 {
            return Err("DecayedCount has mass but zero raw count".into());
        }
        Ok(())
    }
}

impl<G: ForwardDecay> DecayedSum<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.renorm.original_landmark()
    }
}

impl<G: ForwardDecay> Summary for DecayedSum<G> {
    type Update = f64;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, v: f64) {
        self.update(t_i, v);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], vs: &[f64]) {
        self.update_batch(ts, vs);
    }

    fn supports_scaled_batches(&self) -> bool {
        true
    }

    fn update_batch_scaled_at(&mut self, ts: &[Timestamp], vs: &[f64], scales: &[f64]) {
        assert_eq!(ts.len(), vs.len(), "columnar batch slices must align");
        assert_eq!(ts.len(), scales.len(), "scale column must align with batch");
        for ((&t_i, &v), &w) in ts.iter().zip(vs).zip(scales) {
            self.update_weighted(t_i, v, w);
        }
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.query(t)
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: self.renorm.rescales(),
            items: self.n,
            accepted: self.n,
            ..SummaryStats::default()
        }
    }
}

impl<G: ForwardDecay> DecayedAverage<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.sum.landmark()
    }
}

impl<G: ForwardDecay> Summary for DecayedAverage<G> {
    type Update = f64;
    type Output = Option<f64>;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, v: f64) {
        self.update(t_i, v);
    }

    fn supports_scaled_batches(&self) -> bool {
        true
    }

    fn update_batch_scaled_at(&mut self, ts: &[Timestamp], vs: &[f64], scales: &[f64]) {
        assert_eq!(ts.len(), vs.len(), "columnar batch slices must align");
        assert_eq!(ts.len(), scales.len(), "scale column must align with batch");
        for ((&t_i, &v), &w) in ts.iter().zip(vs).zip(scales) {
            self.update_weighted(t_i, v, w);
        }
    }

    fn query_at(&self, t: Timestamp) -> Option<f64> {
        self.query(t)
    }

    fn stats(&self) -> SummaryStats {
        // Sum and count renormalize in lockstep; each is its own pass.
        SummaryStats {
            renormalizations: self.sum.renorm.rescales() + self.count.renorm.rescales(),
            items: self.count.n,
            accepted: self.count.n,
            ..SummaryStats::default()
        }
    }
}

impl<G: ForwardDecay> DecayedVariance<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.sum.landmark()
    }
}

impl<G: ForwardDecay> Summary for DecayedVariance<G> {
    type Update = f64;
    type Output = Option<f64>;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, v: f64) {
        self.update(t_i, v);
    }

    fn query_at(&self, t: Timestamp) -> Option<f64> {
        self.query(t)
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: self.sum_sq.renorm.rescales()
                + self.sum.renorm.rescales()
                + self.count.renorm.rescales(),
            items: self.count.n,
            accepted: self.count.n,
            ..SummaryStats::default()
        }
    }
}

impl<G: ForwardDecay> DecayedExtremum<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.renorm.original_landmark()
    }
}

impl<G: ForwardDecay> Summary for DecayedExtremum<G> {
    type Update = f64;
    type Output = Option<(f64, Timestamp, f64)>;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, v: f64) {
        self.update(t_i, v);
    }

    fn query_at(&self, t: Timestamp) -> Option<(f64, Timestamp, f64)> {
        self.query(t)
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: self.renorm.rescales(),
            occupancy: u64::from(self.best.is_some()),
            capacity: 1,
            ..SummaryStats::default()
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        // NaN keys are rejected at ingestion; the witness timestamp can
        // never precede the landmark after the clamp.
        if let Some((key, t_i, _)) = self.best {
            if key.is_nan() {
                return Err("DecayedExtremum stored a NaN key".into());
            }
            if t_i < self.renorm.original_landmark() {
                return Err(format!(
                    "DecayedExtremum witness {t_i:?} precedes landmark {:?}",
                    self.renorm.original_landmark()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, LandmarkWindow, Monomial, NoDecay};

    /// The stream of Examples 1–2 of the paper.
    fn example_stream() -> [(f64, f64); 5] {
        [
            (105.0, 4.0),
            (107.0, 8.0),
            (103.0, 3.0),
            (108.0, 6.0),
            (104.0, 4.0),
        ]
    }

    #[test]
    fn paper_example_2_count_sum_average() {
        let g = Monomial::quadratic();
        let mut c = DecayedCount::new(g, 100.0);
        let mut s = DecayedSum::new(g, 100.0);
        let mut a = DecayedAverage::new(g, 100.0);
        for (t, v) in example_stream() {
            c.update(t);
            s.update(t, v);
            a.update(t, v);
        }
        assert!((c.query(110.0) - 1.63).abs() < 1e-9);
        assert!((s.query(110.0) - 9.67).abs() < 1e-9);
        let avg = a.query(110.0).unwrap();
        assert!((avg - 9.67 / 1.63).abs() < 1e-9);
        assert!((avg - 5.93).abs() < 0.005); // the paper rounds to 5.93
    }

    #[test]
    fn average_is_independent_of_query_time() {
        let g = Monomial::quadratic();
        let mut a = DecayedAverage::new(g, 100.0);
        for (t, v) in example_stream() {
            a.update(t, v);
        }
        let at_110 = a.query(110.0).unwrap();
        let at_1000 = a.query(1000.0).unwrap();
        assert!((at_110 - at_1000).abs() < 1e-9);
    }

    #[test]
    fn constant_stream_has_constant_average_and_zero_variance() {
        let g = Exponential::new(0.3);
        let mut a = DecayedAverage::new(g, 0.0);
        let mut var = DecayedVariance::new(g, 0.0);
        for i in 0..100 {
            a.update(i as f64, 7.5);
            var.update(i as f64, 7.5);
        }
        assert!((a.query(100.0).unwrap() - 7.5).abs() < 1e-9);
        assert!(var.query(100.0).unwrap() < 1e-9);
    }

    #[test]
    fn count_against_brute_force() {
        let g = Monomial::new(1.5);
        let landmark = 10.0;
        let ts: Vec<f64> = (0..200).map(|i| 10.0 + 0.37 * i as f64).collect();
        let mut c = DecayedCount::new(g, landmark);
        for &t in &ts {
            c.update(t);
        }
        let t_q = 100.0;
        let brute: f64 = ts.iter().map(|&ti| g.weight(landmark, ti, t_q)).sum();
        assert!((c.query(t_q) - brute).abs() < 1e-9 * brute);
    }

    #[test]
    fn sum_with_no_decay_is_plain_sum() {
        let mut s = DecayedSum::new(NoDecay, 0.0);
        for i in 0..50 {
            s.update(i as f64, 2.0);
        }
        assert!((s.query(1000.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn landmark_window_counts_everything_after_landmark() {
        let mut c = DecayedCount::new(LandmarkWindow, 100.0);
        c.update(100.0); // exactly at landmark: weight 0
        c.update(101.0);
        c.update(150.0);
        assert!((c.query(200.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_brute_force() {
        let g = Exponential::new(0.05);
        let landmark = 0.0;
        let items: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, ((i * 7919) % 13) as f64))
            .collect();
        let mut v = DecayedVariance::new(g, landmark);
        for &(t, x) in &items {
            v.update(t, x);
        }
        let t_q = 100.0;
        let ws: Vec<f64> = items
            .iter()
            .map(|&(ti, _)| g.weight(landmark, ti, t_q))
            .collect();
        let wsum: f64 = ws.iter().sum();
        let mean: f64 = items
            .iter()
            .zip(&ws)
            .map(|(&(_, x), &w)| w * x)
            .sum::<f64>()
            / wsum;
        let brute: f64 = items
            .iter()
            .zip(&ws)
            .map(|(&(_, x), &w)| w * (x - mean) * (x - mean))
            .sum::<f64>()
            / wsum;
        let got = v.query(t_q).unwrap();
        assert!((got - brute).abs() < 1e-9, "{got} vs {brute}");
    }

    #[test]
    fn min_max_match_brute_force() {
        let g = Monomial::quadratic();
        let landmark = 100.0;
        let items = example_stream();
        let mut mn = DecayedExtremum::min(g, landmark);
        let mut mx = DecayedExtremum::max(g, landmark);
        for (t, v) in items {
            mn.update(t, v);
            mx.update(t, v);
        }
        let t_q = 110.0;
        let decayed: Vec<f64> = items
            .iter()
            .map(|&(ti, v)| g.weight(landmark, ti, t_q) * v)
            .collect();
        let bmin = decayed.iter().cloned().fold(f64::INFINITY, f64::min);
        let bmax = decayed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((mn.query(t_q).unwrap().0 - bmin).abs() < 1e-12);
        assert!((mx.query(t_q).unwrap().0 - bmax).abs() < 1e-12);
    }

    #[test]
    fn min_handles_negative_values() {
        let g = Monomial::quadratic();
        let mut mn = DecayedExtremum::min(g, 0.0);
        mn.update(5.0, -2.0);
        mn.update(9.0, 1.0);
        let (val, t_i, v) = mn.query(10.0).unwrap();
        assert_eq!(t_i, 5.0);
        assert_eq!(v, -2.0);
        assert!((val - g.weight(0.0, 5.0, 10.0) * -2.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_arrivals_give_same_answer() {
        let g = Monomial::quadratic();
        let mut sorted = DecayedSum::new(g, 0.0);
        let mut shuffled = DecayedSum::new(g, 0.0);
        let items: Vec<(f64, f64)> = (1..=50).map(|i| (i as f64, (i % 7) as f64)).collect();
        for &(t, v) in &items {
            sorted.update(t, v);
        }
        let mut rev = items.clone();
        rev.reverse();
        rev.swap(0, 20);
        for &(t, v) in &rev {
            shuffled.update(t, v);
        }
        assert!((sorted.query(60.0) - shuffled.query(60.0)).abs() < 1e-9);
    }

    #[test]
    fn exponential_sum_survives_long_stream() {
        // 1M seconds at α=0.1: g spans e^100000 — hopeless without
        // renormalization.
        let g = Exponential::new(0.1);
        let mut s = DecayedSum::new(g, 0.0);
        let mut t = 0.0;
        for _ in 0..100_000 {
            t += 10.0;
            s.update(t, 1.0);
        }
        let q = s.query(t);
        // Σ e^{-0.1·10k} = 1/(1 − e^{−1}) over the infinite tail.
        let expected = 1.0 / (1.0 - (-1.0f64).exp());
        assert!(q.is_finite());
        assert!((q - expected).abs() < 1e-6, "q = {q}");
    }

    #[test]
    fn merge_equals_concat_for_all_aggregates() {
        let g = Exponential::new(0.2);
        let items: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, ((i * 31) % 17) as f64))
            .collect();

        macro_rules! check {
            ($make:expr, $update:ident, $query:expr) => {{
                let mut whole = $make;
                let mut left = $make;
                let mut right = $make;
                for (i, &(t, v)) in items.iter().enumerate() {
                    let _ = v;
                    whole.$update(t, v);
                    if i % 2 == 0 {
                        left.$update(t, v);
                    } else {
                        right.$update(t, v);
                    }
                }
                left.merge_from(&right);
                let (a, b) = ($query(&whole), $query(&left));
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }};
        }

        check!(DecayedSum::new(g, 0.0), update, |s: &DecayedSum<_>| s
            .query(100.0));
        check!(
            DecayedVariance::new(g, 0.0),
            update,
            |s: &DecayedVariance<_>| s.query(100.0).unwrap()
        );
        check!(
            DecayedExtremum::max(g, 0.0),
            update,
            |s: &DecayedExtremum<_>| s.query(100.0).unwrap().0
        );

        // Count takes only a timestamp.
        let mut whole = DecayedCount::new(g, 0.0);
        let mut left = DecayedCount::new(g, 0.0);
        let mut right = DecayedCount::new(g, 0.0);
        for (i, &(t, _)) in items.iter().enumerate() {
            whole.update(t);
            if i % 2 == 0 {
                left.update(t)
            } else {
                right.update(t)
            }
        }
        left.merge_from(&right);
        assert!((whole.query(100.0) - left.query(100.0)).abs() < 1e-9);
    }

    #[test]
    fn merge_with_disparate_effective_landmarks() {
        // Drive one shard far enough that it renormalizes, the other not.
        let g = Exponential::new(1.0);
        let mut a = DecayedCount::new(g, 0.0);
        let mut b = DecayedCount::new(g, 0.0);
        let mut reference = DecayedCount::new(g, 0.0);
        for i in 0..1000 {
            let t = i as f64;
            a.update(t);
            reference.update(t);
        }
        for i in 990..1000 {
            let t = i as f64;
            b.update(t);
            reference.update(t);
        }
        a.merge_from(&b);
        let (x, y) = (a.query(1000.0), reference.query(1000.0));
        assert!((x - y).abs() < 1e-9 * y, "{x} vs {y}");
    }

    #[test]
    #[should_panic(expected = "share a landmark")]
    fn merge_rejects_landmark_mismatch() {
        let g = NoDecay;
        let mut a = DecayedCount::new(g, 0.0);
        let b = DecayedCount::new(g, 5.0);
        a.merge_from(&b);
    }

    #[test]
    fn empty_queries() {
        let g = Monomial::quadratic();
        assert_eq!(DecayedCount::new(g, 0.0).query(10.0), 0.0);
        assert_eq!(DecayedSum::new(g, 0.0).query(10.0), 0.0);
        assert_eq!(DecayedAverage::new(g, 0.0).query(10.0), None);
        assert_eq!(DecayedVariance::new(g, 0.0).query(10.0), None);
        assert!(DecayedExtremum::<Monomial>::max(g, 0.0)
            .query(10.0)
            .is_none());
    }

    #[test]
    fn unit_weight_matches_unweighted_update() {
        let g = Exponential::new(0.1);
        let mut plain_c = DecayedCount::new(g, 0.0);
        let mut weighted_c = DecayedCount::new(g, 0.0);
        let mut plain_s = DecayedSum::new(g, 0.0);
        let mut weighted_s = DecayedSum::new(g, 0.0);
        let mut plain_a = DecayedAverage::new(g, 0.0);
        let mut weighted_a = DecayedAverage::new(g, 0.0);
        for i in 0..500 {
            let (t, v) = (i as f64 * 0.7, ((i * 13) % 11) as f64);
            plain_c.update(t);
            weighted_c.update_weighted(t, 1.0);
            plain_s.update(t, v);
            weighted_s.update_weighted(t, v, 1.0);
            plain_a.update(t, v);
            weighted_a.update_weighted(t, v, 1.0);
        }
        assert_eq!(plain_c.query(400.0), weighted_c.query(400.0));
        assert_eq!(plain_s.query(400.0), weighted_s.query(400.0));
        assert_eq!(plain_a.query(400.0), weighted_a.query(400.0));
    }

    #[test]
    fn horvitz_thompson_identity_on_duplicated_mass() {
        // Feeding an item once with weight 1/p equals feeding it 1/p times
        // with weight 1 — the algebraic identity HT unbiasedness rests on.
        let g = Monomial::quadratic();
        let mut dup = DecayedCount::new(g, 100.0);
        let mut ht = DecayedCount::new(g, 100.0);
        let mut dup_s = DecayedSum::new(g, 100.0);
        let mut ht_s = DecayedSum::new(g, 100.0);
        for (t, v) in example_stream() {
            for _ in 0..4 {
                dup.update(t);
                dup_s.update(t, v);
            }
            ht.update_weighted(t, 4.0);
            ht_s.update_weighted(t, v, 4.0);
        }
        assert!((dup.query(110.0) - ht.query(110.0)).abs() < 1e-9);
        assert!((dup_s.query(110.0) - ht_s.query(110.0)).abs() < 1e-9);
    }

    #[test]
    fn scaled_batch_matches_per_item_weighted() {
        use crate::summary::Summary;
        let g = Exponential::new(0.2);
        let ts: Vec<Timestamp> = (0..64).map(|i| Timestamp::from(i as f64 * 1.3)).collect();
        let vs: Vec<f64> = (0..64).map(|i| ((i * 7) % 5) as f64).collect();
        let ws: Vec<f64> = (0..64).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();

        let mut batched = DecayedSum::new(g, 0.0);
        let mut scalar = DecayedSum::new(g, 0.0);
        Summary::update_batch_scaled_at(&mut batched, &ts, &vs, &ws);
        for ((&t, &v), &w) in ts.iter().zip(&vs).zip(&ws) {
            scalar.update_weighted(t, v, w);
        }
        assert_eq!(batched.query(100.0), scalar.query(100.0));

        let mut batched_c = DecayedCount::new(g, 0.0);
        let mut scalar_c = DecayedCount::new(g, 0.0);
        let units = vec![(); ts.len()];
        Summary::update_batch_scaled_at(&mut batched_c, &ts, &units, &ws);
        for (&t, &w) in ts.iter().zip(&ws) {
            scalar_c.update_weighted(t, w);
        }
        assert_eq!(batched_c.query(100.0), scalar_c.query(100.0));
        assert!(batched_c.supports_scaled_batches());
    }

    #[test]
    #[should_panic(expected = "non-unit Horvitz")]
    fn default_scaled_batch_rejects_non_unit_scales() {
        use crate::summary::Summary;
        // Variance has no scaled override: the trait default must refuse
        // rather than silently bias the estimate.
        let mut v = DecayedVariance::new(Monomial::quadratic(), 0.0);
        assert!(!v.supports_scaled_batches());
        Summary::update_batch_scaled_at(&mut v, &[Timestamp::from(1.0)], &[2.0], &[2.0]);
    }

    #[test]
    fn historical_query_weights_can_exceed_one() {
        // Section VI-B: items "in the future" relative to the query time are
        // allowed; weights > 1 are then meaningful for historical queries.
        let g = Monomial::quadratic();
        let mut c = DecayedCount::new(g, 0.0);
        c.update(10.0);
        let hist = c.query(5.0); // query in the past of the item
        assert!(hist > 1.0);
    }
}
