//! Sampling under forward decay (Section V of the paper).
//!
//! Because forward decay is invariant to globally scaling the weights, all
//! samplers work directly with the un-normalized weights `w_i = g(t_i − L)`:
//!
//! - [`WithReplacementSampler`] — sampling *with* replacement (Theorem 5):
//!   `s` independent chains, each retaining item `i` with probability
//!   `w_i / W_i`, in constant space and constant time per tuple;
//! - [`WeightedReservoir`] — Efraimidis–Spirakis weighted reservoir sampling
//!   *without* replacement (Theorem 6): item `i` gets key `u_i^{1/w_i}`, the
//!   sample is the `k` largest keys;
//! - [`PrioritySampler`] — priority sampling of Alon et al. (Theorem 6):
//!   priority `q_i = w_i / u_i`, retain the `k` highest, with a near-optimal
//!   unbiased subset-sum estimator;
//! - [`ReservoirSampler`] — classical unweighted reservoir sampling
//!   (Vitter), the paper's undecayed baseline;
//! - [`BiasedReservoir`] — Aggarwal's biased reservoir sampling (VLDB 2006),
//!   the paper's *backward* exponential-decay baseline, limited to
//!   sequential integer arrivals;
//! - [`exp_decay_sample`] — Corollary 1: an `O(k)`-space sample under
//!   backward exponential decay with **arbitrary** timestamps, obtained for
//!   free from the forward view.
//!
//! All samplers work entirely in the log domain, so exponential decay over
//! arbitrarily long streams needs no renormalization pass at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::decay::{Exponential, ForwardDecay};
use crate::merge::Mergeable;
use crate::numerics::{LogSum, Renormalizer};
use crate::Timestamp;

/// A totally ordered `f64` (by `total_cmp`) for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Draws a uniform variate in the open interval `(0, 1)`.
#[inline]
fn open_unit<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

// ---------------------------------------------------------------------------
// Unweighted reservoir sampling (baseline)
// ---------------------------------------------------------------------------

/// Classical reservoir sampling without replacement (Vitter's Algorithm R
/// with the geometric-skip acceleration known as Algorithm L). The paper's
/// "no decay" sampling baseline.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    k: usize,
    reservoir: Vec<T>,
    /// Items seen so far.
    n: u64,
    /// Algorithm-L state: `w` threshold and how many items to skip.
    w: f64,
    skip: u64,
    rng: SmallRng,
}

impl<T: Clone> ReservoirSampler<T> {
    /// Creates a reservoir of size `k` with the given RNG seed.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0);
        Self {
            k,
            reservoir: Vec::with_capacity(k),
            n: 0,
            w: 1.0,
            skip: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Offers one item to the sampler. O(1) amortized; once the reservoir is
    /// full, most calls are a single decrement.
    #[inline]
    pub fn update(&mut self, item: T) {
        self.n += 1;
        if self.reservoir.len() < self.k {
            self.reservoir.push(item);
            if self.reservoir.len() == self.k {
                self.advance_skip();
            }
            return;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        let slot = self.rng.gen_range(0..self.k);
        self.reservoir[slot] = item;
        self.advance_skip();
    }

    /// Algorithm L: draw the gap until the next accepted item.
    fn advance_skip(&mut self) {
        self.w *= open_unit(&mut self.rng).powf(1.0 / self.k as f64);
        let gap = (open_unit(&mut self.rng).ln() / (1.0 - self.w).ln()).floor();
        self.skip = if gap.is_finite() && gap >= 0.0 {
            gap as u64
        } else {
            u64::MAX
        };
    }

    /// The current sample (fewer than `k` items if the stream was shorter).
    pub fn sample(&self) -> &[T] {
        &self.reservoir
    }

    /// Number of items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Sample capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl<T: Clone> Mergeable for ReservoirSampler<T> {
    /// Exact distributed merge: draw the combined sample by picking from
    /// each side without replacement with probability proportional to the
    /// numbers of items each side has seen.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "sample sizes must match");
        let mut left = self.reservoir.clone();
        let mut right = other.reservoir.clone();
        let (mut n1, mut n2) = (self.n, other.n);
        let mut merged = Vec::with_capacity(self.k);
        while merged.len() < self.k && (n1 > 0 || n2 > 0) {
            let take_left = if n2 == 0 {
                true
            } else if n1 == 0 {
                false
            } else {
                (self.rng.gen::<f64>()) * ((n1 + n2) as f64) < n1 as f64
            };
            if take_left {
                if left.is_empty() {
                    break;
                }
                let i = self.rng.gen_range(0..left.len());
                merged.push(left.swap_remove(i));
                n1 -= 1;
            } else {
                if right.is_empty() {
                    break;
                }
                let i = self.rng.gen_range(0..right.len());
                merged.push(right.swap_remove(i));
                n2 -= 1;
            }
        }
        self.reservoir = merged;
        self.n += other.n;
        // Restart the skip machinery conservatively.
        self.w = 1.0;
        self.skip = 0;
        if self.reservoir.len() == self.k {
            self.advance_skip();
        }
    }
}

// ---------------------------------------------------------------------------
// Sampling with replacement under forward decay (Theorem 5)
// ---------------------------------------------------------------------------

/// One chain of the with-replacement sampler: its current item and the
/// total-weight threshold at which the item will be replaced.
#[derive(Debug, Clone)]
struct Chain<T> {
    item: Option<T>,
    /// Replace the item as soon as `ln W_total ≥ ln_threshold`.
    ln_threshold: f64,
}

/// Sampling *with replacement* under forward decay (Theorem 5): `s`
/// independent chains, each holding one item; chain `j` replaces its item
/// with arrival `i` with probability `g(t_i − L) / W_i` where `W_i` is the
/// total weight so far. Each chain's final item is distributed as
/// `P(i) = g(t_i − L) / Σ_j g(t_j − L)`.
///
/// Implements the skip acceleration the paper points at ("the procedure can
/// be accelerated by using an appropriate random distribution to determine
/// the total weight of subsequent items to skip over", Section V-A): when a
/// chain adopts an item at total weight `W_i`, the survival probability of
/// that item once the total reaches `W` is exactly `W_i / W`, so drawing
/// `u ~ U(0,1)` once fixes the replacement point at `W_i / u`. Per tuple
/// each chain does one comparison, and randomness is consumed only at the
/// O(log of total weight growth) actual replacements.
///
/// Weights and thresholds live in the log domain ([`LogSum`]), so
/// exponential decay on unbounded streams cannot overflow.
#[derive(Debug, Clone)]
pub struct WithReplacementSampler<T, G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    chains: Vec<Chain<T>>,
    total: LogSum,
    rng: SmallRng,
    draws: u64,
    n: u64,
}

impl<T: Clone, G: ForwardDecay> WithReplacementSampler<T, G> {
    /// Creates a sampler of `s` independent chains.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(g: G, landmark: impl Into<Timestamp>, s: usize, seed: u64) -> Self {
        let landmark = landmark.into();
        assert!(s > 0);
        Self {
            g,
            landmark,
            chains: vec![
                Chain {
                    item: None,
                    ln_threshold: f64::NEG_INFINITY,
                };
                s
            ],
            total: LogSum::new(),
            rng: SmallRng::seed_from_u64(seed),
            draws: 0,
            n: 0,
        }
    }

    /// Offers `(t_i, item)` to every chain (pre-landmark timestamps clamp
    /// to the landmark). One comparison per chain per tuple; random draws
    /// only on replacements.
    pub fn update(&mut self, t_i: impl Into<Timestamp>, item: &T) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.landmark);
        let ln_w = self.g.ln_g(t_i - self.landmark);
        if ln_w == f64::NEG_INFINITY {
            return; // zero weight: can never be sampled
        }
        self.n += 1;
        self.total.add_ln(ln_w);
        let ln_total = self.total.ln();
        for chain in &mut self.chains {
            if chain.item.is_some() && ln_total < chain.ln_threshold {
                continue;
            }
            // The crossing item is the replacement (conditioned on the
            // threshold falling in (W_{j−1}, W_j], the replacement
            // probability is exactly w_j / W_j).
            chain.item = Some(item.clone());
            // Next replacement once the total reaches W_j / u.
            self.draws += 1;
            let u = open_unit(&mut self.rng);
            chain.ln_threshold = ln_total - u.ln();
        }
    }

    /// The current sample: one (possibly repeated) item per chain.
    pub fn sample(&self) -> Vec<&T> {
        self.chains.iter().filter_map(|c| c.item.as_ref()).collect()
    }

    /// `ln` of the total weight ingested.
    pub fn ln_total_weight(&self) -> f64 {
        self.total.ln()
    }

    /// Number of chains (the sample size `s`).
    pub fn capacity(&self) -> usize {
        self.chains.len()
    }

    /// Items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Random numbers drawn so far — O(s · log total-weight-growth) thanks
    /// to the skip thresholds, against `s · n` for the naive per-tuple coin.
    pub fn random_draws(&self) -> u64 {
        self.draws
    }
}

impl<T: Clone, G: ForwardDecay> Mergeable for WithReplacementSampler<T, G> {
    /// Per chain, keep this side's item with probability `W_self / (W_self +
    /// W_other)` — exactly the distribution of a chain run over the
    /// concatenated stream.
    ///
    /// The distributional guarantee assumes the two sides drew from
    /// **independent** RNG streams: construct shards with distinct seeds.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.chains.len(),
            other.chains.len(),
            "sample sizes must match"
        );
        assert_eq!(self.landmark, other.landmark, "landmarks must match");
        let mut merged_total = self.total;
        merged_total.merge(&other.total);
        let p_keep_self = if merged_total.is_empty() {
            1.0
        } else {
            (self.total.ln() - merged_total.ln()).exp()
        };
        let ln_merged = merged_total.ln();
        for (c, oc) in self.chains.iter_mut().zip(&other.chains) {
            match (&c.item, &oc.item) {
                (None, Some(theirs)) => c.item = Some(theirs.clone()),
                (Some(_), Some(theirs)) if self.rng.gen::<f64>() >= p_keep_self => {
                    c.item = Some(theirs.clone());
                }
                _ => {}
            }
            // Pareto thresholds are memoryless: conditioned on surviving to
            // the merged total, the remaining lifetime redraws exactly.
            if c.item.is_some() {
                self.draws += 1;
                let u = open_unit(&mut self.rng);
                c.ln_threshold = ln_merged - u.ln();
            }
        }
        self.total = merged_total;
    }
}

// ---------------------------------------------------------------------------
// Efraimidis–Spirakis weighted reservoir sampling (Theorem 6)
// ---------------------------------------------------------------------------

/// An entry of a without-replacement sample: the item, its timestamp, and
/// the (internal, log-domain) rank that selected it.
#[derive(Debug, Clone)]
pub struct SampleEntry<T> {
    /// The sampled item.
    pub item: T,
    /// Its arrival timestamp.
    pub t: Timestamp,
    /// Internal selection key (log-domain; smaller = stronger for ES ranks,
    /// larger = stronger for priorities).
    key: f64,
}

/// Weighted reservoir sampling *without replacement* (Efraimidis–Spirakis,
/// as adopted in Theorem 6): item `i` draws `u_i ~ U(0,1)` and gets key
/// `p_i = u_i^{1/w_i}`; the sample is the `k` items with the largest keys.
///
/// Keys are kept as `ln(−ln p_i) = ln(ln(1/u_i)) − ln w_i` (monotone in
/// `−p_i`), which stays finite for any exponential-decay weight — this is
/// precisely what makes the forward view numerically effortless.
///
/// O(k) space, O(log k) per update (a max-heap of the k smallest ranks).
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T, G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    k: usize,
    /// Max-heap on rank: the root is the *weakest* member of the sample.
    heap: BinaryHeap<(OrdF64, u64)>,
    entries: Vec<Option<SampleEntry<T>>>,
    free: Vec<u64>,
    rng: SmallRng,
    n: u64,
    accepted: u64,
}

impl<T: Clone, G: ForwardDecay> WeightedReservoir<T, G> {
    /// Creates a weighted reservoir of size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(g: G, landmark: impl Into<Timestamp>, k: usize, seed: u64) -> Self {
        let landmark = landmark.into();
        assert!(k > 0);
        Self {
            g,
            landmark,
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            entries: Vec::with_capacity(k + 1),
            free: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            n: 0,
            accepted: 0,
        }
    }

    /// Offers `(t_i, item)`; pre-landmark timestamps clamp to the landmark.
    /// O(log k).
    pub fn update(&mut self, t_i: impl Into<Timestamp>, item: &T) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.landmark);
        let ln_w = self.g.ln_g(t_i - self.landmark);
        self.offer(t_i, item, ln_w);
    }

    /// Offers a columnar batch: `ts[i]` pairs with `items[i]`.
    ///
    /// Identical in distribution *and* in realized draws to per-item
    /// [`update`](Self::update) calls (the RNG consumption is the same);
    /// the only difference is that `ln_g` runs through a
    /// [`WeightKernel`](crate::kernel::WeightKernel), so duplicated clock
    /// ticks skip the transcendental.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    pub fn update_batch(&mut self, ts: &[Timestamp], items: &[T]) {
        assert_eq!(ts.len(), items.len(), "columnar batch slices must align");
        let mut k = crate::kernel::WeightKernel::new(self.g.clone());
        for (&t_i, item) in ts.iter().zip(items) {
            let t_i = crate::decay::clamp_to_landmark(t_i, self.landmark);
            let ln_w = k.ln_g(t_i - self.landmark);
            self.offer(t_i, item, ln_w);
        }
    }

    /// The shared tail of [`update`](Self::update) /
    /// [`update_batch`](Self::update_batch), after `ln_w` is known.
    fn offer(&mut self, t_i: Timestamp, item: &T, ln_w: f64) {
        self.n += 1;
        if ln_w == f64::NEG_INFINITY {
            return;
        }
        let u = open_unit(&mut self.rng);
        // rank = ln(ln(1/u)) − ln w; smaller rank ⇔ larger key u^{1/w}.
        let rank = (-(u.ln())).ln() - ln_w;
        if self.heap.len() == self.k {
            let &(OrdF64(worst), _) = self.heap.peek().expect("non-empty");
            if rank >= worst {
                return;
            }
        }
        self.accepted += 1;
        self.insert_entry(
            rank,
            SampleEntry {
                item: item.clone(),
                t: t_i,
                key: rank,
            },
        );
    }

    fn insert_entry(&mut self, rank: f64, entry: SampleEntry<T>) {
        let slot = if let Some(s) = self.free.pop() {
            self.entries[s as usize] = Some(entry);
            s
        } else {
            self.entries.push(Some(entry));
            (self.entries.len() - 1) as u64
        };
        self.heap.push((OrdF64(rank), slot));
        if self.heap.len() > self.k {
            let (_, evicted) = self.heap.pop().expect("non-empty");
            self.entries[evicted as usize] = None;
            self.free.push(evicted);
        }
    }

    /// The current sample, in no particular order.
    pub fn sample(&self) -> Vec<&SampleEntry<T>> {
        self.entries.iter().filter_map(|e| e.as_ref()).collect()
    }

    /// Number of items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Sample capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl<T: Clone, G: ForwardDecay> Mergeable for WeightedReservoir<T, G> {
    /// Keys are independent across items, so the sample of the union is the
    /// `k` best-ranked entries of the union of samples.
    ///
    /// "Independent across items" requires the shards themselves to be
    /// seeded differently; same-seed shards re-draw the same uniforms and
    /// the merged sample is no longer distributed like a single-stream run.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "sample sizes must match");
        assert_eq!(self.landmark, other.landmark, "landmarks must match");
        for e in other.sample() {
            let rank = e.key;
            if self.heap.len() == self.k {
                let &(OrdF64(worst), _) = self.heap.peek().expect("non-empty");
                if rank >= worst {
                    continue;
                }
            }
            self.insert_entry(rank, e.clone());
        }
        self.n += other.n;
    }
}

/// Corollary 1 of the paper: a size-`k` sample under **backward exponential
/// decay** with arbitrary timestamps in `O(k)` space — simply a
/// [`WeightedReservoir`] under the coinciding forward exponential decay.
pub fn exp_decay_sample<T: Clone>(
    alpha: f64,
    landmark: impl Into<Timestamp>,
    k: usize,
    seed: u64,
) -> WeightedReservoir<T, Exponential> {
    let landmark = landmark.into();
    WeightedReservoir::new(Exponential::new(alpha), landmark, k, seed)
}

// ---------------------------------------------------------------------------
// Efraimidis–Spirakis with exponential jumps (algorithm A-ES)
// ---------------------------------------------------------------------------

/// Weighted reservoir sampling with the *exponential jumps* acceleration of
/// Efraimidis & Spirakis (algorithm A-ES): instead of drawing one random
/// key per item, draw the total **weight to skip** until the next reservoir
/// insertion. Produces the same sample distribution as
/// [`WeightedReservoir`], with O(1) amortized work and
/// O(k·log(n)/k)-ish random draws overall — the paper's remark that
/// reservoir procedures "can be accelerated by using an appropriate random
/// distribution to determine the total weight of subsequent items to skip
/// over" (Section V-A) applied to the without-replacement sampler.
///
/// Weights are handled relative to a moving landmark
/// ([`Renormalizer`]), and keys are kept as `ln p`, so exponential decay on
/// long streams stays in range.
#[derive(Debug, Clone)]
pub struct JumpWeightedReservoir<T> {
    k: usize,
    renorm: Renormalizer,
    /// (ln-domain key, item, arrival time); the minimum key is tracked
    /// lazily.
    entries: Vec<(f64, T, Timestamp)>,
    /// Index of the minimum-key entry (the threshold), or `usize::MAX`.
    min_idx: usize,
    /// Remaining weight (current-landmark units) to skip before the next
    /// insertion; `None` until the reservoir fills.
    skip: Option<f64>,
    rng: SmallRng,
    n: u64,
    draws: u64,
}

impl<T: Clone> JumpWeightedReservoir<T> {
    /// Creates a jump-accelerated weighted reservoir of size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(landmark: impl Into<Timestamp>, k: usize, seed: u64) -> Self {
        let landmark = landmark.into();
        assert!(k > 0);
        Self {
            k,
            renorm: Renormalizer::new(landmark),
            entries: Vec::with_capacity(k),
            min_idx: usize::MAX,
            skip: None,
            rng: SmallRng::seed_from_u64(seed),
            n: 0,
            draws: 0,
        }
    }

    fn refresh_min(&mut self) {
        self.min_idx = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0))
            .map(|(i, _)| i)
            .unwrap_or(usize::MAX);
    }

    /// Draws the next weight-to-skip for threshold `ln_t` (= ln of the
    /// smallest key).
    fn draw_skip(&mut self, ln_t: f64) -> f64 {
        self.draws += 1;
        let u = open_unit(&mut self.rng);
        u.ln() / ln_t // both negative → positive weight
    }

    /// Offers `(t_i, item)` under forward decay `g` (pre-landmark
    /// timestamps clamp to the landmark). O(1) amortized outside
    /// insertions.
    pub fn update<G: ForwardDecay>(&mut self, g: &G, t_i: impl Into<Timestamp>, item: &T) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        self.n += 1;
        if let Some(factor) = self.renorm.pre_update(g, t_i) {
            // Weights scale by `factor`; keys p = u^{1/w} become p^{1/factor}
            // (ln p scales by 1/factor) and pending skip weight scales too.
            for e in &mut self.entries {
                e.0 /= factor;
            }
            if let Some(s) = &mut self.skip {
                *s *= factor;
            }
        }
        let w = g.g(t_i - self.renorm.landmark());
        if w <= 0.0 {
            return;
        }
        if self.entries.len() < self.k {
            // Fill phase: plain ES keys.
            self.draws += 1;
            let u = open_unit(&mut self.rng);
            let ln_p = u.ln() / w;
            self.entries.push((ln_p, item.clone(), t_i));
            if self.entries.len() == self.k {
                self.refresh_min();
                let ln_t = self.entries[self.min_idx].0;
                let s = self.draw_skip(ln_t);
                self.skip = Some(s);
            }
            return;
        }
        let skip = self.skip.as_mut().expect("set when reservoir filled");
        if *skip > w {
            *skip -= w;
            return;
        }
        // This item crosses the jump boundary: insert it with a key drawn
        // uniformly from (T^w, 1), replacing the threshold entry.
        let ln_t = self.entries[self.min_idx].0;
        let t_pow_w = (w * ln_t).exp(); // may underflow to 0 — fine
        self.draws += 1;
        let u = open_unit(&mut self.rng);
        let key = t_pow_w + u * (1.0 - t_pow_w);
        let ln_p = key.ln() / w;
        self.entries[self.min_idx] = (ln_p, item.clone(), t_i);
        self.refresh_min();
        let ln_t = self.entries[self.min_idx].0;
        let s = self.draw_skip(ln_t);
        self.skip = Some(s);
    }

    /// The current sample.
    pub fn sample(&self) -> Vec<(&T, Timestamp)> {
        self.entries.iter().map(|(_, item, t)| (item, *t)).collect()
    }

    /// Items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Random numbers drawn so far — the quantity the jumps reduce.
    pub fn random_draws(&self) -> u64 {
        self.draws
    }

    /// Sample capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

// ---------------------------------------------------------------------------
// Priority sampling (Theorem 6)
// ---------------------------------------------------------------------------

/// Priority sampling (Alon, Duffield, Lund, Thorup): item `i` gets priority
/// `q_i = w_i / u_i`; the sample is the `k` items of highest priority, and
/// the `(k+1)`-th priority `τ` yields the unbiased subset-sum estimator
/// `ŵ_i = max(w_i, τ)` for sampled items.
///
/// Priorities are held as `ln q_i = ln w_i − ln u_i`. The estimator operates
/// on *decay-normalized* weights `w_i / g(t − L)` (i.e. the decayed weights
/// at query time), keeping everything in `f64` range.
#[derive(Debug, Clone)]
pub struct PrioritySampler<T, G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    k: usize,
    /// Min-heap of the k+1 largest priorities: `Reverse` on ln q.
    heap: BinaryHeap<Reverse<(OrdF64, u64)>>,
    entries: Vec<Option<(SampleEntry<T>, f64)>>, // (entry, ln_w)
    free: Vec<u64>,
    rng: SmallRng,
    n: u64,
    accepted: u64,
}

impl<T: Clone, G: ForwardDecay> PrioritySampler<T, G> {
    /// Creates a priority sampler of size `k` (internally keeps `k + 1`
    /// entries to know the threshold `τ`).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(g: G, landmark: impl Into<Timestamp>, k: usize, seed: u64) -> Self {
        let landmark = landmark.into();
        assert!(k > 0);
        Self {
            g,
            landmark,
            k,
            heap: BinaryHeap::with_capacity(k + 2),
            entries: Vec::with_capacity(k + 2),
            free: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            n: 0,
            accepted: 0,
        }
    }

    /// Offers `(t_i, item)`; pre-landmark timestamps clamp to the landmark.
    /// O(log k).
    pub fn update(&mut self, t_i: impl Into<Timestamp>, item: &T) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.landmark);
        let ln_w = self.g.ln_g(t_i - self.landmark);
        self.offer(t_i, item, ln_w);
    }

    /// Offers a columnar batch: `ts[i]` pairs with `items[i]`.
    ///
    /// Identical in realized draws to per-item [`update`](Self::update)
    /// calls; `ln_g` runs through a
    /// [`WeightKernel`](crate::kernel::WeightKernel) so duplicated clock
    /// ticks skip the transcendental.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    pub fn update_batch(&mut self, ts: &[Timestamp], items: &[T]) {
        assert_eq!(ts.len(), items.len(), "columnar batch slices must align");
        let mut k = crate::kernel::WeightKernel::new(self.g.clone());
        for (&t_i, item) in ts.iter().zip(items) {
            let t_i = crate::decay::clamp_to_landmark(t_i, self.landmark);
            let ln_w = k.ln_g(t_i - self.landmark);
            self.offer(t_i, item, ln_w);
        }
    }

    /// The shared tail of [`update`](Self::update) /
    /// [`update_batch`](Self::update_batch), after `ln_w` is known.
    fn offer(&mut self, t_i: Timestamp, item: &T, ln_w: f64) {
        self.n += 1;
        if ln_w == f64::NEG_INFINITY {
            return;
        }
        let u = open_unit(&mut self.rng);
        let ln_q = ln_w - u.ln(); // ln(w/u)
        if self.heap.len() == self.k + 1 {
            let &Reverse((OrdF64(worst), _)) = self.heap.peek().expect("non-empty");
            if ln_q <= worst {
                return;
            }
        }
        self.accepted += 1;
        let slot = if let Some(s) = self.free.pop() {
            self.entries[s as usize] = Some((
                SampleEntry {
                    item: item.clone(),
                    t: t_i,
                    key: ln_q,
                },
                ln_w,
            ));
            s
        } else {
            self.entries.push(Some((
                SampleEntry {
                    item: item.clone(),
                    t: t_i,
                    key: ln_q,
                },
                ln_w,
            )));
            (self.entries.len() - 1) as u64
        };
        self.heap.push(Reverse((OrdF64(ln_q), slot)));
        if self.heap.len() > self.k + 1 {
            let Reverse((_, evicted)) = self.heap.pop().expect("non-empty");
            self.entries[evicted as usize] = None;
            self.free.push(evicted);
        }
    }

    /// The current sample: the `k` highest-priority items (the threshold
    /// item is excluded).
    pub fn sample(&self) -> Vec<&SampleEntry<T>> {
        let mut all: Vec<&(SampleEntry<T>, f64)> =
            self.entries.iter().filter_map(|e| e.as_ref()).collect();
        if all.len() > self.k {
            // Drop the single lowest-priority entry (the threshold).
            let (min_idx, _) = all
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.key.total_cmp(&b.0.key))
                .expect("non-empty");
            all.swap_remove(min_idx);
        }
        all.into_iter().map(|(e, _)| e).collect()
    }

    /// Unbiased estimate of the **decayed sum of weights** at query time
    /// `t`: `E[estimate] = Σ_i g(t_i − L)/g(t − L)` (the decayed count).
    /// Per sampled item the estimator is `max(w_i, τ)` on decay-normalized
    /// weights.
    pub fn estimate_decayed_count(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.estimate_selection(t, |_| true)
    }

    /// Unbiased estimate of the decayed count restricted to items matching
    /// `pred` — the "unbiased estimator for any selection query" that
    /// priority sampling was designed for (Alon et al., cited in
    /// Section V-B). `E[estimate] = Σ_{i: pred(iᵢ)} g(t_i − L)/g(t − L)`.
    pub fn estimate_selection(&self, t: impl Into<Timestamp>, pred: impl Fn(&T) -> bool) -> f64 {
        let t = t.into();
        let ln_denom = self.g.ln_g(t - self.landmark);
        let mut all: Vec<(f64, f64, bool)> = self
            .entries
            .iter()
            .filter_map(|e| e.as_ref())
            .map(|(e, ln_w)| (e.key, *ln_w, pred(&e.item)))
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        if all.len() <= self.k {
            // Fewer than k items seen: the sample is exact.
            return all
                .iter()
                .filter(|(_, _, hit)| *hit)
                .map(|(_, ln_w, _)| (ln_w - ln_denom).exp())
                .sum();
        }
        // Threshold τ = lowest priority among the k+1 kept.
        let (tau_ln_q, _, _) = all
            .iter()
            .copied()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty");
        all.sort_by(|a, b| b.0.total_cmp(&a.0));
        all.truncate(self.k);
        all.iter()
            .filter(|(_, _, hit)| *hit)
            .map(|(_, ln_w, _)| (ln_w.max(tau_ln_q) - ln_denom).exp())
            .sum()
    }

    /// Number of items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Sample capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl<T: Clone, G: ForwardDecay> Mergeable for PrioritySampler<T, G> {
    /// Priorities are independent across items: keep the `k + 1` highest of
    /// the union.
    ///
    /// Shards must be constructed with **distinct seeds**. Same-seed shards
    /// draw identical uniforms, duplicating priorities across the union;
    /// the merged threshold `τ` then sits systematically high and the
    /// Horvitz–Thompson estimate ([`PrioritySampler::estimate_decayed_count`])
    /// biases upward — the differential harness measured ≈ 1.9× on
    /// three same-seed shards of a 266-item stream.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "sample sizes must match");
        assert_eq!(self.landmark, other.landmark, "landmarks must match");
        for e in other.entries.iter().filter_map(|e| e.as_ref()) {
            let (entry, ln_w) = e;
            let ln_q = entry.key;
            if self.heap.len() == self.k + 1 {
                let &Reverse((OrdF64(worst), _)) = self.heap.peek().expect("non-empty");
                if ln_q <= worst {
                    continue;
                }
            }
            let slot = if let Some(s) = self.free.pop() {
                self.entries[s as usize] = Some((entry.clone(), *ln_w));
                s
            } else {
                self.entries.push(Some((entry.clone(), *ln_w)));
                (self.entries.len() - 1) as u64
            };
            self.heap.push(Reverse((OrdF64(ln_q), slot)));
            if self.heap.len() > self.k + 1 {
                let Reverse((_, evicted)) = self.heap.pop().expect("non-empty");
                self.entries[evicted as usize] = None;
                self.free.push(evicted);
            }
        }
        self.n += other.n;
    }
}

// ---------------------------------------------------------------------------
// Aggarwal's biased reservoir (backward-decay baseline)
// ---------------------------------------------------------------------------

/// Aggarwal's biased reservoir sampling (VLDB 2006) for backward exponential
/// decay with rate `λ` — the baseline the paper compares against in its
/// sampling experiments.
///
/// Limitations the paper highlights (and Corollary 1 removes): the method
/// assumes items arrive one per time unit (sequential integer timestamps),
/// and the achievable sample size is tied to `1/λ`.
///
/// Algorithm: the reservoir has capacity `n_max = ⌈1/λ⌉`. Every arrival is
/// inserted; with probability `fill = len/n_max` it replaces a uniformly
/// random resident, otherwise the reservoir grows. In steady state the
/// inclusion probability of the item that arrived `a` steps ago is
/// approximately `e^{−λa}` times that of the newest item.
#[derive(Debug, Clone)]
pub struct BiasedReservoir<T> {
    lambda: f64,
    n_max: usize,
    reservoir: Vec<T>,
    n: u64,
    rng: SmallRng,
}

impl<T: Clone> BiasedReservoir<T> {
    /// Creates a biased reservoir for bias rate `λ` (capacity `⌈1/λ⌉`).
    ///
    /// # Panics
    /// Panics unless `0 < λ ≤ 1`.
    pub fn new(lambda: f64, seed: u64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "λ must be in (0, 1]");
        let n_max = (1.0 / lambda).ceil() as usize;
        Self {
            lambda,
            n_max,
            reservoir: Vec::with_capacity(n_max),
            n: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Offers the next item (arrivals are implicitly at t = 1, 2, 3, …).
    pub fn update(&mut self, item: T) {
        self.n += 1;
        let fill = self.reservoir.len() as f64 / self.n_max as f64;
        if self.reservoir.len() < self.n_max && self.rng.gen::<f64>() >= fill {
            self.reservoir.push(item);
        } else {
            let slot = self.rng.gen_range(0..self.reservoir.len());
            self.reservoir[slot] = item;
        }
    }

    /// The current (biased) sample.
    pub fn sample(&self) -> &[T] {
        &self.reservoir
    }

    /// The bias rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of items offered so far.
    pub fn items_seen(&self) -> u64 {
        self.n
    }

    /// Reservoir capacity `⌈1/λ⌉` — note it is *dictated* by λ, unlike the
    /// freely chosen `k` of the forward-decay samplers.
    pub fn capacity(&self) -> usize {
        self.n_max
    }
}

// ----- unified Summary API ------------------------------------------------

use crate::summary::{Summary, SummaryStats};

impl<T: Clone, G: ForwardDecay> WithReplacementSampler<T, G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }
}

/// Records in, the drawn sample (with replacement) out.
impl<T: Clone, G: ForwardDecay> Summary for WithReplacementSampler<T, G> {
    type Update = T;
    type Output = Vec<T>;

    fn landmark(&self) -> Timestamp {
        self.landmark
    }

    fn update_at(&mut self, t_i: Timestamp, item: T) {
        self.update(t_i, &item);
    }

    fn query_at(&self, _t: Timestamp) -> Vec<T> {
        self.sample().into_iter().cloned().collect()
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: 0, // log-domain weights: never renormalizes
            occupancy: if self.n > 0 {
                self.capacity() as u64
            } else {
                0
            },
            capacity: self.capacity() as u64,
            items: self.n,
            // Each random draw replaces a chain's held item.
            accepted: self.draws,
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        // Every chain that saw a positive-weight item must hold one, and
        // its replacement threshold must be a real number.
        for (i, chain) in self.chains.iter().enumerate() {
            if chain.item.is_some() && chain.ln_threshold.is_nan() {
                return Err(format!(
                    "WithReplacementSampler chain {i} has NaN threshold"
                ));
            }
            if chain.item.is_none() && !self.total.is_empty() {
                return Err(format!(
                    "WithReplacementSampler chain {i} empty despite mass"
                ));
            }
        }
        Ok(())
    }
}

impl<T: Clone, G: ForwardDecay> WeightedReservoir<T, G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }
}

/// Records in, the reservoir sample (without replacement) out.
impl<T: Clone, G: ForwardDecay> Summary for WeightedReservoir<T, G> {
    type Update = T;
    type Output = Vec<T>;

    fn landmark(&self) -> Timestamp {
        self.landmark
    }

    fn update_at(&mut self, t_i: Timestamp, item: T) {
        self.update(t_i, &item);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], items: &[T]) {
        self.update_batch(ts, items);
    }

    fn query_at(&self, _t: Timestamp) -> Vec<T> {
        self.sample().into_iter().map(|e| e.item.clone()).collect()
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: 0,
            occupancy: self.heap.len() as u64,
            capacity: self.k as u64,
            items: self.n,
            accepted: self.accepted,
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        if self.heap.len() > self.k {
            return Err(format!(
                "WeightedReservoir holds {} entries, k = {}",
                self.heap.len(),
                self.k
            ));
        }
        Ok(())
    }
}

impl<T: Clone, G: ForwardDecay> PrioritySampler<T, G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.landmark
    }
}

/// Records in, the Horvitz–Thompson estimate of the decayed count out;
/// the sample itself comes from the inherent [`sample`] method.
///
/// [`sample`]: PrioritySampler::sample
impl<T: Clone, G: ForwardDecay> Summary for PrioritySampler<T, G> {
    type Update = T;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark
    }

    fn update_at(&mut self, t_i: Timestamp, item: T) {
        self.update(t_i, &item);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], items: &[T]) {
        self.update_batch(ts, items);
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.estimate_decayed_count(t)
    }

    fn stats(&self) -> SummaryStats {
        SummaryStats {
            renormalizations: 0,
            occupancy: self.heap.len() as u64,
            // k + 1 kept internally: the extra entry is the threshold τ.
            capacity: (self.k + 1) as u64,
            items: self.n,
            accepted: self.accepted,
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        if self.heap.len() > self.k + 1 {
            return Err(format!(
                "PrioritySampler holds {} entries, k + 1 = {}",
                self.heap.len(),
                self.k + 1
            ));
        }
        Ok(())
    }
}

impl<T: Clone> Mergeable for BiasedReservoir<T> {
    /// Distribution-level merge: keeps each slot from the side whose
    /// stream it represents with probability proportional to the two
    /// streams' item counts — the same subsampling argument as
    /// [`ReservoirSampler`]. The bias rate must match; the merged
    /// reservoir approximates the biased sample of the interleaved
    /// stream (exact only when both sides saw their items at the same
    /// rate, as in a hash-partitioned shard split).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.lambda, other.lambda, "bias rates must match");
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.reservoir = other.reservoir.clone();
            self.n = other.n;
            return;
        }
        let p_other = other.n as f64 / (self.n + other.n) as f64;
        let keep = self.reservoir.len().min(self.n_max);
        for i in 0..keep {
            if self.rng.gen_range(0.0..1.0) < p_other && !other.reservoir.is_empty() {
                let j = self.rng.gen_range(0..other.reservoir.len());
                self.reservoir[i] = other.reservoir[j].clone();
            }
        }
        while self.reservoir.len() < self.n_max {
            if self.rng.gen_range(0.0..1.0) < p_other && !other.reservoir.is_empty() {
                let j = self.rng.gen_range(0..other.reservoir.len());
                self.reservoir.push(other.reservoir[j].clone());
            } else {
                break;
            }
        }
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Monomial, NoDecay};
    use std::collections::HashMap;

    #[test]
    fn stats_tracks_sampler_acceptance_rate() {
        // Uniform weights: acceptances follow the coupon-collector curve
        // k·H_n ≪ n, so the live acceptance rate collapses as the stream
        // grows — the signal the telemetry layer surfaces.
        let mut r = WeightedReservoir::new(NoDecay, 0.0, 10, 42);
        for i in 0..10_000u64 {
            r.update(i as f64 + 1.0, &i);
        }
        let s = Summary::stats(&r);
        assert_eq!(s.items, 10_000);
        assert_eq!(s.occupancy, 10);
        assert_eq!(s.capacity, 10);
        assert!(s.accepted >= 10);
        let rate = s.acceptance_rate().unwrap();
        assert!(rate < 0.1, "acceptance rate {rate} should collapse");
        assert_eq!(s.occupancy_fraction(), Some(1.0));

        let mut p = PrioritySampler::new(NoDecay, 0.0, 10, 7);
        for i in 0..10_000u64 {
            p.update(i as f64 + 1.0, &i);
        }
        let ps = Summary::stats(&p);
        assert_eq!(ps.items, 10_000);
        assert_eq!(ps.occupancy, 11); // k + 1 with the threshold entry
        assert!(ps.acceptance_rate().unwrap() < 0.1);
    }

    #[test]
    fn reservoir_uniformity() {
        // Each of 20 items should appear in a k=5 sample with prob 1/4.
        let trials = 4000;
        let mut counts = [0u32; 20];
        for seed in 0..trials {
            let mut r = ReservoirSampler::new(5, seed);
            for i in 0..20u32 {
                r.update(i);
            }
            for &x in r.sample() {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * 5.0 / 20.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.12, "item {i}: count {c}, expected {expected}");
        }
    }

    #[test]
    fn reservoir_short_stream_keeps_everything() {
        let mut r = ReservoirSampler::new(10, 1);
        for i in 0..7 {
            r.update(i);
        }
        let mut s: Vec<i32> = r.sample().to_vec();
        s.sort();
        assert_eq!(s, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn reservoir_skip_does_not_starve() {
        // With a long stream, late items must still enter the sample.
        let mut r = ReservoirSampler::new(100, 7);
        for i in 0..100_000u64 {
            r.update(i);
        }
        let late = r.sample().iter().filter(|&&x| x > 50_000).count();
        assert!(late > 25, "only {late} late items in sample");
        assert_eq!(r.items_seen(), 100_000);
    }

    #[test]
    fn reservoir_merge_is_uniform() {
        let trials = 3000;
        let mut counts = [0u32; 20];
        for seed in 0..trials {
            let mut a = ReservoirSampler::new(4, seed * 2 + 1);
            let mut b = ReservoirSampler::new(4, seed * 2 + 2);
            for i in 0..10u32 {
                a.update(i);
            }
            for i in 10..20u32 {
                b.update(i);
            }
            a.merge_from(&b);
            assert_eq!(a.sample().len(), 4);
            for &x in a.sample() {
                counts[x as usize] += 1;
            }
        }
        let expected = trials as f64 * 4.0 / 20.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "item {i}: count {c}, expected {expected}");
        }
    }

    #[test]
    fn with_replacement_probabilities_match_weights() {
        // Theorem 5: P(final = i) = w_i / W. Quadratic decay over 4 items.
        let g = Monomial::quadratic();
        let items = [1.0, 2.0, 3.0, 4.0]; // t_i with L = 0 → weights 1,4,9,16
        let w_total = 1.0 + 4.0 + 9.0 + 16.0;
        let trials = 30_000;
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for seed in 0..trials {
            let mut s = WithReplacementSampler::new(g, 0.0, 1, seed);
            for (idx, &t) in items.iter().enumerate() {
                s.update(t, &(idx as u64));
            }
            *counts.entry(*s.sample()[0]).or_default() += 1;
        }
        for (idx, &t) in items.iter().enumerate() {
            let w = t * t;
            let expected = trials as f64 * w / w_total;
            let c = *counts.get(&(idx as u64)).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() < 4.0 * expected.sqrt() + 10.0,
                "item {idx}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn with_replacement_survives_exponential_decay_long_stream() {
        let g = Exponential::new(1.0);
        let mut s = WithReplacementSampler::new(g, 0.0, 10, 3);
        for i in 0..50_000u64 {
            s.update(i as f64 * 0.5, &i);
        }
        // All chains must hold very recent items: the newest item carries
        // more weight than everything older combined (e^{0.5} − 1 < 1… in
        // fact Σ older < newest/(e^{0.5}−1) ≈ 1.54 × newest, so "recent",
        // not necessarily the last).
        for &item in s.sample().iter() {
            assert!(*item > 49_900, "stale chain item {item}");
        }
        assert!(s.ln_total_weight().is_finite());
    }

    #[test]
    fn with_replacement_merge_distribution() {
        // Merged chains must still satisfy P(i) = w_i / W over the union.
        let g = NoDecay; // uniform weights make the math easy: P = 1/20
        let trials = 20_000;
        let mut counts = [0u32; 20];
        for seed in 0..trials {
            let mut a = WithReplacementSampler::new(g, 0.0, 1, seed * 2 + 1);
            let mut b = WithReplacementSampler::new(g, 0.0, 1, seed * 2 + 2);
            for i in 0..15u64 {
                a.update(i as f64, &i);
            }
            for i in 15..20u64 {
                b.update(i as f64, &i);
            }
            a.merge_from(&b);
            counts[*a.sample()[0] as usize] += 1;
        }
        let expected = trials as f64 / 20.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "item {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn weighted_reservoir_k1_matches_weights() {
        // For k = 1, ES sampling reduces to P(i) = w_i / W exactly.
        let g = Monomial::new(1.0); // weights = t_i
        let items = [1.0, 2.0, 3.0, 4.0];
        let w_total: f64 = items.iter().sum();
        let trials = 30_000;
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for seed in 0..trials {
            let mut s = WeightedReservoir::new(g, 0.0, 1, seed);
            for (idx, &t) in items.iter().enumerate() {
                s.update(t, &(idx as u64));
            }
            *counts.entry(s.sample()[0].item).or_default() += 1;
        }
        for (idx, &t) in items.iter().enumerate() {
            let expected = trials as f64 * t / w_total;
            let c = *counts.get(&(idx as u64)).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() < 4.0 * expected.sqrt() + 10.0,
                "item {idx}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn weighted_reservoir_no_duplicates_and_correct_size() {
        let g = Monomial::quadratic();
        let mut s = WeightedReservoir::new(g, 0.0, 50, 11);
        for i in 0..10_000u64 {
            s.update(1.0 + i as f64 * 0.01, &i);
        }
        let sample = s.sample();
        assert_eq!(sample.len(), 50);
        let mut ids: Vec<u64> = sample.iter().map(|e| e.item).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50, "duplicates in a without-replacement sample");
    }

    #[test]
    fn weighted_reservoir_biases_toward_recent() {
        let g = Exponential::new(0.01);
        let mut s = WeightedReservoir::new(g, 0.0, 200, 5);
        for i in 0..20_000u64 {
            s.update(i as f64 * 0.1, &i);
        }
        // With half-life ≈ 69 s over a 2000 s stream, nearly all samples
        // should land in the last quarter.
        let recent = s.sample().iter().filter(|e| e.item > 15_000).count();
        assert!(recent > 180, "only {recent}/200 samples recent");
    }

    #[test]
    fn weighted_reservoir_merge_matches_single_stream_distribution() {
        // k=1 check again, but sharded across two samplers then merged.
        let g = Monomial::new(1.0);
        let trials = 30_000;
        let mut heavy = 0u32;
        for seed in 0..trials {
            let mut a = WeightedReservoir::new(g, 0.0, 1, seed * 2 + 1);
            let mut b = WeightedReservoir::new(g, 0.0, 1, seed * 2 + 2);
            a.update(1.0, &1u64); // weight 1
            b.update(9.0, &9u64); // weight 9
            a.merge_from(&b);
            if a.sample()[0].item == 9 {
                heavy += 1;
            }
        }
        let frac = heavy as f64 / trials as f64;
        assert!((frac - 0.9).abs() < 0.02, "P(heavy) = {frac}, want 0.9");
    }

    #[test]
    fn exp_decay_sampler_arbitrary_timestamps() {
        // Corollary 1: arbitrary (non-integer, out-of-order) timestamps.
        let mut s = exp_decay_sample::<u64>(0.5, 0.0, 10, 42);
        let ts = [5.3, 1.1, 9.9, 2.2, 9.8, 0.4, 7.7, 9.95, 3.3, 8.8, 9.97, 6.1];
        for (i, &t) in ts.iter().enumerate() {
            s.update(t, &(i as u64));
        }
        assert_eq!(s.sample().len(), 10);
    }

    #[test]
    fn priority_sampler_estimator_is_unbiased() {
        // E[estimate of decayed count] should match the true decayed count.
        let g = Monomial::quadratic();
        let landmark = 0.0;
        let items: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        let t_q = 10.0;
        let truth: f64 = items.iter().map(|&t| g.weight(landmark, t, t_q)).sum();
        let trials = 2000;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut s = PrioritySampler::new(g, landmark, 10, seed);
            for (i, &t) in items.iter().enumerate() {
                s.update(t, &(i as u64));
            }
            sum += s.estimate_decayed_count(t_q);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "estimator mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn priority_sampler_exact_below_k() {
        let g = NoDecay;
        let mut s = PrioritySampler::new(g, 0.0, 10, 1);
        for i in 0..5u64 {
            s.update(i as f64, &i);
        }
        assert_eq!(s.sample().len(), 5);
        assert!((s.estimate_decayed_count(10.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn priority_sampler_sample_size_is_k() {
        let g = Monomial::new(1.0);
        let mut s = PrioritySampler::new(g, 0.0, 25, 9);
        for i in 0..1000u64 {
            s.update(1.0 + i as f64, &i);
        }
        assert_eq!(s.sample().len(), 25);
    }

    #[test]
    fn priority_sampler_merge_preserves_estimator() {
        let g = Monomial::new(1.0);
        let landmark = 0.0;
        let t_q = 20.0;
        let items: Vec<f64> = (1..=200).map(|i| i as f64 * 0.1).collect();
        let truth: f64 = items.iter().map(|&t| g.weight(landmark, t, t_q)).sum();
        let trials = 2000;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut a = PrioritySampler::new(g, landmark, 10, seed * 2 + 1);
            let mut b = PrioritySampler::new(g, landmark, 10, seed * 2 + 2);
            for (i, &t) in items.iter().enumerate() {
                if i % 2 == 0 {
                    a.update(t, &(i as u64));
                } else {
                    b.update(t, &(i as u64));
                }
            }
            a.merge_from(&b);
            sum += a.estimate_decayed_count(t_q);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.08,
            "merged estimator mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn biased_reservoir_prefers_recent() {
        let mut counts_old = 0u64;
        let mut counts_new = 0u64;
        for seed in 0..200 {
            let mut r = BiasedReservoir::new(0.01, seed);
            for i in 0..10_000u64 {
                r.update(i);
            }
            for &x in r.sample() {
                if x < 5_000 {
                    counts_old += 1;
                } else {
                    counts_new += 1;
                }
            }
        }
        assert!(
            counts_new > counts_old * 5,
            "bias too weak: old {counts_old}, new {counts_new}"
        );
    }

    #[test]
    fn biased_reservoir_capacity_tied_to_lambda() {
        let r = BiasedReservoir::<u64>::new(0.001, 1);
        assert_eq!(r.capacity(), 1000);
        let mut r2 = BiasedReservoir::new(0.1, 1);
        for i in 0..1000u64 {
            r2.update(i);
        }
        assert!(r2.sample().len() <= 10);
    }

    #[test]
    fn biased_reservoir_inclusion_decays_exponentially() {
        // Empirical check of the e^{-λa} shape: compare inclusion rates at
        // two ages; their ratio should be ≈ e^{λ·Δa}.
        let lambda = 0.02;
        let trials = 3000;
        let mut inc_recent = 0u32; // age ~50
        let mut inc_old = 0u32; // age ~150
        for seed in 0..trials {
            let mut r = BiasedReservoir::new(lambda, seed);
            for i in 0..1000u64 {
                r.update(i);
            }
            if r.sample().contains(&949) {
                inc_recent += 1;
            }
            if r.sample().contains(&849) {
                inc_old += 1;
            }
        }
        let ratio = inc_recent as f64 / inc_old.max(1) as f64;
        let expected = (lambda * 100.0).exp(); // ≈ 7.39
        assert!(
            (ratio / expected).ln().abs() < 0.5,
            "ratio {ratio}, expected ≈ {expected}"
        );
    }

    #[test]
    fn with_replacement_skip_draws_few_randoms() {
        // Uniform weights, n items: each chain replaces ~H_n ≈ ln n times,
        // so draws ≈ s·ln n ≪ s·n (the naive per-tuple coin).
        let g = NoDecay;
        let (s, n) = (10usize, 100_000u64);
        let mut sampler = WithReplacementSampler::new(g, 0.0, s, 5);
        for i in 0..n {
            sampler.update(i as f64, &i);
        }
        assert_eq!(sampler.items_seen(), n);
        let budget = (s as f64) * (n as f64).ln() * 4.0;
        assert!(
            (sampler.random_draws() as f64) < budget,
            "skip thresholds drew {} randoms (budget {budget})",
            sampler.random_draws()
        );
    }

    #[test]
    fn jump_reservoir_k1_matches_weights() {
        // Same distribution check as the heap-based sampler: for k = 1,
        // P(i) = w_i / W.
        let g = Monomial::new(1.0); // weights = t_i
        let items = [1.0, 2.0, 3.0, 4.0];
        let w_total: f64 = items.iter().sum();
        let trials = 30_000;
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for seed in 0..trials {
            let mut s = JumpWeightedReservoir::new(0.0, 1, seed);
            for (idx, &t) in items.iter().enumerate() {
                s.update(&g, t, &(idx as u64));
            }
            *counts.entry(*s.sample()[0].0).or_default() += 1;
        }
        for (idx, &t) in items.iter().enumerate() {
            let expected = trials as f64 * t / w_total;
            let c = *counts.get(&(idx as u64)).unwrap_or(&0) as f64;
            assert!(
                (c - expected).abs() < 4.0 * expected.sqrt() + 10.0,
                "item {idx}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn jump_reservoir_draws_far_fewer_randoms() {
        let g = NoDecay;
        let n = 200_000u64;
        let mut s = JumpWeightedReservoir::new(0.0, 100, 3);
        for i in 0..n {
            s.update(&g, i as f64, &i);
        }
        assert_eq!(s.sample().len(), 100);
        // Plain ES draws n randoms; jumps draw O(k log(n/k)).
        assert!(
            s.random_draws() < n / 50,
            "jumps drew {} randoms for {n} items",
            s.random_draws()
        );
    }

    #[test]
    fn jump_reservoir_matches_heap_sampler_distribution() {
        // Both samplers implement the same distribution; compare the
        // empirical inclusion rate of a heavy item.
        let g = Monomial::quadratic();
        let trials = 4_000;
        let (mut inc_jump, mut inc_heap) = (0u32, 0u32);
        for seed in 0..trials {
            let mut j = JumpWeightedReservoir::new(0.0, 5, seed);
            let mut h = WeightedReservoir::new(g, 0.0, 5, seed + 1_000_000);
            for i in 1..=50u64 {
                let t = i as f64;
                j.update(&g, t, &i);
                h.update(t, &i);
            }
            if j.sample().iter().any(|(&item, _)| item == 50) {
                inc_jump += 1;
            }
            if h.sample().iter().any(|e| e.item == 50) {
                inc_heap += 1;
            }
        }
        let (pj, ph) = (
            inc_jump as f64 / trials as f64,
            inc_heap as f64 / trials as f64,
        );
        assert!(
            (pj - ph).abs() < 0.05,
            "inclusion rates diverge: jump {pj}, heap {ph}"
        );
    }

    #[test]
    fn jump_reservoir_survives_exponential_decay() {
        let g = Exponential::new(1.0);
        let mut s = JumpWeightedReservoir::new(0.0, 20, 9);
        for i in 0..100_000u64 {
            s.update(&g, i as f64 * 0.1, &i);
        }
        let sample = s.sample();
        assert_eq!(sample.len(), 20);
        // Under e^{t} weights over 10 000 s, everything sampled is recent.
        assert!(sample.iter().all(|(_, t)| *t > 9_990.0));
    }

    #[test]
    fn priority_selection_estimator_is_unbiased() {
        // Estimate the decayed count of the EVEN items only.
        let g = Monomial::new(1.0);
        let landmark = 0.0;
        let items: Vec<f64> = (1..=100).map(|i| i as f64 * 0.1).collect();
        let t_q = 10.0;
        let truth: f64 = items
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, &t)| g.weight(landmark, t, t_q))
            .sum();
        let trials = 3_000;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut s = PrioritySampler::new(g, landmark, 15, seed);
            for (i, &t) in items.iter().enumerate() {
                s.update(t, &(i as u64));
            }
            sum += s.estimate_selection(t_q, |&i| i % 2 == 0);
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.06,
            "selection estimator mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn zero_weight_items_are_never_sampled() {
        // Monomial weight at the landmark is 0 — such items cannot appear.
        let g = Monomial::quadratic();
        let mut wr = WeightedReservoir::new(g, 0.0, 5, 2);
        let mut ps = PrioritySampler::new(g, 0.0, 5, 2);
        let mut sr = WithReplacementSampler::new(g, 0.0, 5, 2);
        wr.update(0.0, &0u64);
        ps.update(0.0, &0u64);
        sr.update(0.0, &0u64);
        for i in 1..=10u64 {
            wr.update(i as f64, &i);
            ps.update(i as f64, &i);
            sr.update(i as f64, &i);
        }
        assert!(wr.sample().iter().all(|e| e.item != 0));
        assert!(ps.sample().iter().all(|e| e.item != 0));
        assert!(sr.sample().iter().all(|&&i| i != 0));
    }
}
