//! Heavy hitters under forward decay (Section IV-C, Theorem 2).
//!
//! Definition 7: the decayed count of value `v` is
//! `d_v = Σ_{v_i = v} g(t_i − L) / g(t − L)`; the φ-heavy-hitters are the
//! values with `d_v ≥ φ·C` where `C` is the total decayed count. Factoring
//! out `g(t − L)` reduces the problem to *weighted* heavy hitters over the
//! static per-item weights `g(t_i − L)`, solved by the SpaceSaving algorithm
//! of Metwally et al. extended to weighted updates: `O(1/ε)` counters and
//! `O(log 1/ε)` time per update.
//!
//! Three structures live here:
//!
//! - [`WeightedSpaceSaving`] — SpaceSaving over arbitrary `f64`-weighted
//!   updates (counter array + indexed min-heap);
//! - [`UnarySpaceSaving`] — the classic Stream-Summary structure with O(1)
//!   unary updates, the "Unary HH" baseline in the paper's Figure 5;
//! - [`DecayedHeavyHitters`] — the forward-decay wrapper that feeds
//!   `g(t_i − L)` weights into [`WeightedSpaceSaving`], renormalizing the
//!   landmark when exponential weights grow large (Section VI-A).

use std::collections::HashMap;

use crate::decay::ForwardDecay;
use crate::merge::Mergeable;
use crate::numerics::Renormalizer;
use crate::Timestamp;

/// One monitored counter: an item, its estimated (over-)count, and the
/// maximum possible overestimation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HhCounter {
    /// The monitored item.
    pub item: u64,
    /// Estimated weight of the item; never underestimates the truth, and
    /// overestimates by at most `error`.
    pub count: f64,
    /// Upper bound on the overestimation of `count`.
    pub error: f64,
}

/// A reported heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The item.
    pub item: u64,
    /// Estimated (decayed, if queried through [`DecayedHeavyHitters`])
    /// count.
    pub count: f64,
    /// True if the item is *guaranteed* to pass the threshold
    /// (`count − error ≥ φ·C`), not merely possible.
    pub guaranteed: bool,
}

// ---------------------------------------------------------------------------
// Weighted SpaceSaving
// ---------------------------------------------------------------------------

/// SpaceSaving for weighted updates (Theorem 2 of the paper).
///
/// Monitors at most `⌈1/ε⌉` items. For a total ingested weight `W`, every
/// item's weight is estimated within `εW`, all items of weight `≥ φW` are
/// reported by [`Self::heavy_hitters`] for `φ ≥ ε`, and no item of weight
/// `< (φ − ε)W` is reported.
///
/// ```
/// use fd_core::heavy_hitters::WeightedSpaceSaving;
///
/// let mut ss = WeightedSpaceSaving::with_epsilon(0.01);
/// for i in 0..10_000u64 {
///     ss.update(i % 10, 1.0); // ten items, equal weight
/// }
/// let hh = ss.heavy_hitters(0.05);
/// assert_eq!(hh.len(), 10);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WeightedSpaceSaving {
    capacity: usize,
    counters: Vec<HhCounter>,
    /// Min-heap of counter indices keyed by `counters[i].count`.
    heap: Vec<usize>,
    /// `heap_pos[i]` = position of counter `i` inside `heap`.
    heap_pos: Vec<usize>,
    /// item → counter index.
    index: HashMap<u64, usize>,
    total: f64,
}

impl WeightedSpaceSaving {
    /// Creates a summary with `capacity` counters (error bound
    /// `ε = 1/capacity`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            counters: Vec::with_capacity(capacity),
            heap: Vec::with_capacity(capacity),
            heap_pos: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity * 2),
            total: 0.0,
        }
    }

    /// Creates a summary with error bound `ε` (i.e. `⌈1/ε⌉` counters).
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "ε must be in (0, 1]");
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// The number of counters this summary may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The total weight ingested so far.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of currently monitored items.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Approximate memory footprint in bytes (used by the space figures).
    pub fn size_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<HhCounter>()
            + self.heap.capacity() * std::mem::size_of::<usize>() * 2
            + self.index.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>() + 8)
            + std::mem::size_of::<Self>()
    }

    /// Ingests `item` with positive weight `w`. `O(log capacity)`.
    pub fn update(&mut self, item: u64, w: f64) {
        debug_assert!(w >= 0.0 && w.is_finite(), "weight must be non-negative");
        if w == 0.0 {
            return;
        }
        self.total += w;
        if let Some(&ci) = self.index.get(&item) {
            self.counters[ci].count += w;
            self.sift_down(self.heap_pos[ci]);
        } else if self.counters.len() < self.capacity {
            let ci = self.counters.len();
            self.counters.push(HhCounter {
                item,
                count: w,
                error: 0.0,
            });
            self.heap.push(ci);
            self.heap_pos.push(self.heap.len() - 1);
            self.index.insert(item, ci);
            self.sift_up(self.heap.len() - 1);
        } else {
            // Evict the minimum counter: the newcomer inherits its count as
            // error and adds its own weight.
            let ci = self.heap[0];
            let old = self.counters[ci];
            self.index.remove(&old.item);
            self.index.insert(item, ci);
            self.counters[ci] = HhCounter {
                item,
                count: old.count + w,
                error: old.count,
            };
            self.sift_down(0);
        }
    }

    /// Estimated weight of `item` and its error bound: the true weight lies
    /// in `[count − error, count]`. Unmonitored items have true weight at
    /// most the minimum monitored count.
    pub fn estimate(&self, item: u64) -> Option<HhCounter> {
        self.index.get(&item).map(|&ci| self.counters[ci])
    }

    /// The smallest monitored count — an upper bound on the weight of any
    /// unmonitored item. Zero when empty.
    pub fn min_count(&self) -> f64 {
        if self.counters.len() < self.capacity {
            0.0
        } else {
            self.heap.first().map_or(0.0, |&ci| self.counters[ci].count)
        }
    }

    /// All items with estimated weight `≥ φ · W`, heaviest first.
    /// With `φ ≥ ε` this includes every true φ-heavy-hitter and nothing
    /// below `(φ − ε)W`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<HeavyHitter> {
        let threshold = phi * self.total;
        let mut out: Vec<HeavyHitter> = self
            .counters
            .iter()
            .filter(|c| c.count >= threshold)
            .map(|c| HeavyHitter {
                item: c.item,
                count: c.count,
                guaranteed: c.count - c.error >= threshold,
            })
            .collect();
        out.sort_by(|a, b| b.count.total_cmp(&a.count));
        out
    }

    /// The monitored counters, in arbitrary order.
    pub fn counters(&self) -> &[HhCounter] {
        &self.counters
    }

    /// Multiplies every stored count, error and the running total by
    /// `factor` — the linear renormalization pass of Section VI-A.
    ///
    /// A factor of exactly `0.0` is legal: a landmark shift across a gap
    /// wider than the `f64` subnormal range can express rounds to zero
    /// (see [`crate::numerics::landmark_shift_factor`]) — at that point the
    /// old mass genuinely is below resolution. NaN and negative factors
    /// remain bugs.
    pub fn scale_all(&mut self, factor: f64) {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        for c in &mut self.counters {
            c.count *= factor;
            c.error *= factor;
        }
        self.total *= factor;
        // Order is preserved (factor ≥ 0): the heap stays valid.
    }

    // --- indexed binary min-heap ------------------------------------------

    fn less(&self, a: usize, b: usize) -> bool {
        self.counters[self.heap[a]].count < self.counters[self.heap[b]].count
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a]] = a;
        self.heap_pos[self.heap[b]] = b;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    #[cfg(test)]
    fn check_heap_invariant(&self) {
        for i in 1..self.heap.len() {
            assert!(!self.less(i, (i - 1) / 2), "heap violated at {i}");
        }
        for (ci, &hp) in self.heap_pos.iter().enumerate() {
            assert_eq!(self.heap[hp], ci);
        }
    }
}

impl Mergeable for WeightedSpaceSaving {
    /// Merges in the style of Agarwal et al., *Mergeable Summaries*: sum the
    /// estimates for the union of monitored items (an item absent from one
    /// summary contributes that summary's minimum count as additional
    /// error), keep the heaviest `capacity`. The merged error stays within
    /// `ε(W₁ + W₂)`.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacities must match");
        let min_self = self.min_count();
        let min_other = other.min_count();
        let mut merged: HashMap<u64, HhCounter> = HashMap::with_capacity(self.len() + other.len());
        for c in &self.counters {
            merged.insert(c.item, *c);
        }
        for c in &other.counters {
            merged
                .entry(c.item)
                .and_modify(|m| {
                    m.count += c.count;
                    m.error += c.error;
                })
                .or_insert(HhCounter {
                    item: c.item,
                    // The item may have occurred in `self` with weight up to
                    // min_self without being monitored.
                    count: c.count + min_self,
                    error: c.error + min_self,
                });
        }
        for m in merged.values_mut() {
            if self.index.contains_key(&m.item) && !other.index.contains_key(&m.item) {
                m.count += min_other;
                m.error += min_other;
            }
        }
        let mut all: Vec<HhCounter> = merged.into_values().collect();
        all.sort_by(|a, b| b.count.total_cmp(&a.count));
        all.truncate(self.capacity);

        let total = self.total + other.total;
        *self = Self::new(self.capacity);
        self.total = total;
        for (ci, c) in all.into_iter().enumerate() {
            self.counters.push(c);
            self.heap.push(ci);
            self.heap_pos.push(ci);
            self.index.insert(c.item, ci);
            self.sift_up(self.heap.len() - 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Unary SpaceSaving (Stream-Summary)
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct SsNode {
    item: u64,
    error: u64,
    bucket: usize,
    prev: usize,
    next: usize,
}

#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct SsBucket {
    count: u64,
    head: usize, // first node in this bucket
    prev: usize, // bucket with next-smaller count
    next: usize, // bucket with next-larger count
}

/// The Stream-Summary data structure of Metwally et al.: SpaceSaving
/// specialized to unary (`+1`) integer updates with **O(1)** worst-case time
/// per update — the "Unary HH" baseline of the paper's experiments.
///
/// Nodes with equal counts share a bucket; buckets form a doubly linked list
/// in increasing count order, so both "find the minimum" and "move a node to
/// count + 1" are constant time.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct UnarySpaceSaving {
    capacity: usize,
    nodes: Vec<SsNode>,
    buckets: Vec<SsBucket>,
    free_buckets: Vec<usize>,
    /// Bucket with the smallest count (NIL when empty).
    min_bucket: usize,
    index: HashMap<u64, usize>,
    total: u64,
}

impl UnarySpaceSaving {
    /// Creates a summary with `capacity` counters (error bound
    /// `ε = 1/capacity`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            nodes: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity + 1),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            index: HashMap::with_capacity(capacity * 2),
            total: 0,
        }
    }

    /// Creates a summary with error bound `ε`.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// Total number of updates ingested.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Number of monitored items.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<SsNode>()
            + self.buckets.capacity() * std::mem::size_of::<SsBucket>()
            + self.index.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>() + 8)
            + std::mem::size_of::<Self>()
    }

    /// Ingests one occurrence of `item`. O(1).
    pub fn update(&mut self, item: u64) {
        self.total += 1;
        if let Some(&ni) = self.index.get(&item) {
            self.increment(ni);
        } else if self.nodes.len() < self.capacity {
            // New monitored item with count 1.
            let ni = self.nodes.len();
            self.nodes.push(SsNode {
                item,
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(item, ni);
            if self.min_bucket != NIL && self.buckets[self.min_bucket].count == 1 {
                self.attach(ni, self.min_bucket);
            } else {
                let b = self.new_bucket(1, NIL, self.min_bucket);
                if self.min_bucket != NIL {
                    self.buckets[self.min_bucket].prev = b;
                }
                self.min_bucket = b;
                self.attach(ni, b);
            }
        } else {
            // Replace some node of the minimum bucket.
            let b = self.min_bucket;
            let ni = self.buckets[b].head;
            let old_item = self.nodes[ni].item;
            let min_count = self.buckets[b].count;
            self.index.remove(&old_item);
            self.index.insert(item, ni);
            self.nodes[ni].item = item;
            self.nodes[ni].error = min_count;
            self.increment(ni);
        }
    }

    /// Estimated count and error bound of `item` (true count in
    /// `[count − error, count]`), if monitored.
    pub fn estimate(&self, item: u64) -> Option<(u64, u64)> {
        self.index.get(&item).map(|&ni| {
            let n = &self.nodes[ni];
            (self.buckets[n.bucket].count, n.error)
        })
    }

    /// All items with estimated count `≥ φ · N`, heaviest first.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<HeavyHitter> {
        let threshold = phi * self.total as f64;
        let mut out = Vec::new();
        let mut b = self.min_bucket;
        while b != NIL {
            let count = self.buckets[b].count;
            if count as f64 >= threshold {
                let mut ni = self.buckets[b].head;
                while ni != NIL {
                    let n = &self.nodes[ni];
                    out.push(HeavyHitter {
                        item: n.item,
                        count: count as f64,
                        guaranteed: (count - n.error) as f64 >= threshold,
                    });
                    ni = n.next;
                }
            }
            b = self.buckets[b].next;
        }
        out.reverse(); // buckets were visited in increasing count order
        out
    }

    // --- bucket-list plumbing ---------------------------------------------

    fn new_bucket(&mut self, count: u64, prev: usize, next: usize) -> usize {
        let b = SsBucket {
            count,
            head: NIL,
            prev,
            next,
        };
        if let Some(i) = self.free_buckets.pop() {
            self.buckets[i] = b;
            i
        } else {
            self.buckets.push(b);
            self.buckets.len() - 1
        }
    }

    /// Links node `ni` at the head of bucket `b`.
    fn attach(&mut self, ni: usize, b: usize) {
        let head = self.buckets[b].head;
        self.nodes[ni].bucket = b;
        self.nodes[ni].prev = NIL;
        self.nodes[ni].next = head;
        if head != NIL {
            self.nodes[head].prev = ni;
        }
        self.buckets[b].head = ni;
    }

    /// Unlinks node `ni` from its bucket; frees the bucket if it empties and
    /// returns whether it was freed.
    fn detach(&mut self, ni: usize) {
        let n = self.nodes[ni];
        if n.prev != NIL {
            self.nodes[n.prev].next = n.next;
        } else {
            self.buckets[n.bucket].head = n.next;
        }
        if n.next != NIL {
            self.nodes[n.next].prev = n.prev;
        }
    }

    fn free_bucket_if_empty(&mut self, b: usize) {
        if self.buckets[b].head != NIL {
            return;
        }
        let (prev, next) = (self.buckets[b].prev, self.buckets[b].next);
        if prev != NIL {
            self.buckets[prev].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Moves node `ni` from its bucket with count c to count c + 1. O(1).
    fn increment(&mut self, ni: usize) {
        let b = self.nodes[ni].bucket;
        let c = self.buckets[b].count;
        let next = self.buckets[b].next;
        self.detach(ni);
        if next != NIL && self.buckets[next].count == c + 1 {
            self.attach(ni, next);
        } else {
            let nb = self.new_bucket(c + 1, b, next);
            self.buckets[b].next = nb;
            if next != NIL {
                self.buckets[next].prev = nb;
            }
            self.attach(ni, nb);
        }
        self.free_bucket_if_empty(b);
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        // Buckets strictly increasing, every node's bucket pointer correct.
        let mut b = self.min_bucket;
        let mut last = 0u64;
        let mut seen = 0usize;
        while b != NIL {
            let bk = &self.buckets[b];
            assert!(bk.count > last, "bucket counts must increase");
            last = bk.count;
            assert_ne!(bk.head, NIL, "live bucket must be non-empty");
            let mut ni = bk.head;
            while ni != NIL {
                assert_eq!(self.nodes[ni].bucket, b);
                seen += 1;
                ni = self.nodes[ni].next;
            }
            b = bk.next;
        }
        assert_eq!(seen, self.nodes.len());
        assert_eq!(self.index.len(), self.nodes.len());
    }
}

impl Mergeable for UnarySpaceSaving {
    /// Merged by rebuilding: union the counters (as in
    /// [`WeightedSpaceSaving::merge_from`]) and reinsert the heaviest
    /// `capacity` of them.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacities must match");
        let collect = |s: &Self| -> Vec<(u64, u64, u64)> {
            let mut v = Vec::with_capacity(s.len());
            let mut b = s.min_bucket;
            while b != NIL {
                let mut ni = s.buckets[b].head;
                while ni != NIL {
                    v.push((s.nodes[ni].item, s.buckets[b].count, s.nodes[ni].error));
                    ni = s.nodes[ni].next;
                }
                b = s.buckets[b].next;
            }
            v
        };
        let min_of = |s: &Self| -> u64 {
            if s.len() < s.capacity {
                0
            } else if s.min_bucket != NIL {
                s.buckets[s.min_bucket].count
            } else {
                0
            }
        };
        let (min_self, min_other) = (min_of(self), min_of(other));
        let mut merged: HashMap<u64, (u64, u64)> = HashMap::new();
        for (item, c, e) in collect(self) {
            merged.insert(item, (c, e));
        }
        for (item, c, e) in collect(other) {
            merged
                .entry(item)
                .and_modify(|(mc, me)| {
                    *mc += c;
                    *me += e;
                })
                .or_insert((c + min_self, e + min_self));
        }
        for (item, (c, e)) in merged.iter_mut() {
            if self.index.contains_key(item) && !other.index.contains_key(item) {
                *c += min_other;
                *e += min_other;
            }
        }
        let mut all: Vec<(u64, u64, u64)> = merged
            .into_iter()
            .map(|(item, (c, e))| (item, c, e))
            .collect();
        all.sort_by_key(|b| std::cmp::Reverse(b.1));
        all.truncate(self.capacity);

        let total = self.total + other.total;
        *self = Self::new(self.capacity);
        self.total = total;
        // Rebuild buckets by inserting in increasing count order.
        all.sort_by_key(|a| a.1);
        let mut tail = NIL;
        for (item, count, error) in all {
            let ni = self.nodes.len();
            self.nodes.push(SsNode {
                item,
                error,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(item, ni);
            if tail != NIL && self.buckets[tail].count == count {
                self.attach(ni, tail);
            } else {
                let b = self.new_bucket(count, tail, NIL);
                if tail != NIL {
                    self.buckets[tail].next = b;
                } else {
                    self.min_bucket = b;
                }
                self.attach(ni, b);
                tail = b;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forward-decayed wrapper
// ---------------------------------------------------------------------------

/// Decayed φ-heavy-hitters under forward decay (Definition 7 / Theorem 2).
///
/// Feeds weights `g(t_i − L)` into a [`WeightedSpaceSaving`] summary and
/// scales by `g(t − L)` at query time; renormalizes the landmark when
/// exponential weights threaten `f64` overflow.
///
/// ```
/// use fd_core::heavy_hitters::DecayedHeavyHitters;
/// use fd_core::decay::Monomial;
///
/// // Example 3 of the paper: φ = 0.2 heavy hitters are items 4, 6 and 8.
/// let mut hh = DecayedHeavyHitters::new(Monomial::quadratic(), 100.0, 100);
/// for (t, v) in [(105.0, 4), (107.0, 8), (103.0, 3), (108.0, 6), (104.0, 4)] {
///     hh.update(t, v);
/// }
/// let mut items: Vec<u64> = hh.heavy_hitters(0.2, 110.0).iter().map(|h| h.item).collect();
/// items.sort();
/// assert_eq!(items, vec![4, 6, 8]);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedHeavyHitters<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    inner: WeightedSpaceSaving,
}

impl<G: ForwardDecay> DecayedHeavyHitters<G> {
    /// Creates a decayed heavy-hitter summary with `capacity` counters
    /// (error `ε = 1/capacity` relative to the decayed count `C`).
    pub fn new(g: G, landmark: impl Into<Timestamp>, capacity: usize) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            inner: WeightedSpaceSaving::new(capacity),
        }
    }

    /// Creates a summary with error bound `ε`.
    pub fn with_epsilon(g: G, landmark: impl Into<Timestamp>, epsilon: f64) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            inner: WeightedSpaceSaving::with_epsilon(epsilon),
        }
    }

    /// Ingests an occurrence of `item` at time `t_i`. Pre-landmark
    /// timestamps are clamped to the landmark
    /// ([`crate::decay::clamp_to_landmark`]).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, item: u64) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.inner.scale_all(factor);
        }
        self.inner
            .update(item, self.g.g(t_i - self.renorm.landmark()));
    }

    /// Ingests a columnar batch: `ts[i]` pairs with `items[i]`.
    ///
    /// Hoists the renormalization check to a single
    /// [`pre_update`](crate::numerics::Renormalizer::pre_update) against
    /// the batch maximum and evaluates weights through a
    /// [`WeightKernel`](crate::kernel::WeightKernel), so duplicated clock
    /// ticks cost a compare instead of a `powf`/`exp`. SpaceSaving
    /// updates are applied in slice order; see
    /// [`DecayedCount::update_batch`](crate::aggregates::DecayedCount::update_batch)
    /// for the renormalization rounding caveats.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    pub fn update_batch(&mut self, ts: &[Timestamp], items: &[u64]) {
        assert_eq!(ts.len(), items.len(), "columnar batch slices must align");
        let Some(&max_t) = ts.iter().max() else {
            return;
        };
        if let Some(factor) = self.renorm.pre_update(&self.g, max_t) {
            self.inner.scale_all(factor);
        }
        let l0 = self.renorm.original_landmark();
        let l = self.renorm.landmark();
        let mut k = crate::kernel::WeightKernel::new(self.g.clone());
        for (&t_i, &item) in ts.iter().zip(items) {
            self.inner
                .update(item, k.g(crate::decay::clamp_to_landmark(t_i, l0) - l));
        }
    }

    /// The total decayed count `C` at query time `t`.
    pub fn decayed_count(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            0.0
        } else {
            self.inner.total_weight() / denom
        }
    }

    /// The φ-heavy-hitters at query time `t`: all items whose decayed count
    /// is at least `φ·C`, with estimates reported as decayed counts.
    pub fn heavy_hitters(&self, phi: f64, t: impl Into<Timestamp>) -> Vec<HeavyHitter> {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            return Vec::new();
        }
        let mut out = self.inner.heavy_hitters(phi);
        for h in &mut out {
            h.count /= denom;
        }
        out
    }

    /// The estimated decayed count of `item` at time `t`, with error bound.
    pub fn estimate(&self, item: u64, t: impl Into<Timestamp>) -> Option<HhCounter> {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        self.inner.estimate(item).map(|mut c| {
            c.count /= denom;
            c.error /= denom;
            c
        })
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes() + std::mem::size_of::<Self>()
    }

    /// Access to the underlying weighted summary.
    pub fn inner(&self) -> &WeightedSpaceSaving {
        &self.inner
    }
}

impl<G: ForwardDecay> Mergeable for DecayedHeavyHitters<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        if other.renorm.landmark() > self.renorm.landmark() {
            if let Some(f) = self.renorm.rescale_to(&self.g, other.renorm.landmark()) {
                self.inner.scale_all(f);
            }
            self.inner.merge_from(&other.inner);
        } else if other.renorm.landmark() < self.renorm.landmark() {
            let mut o = other.inner.clone();
            // Log-domain landmark alignment: the linear 1/g(ΔL) collapses to
            // 0.0 across a g-overflowing gap (≈ 709/α s for exponential),
            // zeroing the other side's mass.
            o.scale_all(crate::numerics::landmark_shift_factor(
                &self.g,
                other.renorm.landmark(),
                self.renorm.landmark(),
            ));
            self.inner.merge_from(&o);
        } else {
            self.inner.merge_from(&other.inner);
        }
    }
}

// ----- unified Summary API ------------------------------------------------

use crate::summary::Summary;

impl<G: ForwardDecay> DecayedHeavyHitters<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.renorm.original_landmark()
    }
}

/// Items in, total decayed mass out; the identities of the heavy hitters
/// themselves come from the inherent [`heavy_hitters`] method.
///
/// [`heavy_hitters`]: DecayedHeavyHitters::heavy_hitters
impl<G: ForwardDecay> Summary for DecayedHeavyHitters<G> {
    type Update = u64;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, item: u64) {
        self.update(t_i, item);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], items: &[u64]) {
        self.update_batch(ts, items);
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.decayed_count(t)
    }

    fn stats(&self) -> crate::summary::SummaryStats {
        crate::summary::SummaryStats {
            renormalizations: self.renorm.rescales(),
            occupancy: self.inner.len() as u64,
            capacity: self.inner.capacity() as u64,
            items: 0, // not tracked by SpaceSaving
            accepted: 0,
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        let total = self.inner.total_weight();
        if total.is_nan() || total < 0.0 {
            return Err(format!("SpaceSaving total weight invalid: {total}"));
        }
        if self.inner.len() > self.inner.capacity() {
            return Err(format!(
                "SpaceSaving occupancy {} exceeds capacity {}",
                self.inner.len(),
                self.inner.capacity()
            ));
        }
        for c in self.inner.counters() {
            if c.count.is_nan() || c.count < 0.0 || c.error.is_nan() || c.error < 0.0 {
                return Err(format!(
                    "SpaceSaving counter invalid: item {} count {} error {}",
                    c.item, c.count, c.error
                ));
            }
            if c.error > c.count + 1e-9 * c.count.abs() {
                return Err(format!(
                    "SpaceSaving error bound exceeds count: item {} count {} error {}",
                    c.item, c.count, c.error
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, Monomial, NoDecay};

    #[test]
    fn stats_reports_occupancy_and_renormalizations() {
        use crate::summary::Summary;
        let g = Exponential::new(1.0);
        let mut hh = DecayedHeavyHitters::new(g, 0.0, 8);
        for i in 0..2000 {
            hh.update(i as f64, (i % 20) as u64);
        }
        let s = hh.stats();
        assert!(s.renormalizations >= 4, "renorms = {}", s.renormalizations);
        assert_eq!(s.occupancy, 8);
        assert_eq!(s.capacity, 8);
        assert_eq!(s.occupancy_fraction(), Some(1.0));
    }

    #[test]
    fn survives_idle_gap_past_exponential_overflow() {
        // Regression for the 1/g(n) = 0.0 rescale factor: an idle gap past
        // e^709 used to zero the sketch (and trip scale_all's
        // debug_assert!(factor > 0.0) in debug builds).
        let g = Exponential::new(1.0);
        let mut hh = DecayedHeavyHitters::new(g, 0.0, 8);
        hh.update(0.0, 1);
        hh.update(720.0, 2);
        let c = hh.decayed_count(720.0);
        assert!(c.is_finite() && c >= 1.0, "decayed count = {c}");
    }

    #[test]
    fn paper_example_3_decayed_counts_and_hh() {
        let mut hh = DecayedHeavyHitters::new(Monomial::quadratic(), 100.0, 100);
        for (t, v) in [
            (105.0, 4u64),
            (107.0, 8),
            (103.0, 3),
            (108.0, 6),
            (104.0, 4),
        ] {
            hh.update(t, v);
        }
        let t = 110.0;
        assert!((hh.decayed_count(t) - 1.63).abs() < 1e-9);
        let d = |item| hh.estimate(item, t).unwrap().count;
        assert!((d(3) - 0.09).abs() < 1e-9);
        assert!((d(4) - 0.41).abs() < 1e-9);
        assert!((d(6) - 0.64).abs() < 1e-9);
        assert!((d(8) - 0.49).abs() < 1e-9);
        let hits = hh.heavy_hitters(0.2, t);
        let mut items: Vec<u64> = hits.iter().map(|h| h.item).collect();
        items.sort();
        assert_eq!(items, vec![4, 6, 8]);
        assert!(hits.iter().all(|h| h.guaranteed)); // exact: capacity > distinct
    }

    /// Deterministic skewed stream: item k appears ~N/2^k times.
    fn skewed_stream(n: usize) -> Vec<u64> {
        (0..n).map(|i| (i.trailing_ones()) as u64).collect()
    }

    #[test]
    fn weighted_ss_error_bound() {
        let eps = 0.02;
        let mut ss = WeightedSpaceSaving::with_epsilon(eps);
        let mut exact: HashMap<u64, f64> = HashMap::new();
        // Adversarial-ish mix: skewed hot items + a long tail of singletons.
        let mut w_total = 0.0;
        for (i, item) in skewed_stream(20_000).into_iter().enumerate() {
            let item = if i % 3 == 0 {
                1_000_000 + i as u64
            } else {
                item
            };
            let w = 1.0 + (i % 5) as f64;
            ss.update(item, w);
            *exact.entry(item).or_default() += w;
            w_total += w;
        }
        assert!((ss.total_weight() - w_total).abs() < 1e-6);
        for (&item, &true_w) in &exact {
            if let Some(c) = ss.estimate(item) {
                assert!(c.count + 1e-9 >= true_w, "underestimate for {item}");
                assert!(
                    c.count - true_w <= eps * w_total + 1e-6,
                    "overestimate for {item}"
                );
                assert!(
                    c.count - c.error <= true_w + 1e-9,
                    "error bound broken for {item}"
                );
            } else {
                assert!(true_w <= eps * w_total + 1e-6, "missed heavy item {item}");
            }
        }
        // Completeness: every φ-heavy item is reported for φ = 2ε.
        let phi = 2.0 * eps;
        let reported: Vec<u64> = ss.heavy_hitters(phi).iter().map(|h| h.item).collect();
        for (&item, &true_w) in &exact {
            if true_w >= phi * w_total {
                assert!(reported.contains(&item), "true heavy hitter {item} missing");
            }
        }
    }

    #[test]
    fn weighted_ss_heap_invariant_under_churn() {
        let mut ss = WeightedSpaceSaving::new(16);
        for i in 0..5000u64 {
            ss.update(i % 97, 1.0 + (i % 7) as f64);
            if i % 503 == 0 {
                ss.check_heap_invariant();
            }
        }
        ss.check_heap_invariant();
    }

    #[test]
    fn weighted_ss_merge_error_bound() {
        let eps = 0.05;
        let mut a = WeightedSpaceSaving::with_epsilon(eps);
        let mut b = WeightedSpaceSaving::with_epsilon(eps);
        let mut exact: HashMap<u64, f64> = HashMap::new();
        let stream = skewed_stream(10_000);
        for (i, item) in stream.into_iter().enumerate() {
            let w = 1.0;
            if i % 2 == 0 {
                a.update(item, w)
            } else {
                b.update(item, w)
            }
            *exact.entry(item).or_default() += w;
        }
        let w_total: f64 = exact.values().sum();
        a.merge_from(&b);
        assert!((a.total_weight() - w_total).abs() < 1e-6);
        for (&item, &true_w) in &exact {
            let est = a.estimate(item).map(|c| c.count).unwrap_or(0.0);
            assert!(
                (est - true_w).abs() <= 2.0 * eps * w_total + 1e-6,
                "item {item}: est {est}, true {true_w}"
            );
        }
    }

    #[test]
    fn unary_ss_matches_weighted_ss_on_unary_stream() {
        let mut unary = UnarySpaceSaving::new(32);
        let mut weighted = WeightedSpaceSaving::new(32);
        for item in skewed_stream(30_000) {
            unary.update(item);
            weighted.update(item, 1.0);
        }
        unary.check_invariants();
        // SpaceSaving is deterministic given the same tie-breaking… but tie
        // breaking differs, so compare estimates of the clear heavy items.
        for item in 0..6u64 {
            let (uc, _) = unary.estimate(item).unwrap();
            let wc = weighted.estimate(item).unwrap().count;
            assert!(
                (uc as f64 - wc).abs() <= 32.0,
                "item {item}: unary {uc}, weighted {wc}"
            );
        }
        assert_eq!(unary.total_count(), 30_000);
    }

    #[test]
    fn unary_ss_exact_when_capacity_suffices() {
        let mut ss = UnarySpaceSaving::new(64);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let item = i % 50;
            ss.update(item);
            *exact.entry(item).or_default() += 1;
        }
        ss.check_invariants();
        for (&item, &c) in &exact {
            assert_eq!(ss.estimate(item), Some((c, 0)));
        }
    }

    #[test]
    fn unary_ss_error_bound_under_eviction() {
        let cap = 20;
        let mut ss = UnarySpaceSaving::new(cap);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for (i, item) in skewed_stream(50_000).into_iter().enumerate() {
            let item = if i % 4 == 3 {
                500 + (i as u64 % 200)
            } else {
                item
            };
            ss.update(item);
            *exact.entry(item).or_default() += 1;
        }
        ss.check_invariants();
        let n = 50_000f64;
        for (&item, &c) in &exact {
            if let Some((est, err)) = ss.estimate(item) {
                assert!(est >= c, "underestimate");
                assert!((est - c) as f64 <= n / cap as f64 + 1.0);
                assert!(est - err <= c);
            } else {
                assert!(
                    (c as f64) <= n / cap as f64 + 1.0,
                    "missed item {item} ({c})"
                );
            }
        }
    }

    #[test]
    fn unary_ss_merge() {
        let mut a = UnarySpaceSaving::new(16);
        let mut b = UnarySpaceSaving::new(16);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for (i, item) in skewed_stream(8_000).into_iter().enumerate() {
            if i % 2 == 0 {
                a.update(item)
            } else {
                b.update(item)
            }
            *exact.entry(item).or_default() += 1;
        }
        a.merge_from(&b);
        a.check_invariants();
        assert_eq!(a.total_count(), 8_000);
        // The top item (0, ~4000 occurrences) must survive the merge with a
        // sane estimate.
        let (est, _) = a.estimate(0).unwrap();
        let true0 = exact[&0];
        assert!(est >= true0 && est - true0 <= 2 * 8_000 / 16);
    }

    #[test]
    fn decayed_hh_exponential_renormalizes_on_long_stream() {
        let g = Exponential::new(0.5);
        let mut hh = DecayedHeavyHitters::new(g, 0.0, 16);
        let mut t = 0.0;
        for i in 0..20_000u64 {
            t += 0.5;
            hh.update(t, i % 4);
        }
        let c = hh.decayed_count(t);
        assert!(c.is_finite() && c > 0.0);
        // Recent items dominate; all 4 round-robin items are 1/4-heavy.
        let hits = hh.heavy_hitters(0.1, t);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn decayed_hh_respects_decay_ordering() {
        // Item A occurs early and often; item B occurs late and rarely.
        // Under strong decay B outweighs A.
        let g = Exponential::new(2.0);
        let mut hh = DecayedHeavyHitters::new(g, 0.0, 32);
        for i in 0..100 {
            hh.update(i as f64 * 0.1, 111); // through t = 10
        }
        for i in 0..3 {
            hh.update(20.0 + i as f64 * 0.1, 222);
        }
        let a = hh.estimate(111, 21.0).unwrap().count;
        let b = hh.estimate(222, 21.0).unwrap().count;
        assert!(b > a, "late item should dominate: a = {a}, b = {b}");
    }

    #[test]
    fn decayed_hh_merge_matches_single_site() {
        let g = Monomial::quadratic();
        let mut whole = DecayedHeavyHitters::new(g, 0.0, 64);
        let mut left = DecayedHeavyHitters::new(g, 0.0, 64);
        let mut right = DecayedHeavyHitters::new(g, 0.0, 64);
        for i in 0..2000u64 {
            let t = 1.0 + i as f64 * 0.01;
            let item = i % 20;
            whole.update(t, item);
            if i % 2 == 0 {
                left.update(t, item)
            } else {
                right.update(t, item)
            }
        }
        left.merge_from(&right);
        let t_q = 25.0;
        for item in 0..20u64 {
            let w = whole.estimate(item, t_q).unwrap().count;
            let m = left.estimate(item, t_q).unwrap().count;
            assert!((w - m).abs() < 1e-9 * w.max(1.0), "item {item}: {w} vs {m}");
        }
    }

    #[test]
    fn zero_weight_update_is_ignored() {
        let mut ss = WeightedSpaceSaving::new(4);
        ss.update(1, 0.0);
        assert!(ss.is_empty());
        assert_eq!(ss.total_weight(), 0.0);
    }

    #[test]
    fn hh_query_on_empty_summaries() {
        let ss = WeightedSpaceSaving::new(4);
        assert!(ss.heavy_hitters(0.1).is_empty());
        assert_eq!(ss.min_count(), 0.0);
        let u = UnarySpaceSaving::new(4);
        assert!(u.heavy_hitters(0.1).is_empty());
        let d = DecayedHeavyHitters::new(NoDecay, 0.0, 4);
        assert!(d.heavy_hitters(0.1, 10.0).is_empty());
    }
}
