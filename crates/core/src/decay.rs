//! Decay functions: the forward model introduced by the paper (Section III)
//! and the classical backward model it replaces (Section II).
//!
//! A *decay function* `w(i, t)` (Definition 1) assigns every stream item a
//! weight in `[0, 1]` that equals 1 at arrival and never increases as time
//! passes.
//!
//! - **Backward decay** (Definition 2): `w(i, t) = f(t − t_i) / f(0)` for a
//!   monotone non-increasing `f` of the item's *age*. Ages change
//!   continuously, which is what makes backward decay expensive to support.
//! - **Forward decay** (Definition 3): `w(i, t) = g(t_i − L) / g(t − L)` for a
//!   monotone non-decreasing `g` and a fixed landmark `L ≤ t_i`. The
//!   numerator is frozen at arrival; only the common denominator moves.
//!
//! Both models are expressed as traits so that summaries are generic over the
//! decay function, and both come with the concrete families the paper
//! discusses. [`Exponential`] forward decay coincides exactly with
//! [`BackExponential`] backward decay (Section III-A) — a property tested
//! here and exploited by the samplers in [`crate::sampling`].

use crate::error::Error;
use crate::Timestamp;

// ---------------------------------------------------------------------------
// Forward decay
// ---------------------------------------------------------------------------

/// A forward decay function `g` (Definition 3 of the paper).
///
/// Implementations must guarantee that `g` is positive and monotone
/// non-decreasing on `n ≥ 0` (checked for all in-crate implementations by
/// [`check_forward_axioms`]).
///
/// Decay functions are part of every summary's checkpointable state, so
/// implementors must be serializable through
/// [`crate::checkpoint`] — in practice a `#[derive(serde::Serialize,
/// serde::Deserialize)]` on the (small, parameter-only) struct.
pub trait ForwardDecay:
    Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned + 'static
{
    /// Evaluates `g(n)` for `n ≥ 0` (seconds since the landmark).
    fn g(&self, n: f64) -> f64;

    /// Evaluates `ln g(n)`. Summaries that must survive exponential decay on
    /// long streams (the samplers) work in the log domain; the default
    /// forwarding through [`ForwardDecay::g`] is exact only while `g(n)` fits
    /// in `f64`, so implementations with faster-than-polynomial growth
    /// override this.
    #[inline]
    fn ln_g(&self, n: f64) -> f64 {
        self.g(n).ln()
    }

    /// True if `g(a + b) = g(a) · g(b)` for all `a, b ≥ 0` — i.e. `g` is an
    /// exponential. Multiplicative decay admits landmark renormalization
    /// (Section VI-A) and coincides with its backward counterpart
    /// (Section III-A).
    #[inline]
    fn is_multiplicative(&self) -> bool {
        false
    }

    /// True when evaluating `g`/`ln_g` costs a transcendental (`powf`,
    /// `exp`, `ln`) and a per-tick memo is therefore worth its compare —
    /// the hint consumed by [`crate::kernel::WeightKernel`]. Families whose
    /// evaluation is a couple of arithmetic ops return false so the kernel
    /// degenerates to a direct call.
    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        true
    }

    /// `Σ g(tᵢ − l)` over a non-empty batch of timestamps, plus the batch's
    /// maximum timestamp, in one striped pass
    /// ([`striped_sum`](crate::kernel::striped_sum)).
    ///
    /// Families whose `g` branches on a runtime parameter override this to
    /// unswitch that branch *outside* the loop (one closure per parameter
    /// regime), leaving an invariant-free inner loop the compiler can
    /// pipeline and vectorize — the default keeps the branch in the loop
    /// body. The weights summed are exactly the scalar [`g`](Self::g)
    /// values; only the summation order differs (normal `f64` rounding).
    #[inline]
    fn g_sum_batch(&self, ts: &[Timestamp], l: Timestamp) -> (f64, Timestamp) {
        crate::kernel::striped_sum(ts, |t| self.g(t - l))
    }

    /// `Σ g(tᵢ − l) · vals[i]` over a non-empty batch, plus the batch's
    /// maximum timestamp — the dot-product counterpart of
    /// [`g_sum_batch`](Self::g_sum_batch), with the same override contract.
    #[inline]
    fn g_dot_batch(&self, ts: &[Timestamp], vals: &[f64], l: Timestamp) -> (f64, Timestamp) {
        crate::kernel::striped_dot(ts, vals, |t| self.g(t - l))
    }

    /// The decayed weight `w(i, t) = g(t_i − L) / g(t − L)` of an item that
    /// arrived at `t_i`, evaluated at time `t ≥ t_i`.
    ///
    /// A pre-landmark arrival (`t_i < L`) is clamped to the landmark per
    /// [`clamp_to_landmark`] — the uniform policy shared with every summary's
    /// ingestion path.
    #[inline]
    fn weight(
        &self,
        landmark: impl Into<Timestamp>,
        t_i: impl Into<Timestamp>,
        t: impl Into<Timestamp>,
    ) -> f64 {
        let (landmark, t_i, t) = (landmark.into(), t_i.into(), t.into());
        let t_i = clamp_to_landmark(t_i, landmark);
        let denom = self.g(t - landmark);
        if denom == 0.0 {
            return 0.0;
        }
        if self.is_multiplicative() {
            // Evaluate as exp(ln g(tᵢ−L) − ln g(t−L)): immune to overflow of
            // the individual g values.
            return (self.ln_g(t_i - landmark) - self.ln_g(t - landmark)).exp();
        }
        self.g(t_i - landmark) / denom
    }
}

/// The uniform pre-landmark arrival policy: an item stamped before the
/// landmark is treated as arriving *at* the landmark (`t_i < L` behaves as
/// `t_i = L`).
///
/// The paper requires `L ≤ t_i`, but real streams deliver stragglers and
/// clock-skewed tuples stamped before the landmark. Every ingestion path —
/// the scalar `update_at`s, the batched kernel closures, and the samplers —
/// routes item timestamps through this clamp against the summary's
/// **original** landmark, so all decay families and all code paths agree:
///
/// - for the polynomial families the clamp coincides with their intrinsic
///   `g(n ≤ 0) = g(0)` handling (Monomial and LandmarkWindow map negative
///   ages to weight 0, PolySum to its constant term), so nothing changes;
/// - for exponential `g` it caps a pre-landmark item's weight at the
///   landmark's weight instead of letting `exp(αn)` keep decaying below `L`
///   (or tripping a debug assert), which previously made the scalar, batched
///   and sampler paths disagree with each other.
#[inline]
pub fn clamp_to_landmark(t_i: Timestamp, landmark: Timestamp) -> Timestamp {
    if t_i < landmark {
        landmark
    } else {
        t_i
    }
}

/// No decay: `g(n) = 1`. Forward decay's embedding of plain, undecayed
/// aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NoDecay;

impl ForwardDecay for NoDecay {
    #[inline]
    fn g(&self, _n: f64) -> f64 {
        1.0
    }
    #[inline]
    fn ln_g(&self, _n: f64) -> f64 {
        0.0
    }
    #[inline]
    fn is_multiplicative(&self) -> bool {
        true // g(a+b) = 1 = g(a)·g(b); renormalization is a harmless no-op.
    }
    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        false // g is the constant 1.
    }
}

/// Monomial (polynomial) forward decay: `g(n) = n^β`, `β > 0`.
///
/// The only forward decay family with the *relative decay* property
/// (Definition 4 / Lemma 1): the weight of an item depends only on its
/// relative position `(t_i − L)/(t − L)` inside the window `[L, t]`, namely
/// `w = γ^β` for relative age `γ`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Monomial {
    beta: f64,
}

impl Monomial {
    /// Creates `g(n) = n^β`.
    ///
    /// # Panics
    /// Panics if `beta` is not finite and positive; see [`try_new`] for
    /// the fallible variant.
    ///
    /// [`try_new`]: Monomial::try_new
    pub fn new(beta: f64) -> Self {
        Self::try_new(beta).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates `g(n) = n^β`, rejecting a non-finite or non-positive `beta`.
    pub fn try_new(beta: f64) -> Result<Self, Error> {
        Ok(Self {
            beta: crate::error::require_positive("beta", beta)?,
        })
    }

    /// Quadratic decay `g(n) = n²`, the paper's running example.
    pub fn quadratic() -> Self {
        Self::new(2.0)
    }

    /// The exponent β.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl ForwardDecay for Monomial {
    #[inline]
    fn g(&self, n: f64) -> f64 {
        // Zero clamp as a select (not `max`, which would swallow NaN), so
        // the quadratic fast path is a two-op straight line the batched
        // loops can pipeline; `powf` of a clamped 0 is 0 for every valid β,
        // matching the old guard.
        let n = if n <= 0.0 { 0.0 } else { n };
        if self.beta == 2.0 {
            n * n // fast path for the common quadratic case
        } else {
            n.powf(self.beta)
        }
    }

    #[inline]
    fn ln_g(&self, n: f64) -> f64 {
        if n <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.beta * n.ln()
        }
    }

    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        // The quadratic fast path is two arithmetic ops; every other β
        // pays a `powf` per evaluation.
        self.beta != 2.0
    }

    fn g_sum_batch(&self, ts: &[Timestamp], l: Timestamp) -> (f64, Timestamp) {
        // Unswitch the β check outside the loop: the quadratic closure is
        // a branch-free two-op body the compiler pipelines across lanes,
        // which the generic default (β compare per item) defeats.
        if self.beta == 2.0 {
            crate::kernel::striped_sum(ts, |t| {
                let n = t - l;
                let n = if n <= 0.0 { 0.0 } else { n };
                n * n
            })
        } else {
            let beta = self.beta;
            crate::kernel::striped_sum(ts, |t| {
                let n = t - l;
                let n = if n <= 0.0 { 0.0 } else { n };
                n.powf(beta)
            })
        }
    }

    fn g_dot_batch(&self, ts: &[Timestamp], vals: &[f64], l: Timestamp) -> (f64, Timestamp) {
        if self.beta == 2.0 {
            crate::kernel::striped_dot(ts, vals, |t| {
                let n = t - l;
                let n = if n <= 0.0 { 0.0 } else { n };
                n * n
            })
        } else {
            let beta = self.beta;
            crate::kernel::striped_dot(ts, vals, |t| {
                let n = t - l;
                let n = if n <= 0.0 { 0.0 } else { n };
                n.powf(beta)
            })
        }
    }
}

/// Exponential forward decay: `g(n) = exp(αn)`, `α > 0`.
///
/// Identical to backward exponential decay with rate `α` (Section III-A):
/// `g(t_i − L)/g(t − L) = exp(−α(t − t_i))` independent of `L`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Exponential {
    alpha: f64,
}

impl Exponential {
    /// Creates `g(n) = exp(αn)`.
    ///
    /// # Panics
    /// Panics if `alpha` is not finite and positive; see [`try_new`] for
    /// the fallible variant.
    ///
    /// [`try_new`]: Exponential::try_new
    pub fn new(alpha: f64) -> Self {
        Self::try_new(alpha).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates `g(n) = exp(αn)`, rejecting a non-finite or non-positive
    /// `alpha`.
    pub fn try_new(alpha: f64) -> Result<Self, Error> {
        Ok(Self {
            alpha: crate::error::require_positive("alpha", alpha)?,
        })
    }

    /// Creates the exponential decay whose weight halves every `half_life`
    /// seconds.
    ///
    /// # Panics
    /// Panics if `half_life` is not finite and positive; see
    /// [`try_with_half_life`] for the fallible variant.
    ///
    /// [`try_with_half_life`]: Exponential::try_with_half_life
    pub fn with_half_life(half_life: f64) -> Self {
        Self::try_with_half_life(half_life).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates the exponential decay whose weight halves every `half_life`
    /// seconds, rejecting a non-finite or non-positive half-life.
    pub fn try_with_half_life(half_life: f64) -> Result<Self, Error> {
        let half_life = crate::error::require_positive("half_life", half_life)?;
        Self::try_new(std::f64::consts::LN_2 / half_life)
    }

    /// The rate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ForwardDecay for Exponential {
    #[inline]
    fn g(&self, n: f64) -> f64 {
        (self.alpha * n).exp()
    }

    #[inline]
    fn ln_g(&self, n: f64) -> f64 {
        self.alpha * n
    }

    #[inline]
    fn is_multiplicative(&self) -> bool {
        true
    }
}

/// Landmark window (Section III-C): `g(n) = 1` for `n > 0`, else `0`. All
/// items after the landmark count fully until the window "closes" (the query
/// terminates); items at or before the landmark count for nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LandmarkWindow;

impl ForwardDecay for LandmarkWindow {
    #[inline]
    fn g(&self, n: f64) -> f64 {
        if n > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        false // g is a step function: one compare.
    }
}

/// General polynomial forward decay: `g(n) = Σ_j γ_j n^j` with non-negative
/// coefficients (Section III-B's "arbitrary polynomial decay functions").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolySum {
    /// `coeffs[j]` is γ_j, the coefficient of `n^j`.
    coeffs: Vec<f64>,
}

impl PolySum {
    /// Creates `g(n) = Σ_j coeffs[j] · n^j`.
    ///
    /// # Panics
    /// Panics if coefficients are empty, any is negative or non-finite, or
    /// all are zero (g would not be positive); see [`try_new`] for the
    /// fallible variant.
    ///
    /// [`try_new`]: PolySum::try_new
    pub fn new(coeffs: Vec<f64>) -> Self {
        Self::try_new(coeffs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates `g(n) = Σ_j coeffs[j] · n^j`, rejecting empty, negative,
    /// non-finite or all-zero coefficients.
    pub fn try_new(coeffs: Vec<f64>) -> Result<Self, Error> {
        if coeffs.is_empty() {
            return Err(Error::MissingComponent {
                builder: "PolySum",
                component: "coefficients",
            });
        }
        if let Some(bad) = coeffs.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(Error::InvalidParameter {
                name: "coeffs",
                value: *bad,
                requirement: "non-negative and finite",
            });
        }
        if !coeffs.iter().any(|c| *c > 0.0) {
            return Err(Error::InvalidParameter {
                name: "coeffs",
                value: 0.0,
                requirement: "positive for at least one coefficient",
            });
        }
        Ok(Self { coeffs })
    }

    /// The coefficients γ_j, lowest degree first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }
}

impl ForwardDecay for PolySum {
    #[inline]
    fn g(&self, n: f64) -> f64 {
        let n = n.max(0.0);
        // Horner evaluation.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * n + c)
    }

    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        // Horner is one fused multiply-add per coefficient: cheaper than a
        // memo compare for short polynomials, costlier past a few terms.
        self.coeffs.len() > 4
    }
}

/// A forward decay function chosen at runtime (from configuration, a query
/// string, a CLI flag…), closed over the families of Section III.
///
/// Static generics ([`Monomial`], [`Exponential`], …) compile to direct
/// calls and are preferred in hot paths; `AnyDecay` trades one match per
/// evaluation for dynamic selection.
///
/// ```
/// use fd_core::decay::{AnyDecay, ForwardDecay};
///
/// let g: AnyDecay = "poly:2".parse().unwrap();
/// assert_eq!(g.weight(100.0, 105.0, 110.0), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AnyDecay {
    /// `g(n) = 1`.
    None,
    /// `g(n) = n^β`.
    Monomial(Monomial),
    /// `g(n) = exp(αn)`.
    Exponential(Exponential),
    /// Landmark window.
    Landmark(LandmarkWindow),
    /// `g(n) = Σ γ_j n^j`.
    Poly(PolySum),
}

impl ForwardDecay for AnyDecay {
    #[inline]
    fn g(&self, n: f64) -> f64 {
        match self {
            AnyDecay::None => NoDecay.g(n),
            AnyDecay::Monomial(m) => m.g(n),
            AnyDecay::Exponential(e) => e.g(n),
            AnyDecay::Landmark(l) => l.g(n),
            AnyDecay::Poly(p) => p.g(n),
        }
    }

    #[inline]
    fn ln_g(&self, n: f64) -> f64 {
        match self {
            AnyDecay::None => NoDecay.ln_g(n),
            AnyDecay::Monomial(m) => m.ln_g(n),
            AnyDecay::Exponential(e) => e.ln_g(n),
            AnyDecay::Landmark(l) => l.ln_g(n),
            AnyDecay::Poly(p) => p.ln_g(n),
        }
    }

    #[inline]
    fn is_multiplicative(&self) -> bool {
        match self {
            AnyDecay::None => NoDecay.is_multiplicative(),
            AnyDecay::Exponential(e) => e.is_multiplicative(),
            _ => false,
        }
    }

    #[inline]
    fn prefers_tick_cache(&self) -> bool {
        match self {
            AnyDecay::None => NoDecay.prefers_tick_cache(),
            AnyDecay::Monomial(m) => m.prefers_tick_cache(),
            AnyDecay::Exponential(e) => e.prefers_tick_cache(),
            AnyDecay::Landmark(l) => l.prefers_tick_cache(),
            AnyDecay::Poly(p) => p.prefers_tick_cache(),
        }
    }

    fn g_sum_batch(&self, ts: &[Timestamp], l: Timestamp) -> (f64, Timestamp) {
        // Delegate so each family's own override (notably Monomial's
        // unswitched loops) still kicks in behind the enum.
        match self {
            AnyDecay::None => NoDecay.g_sum_batch(ts, l),
            AnyDecay::Monomial(m) => m.g_sum_batch(ts, l),
            AnyDecay::Exponential(e) => e.g_sum_batch(ts, l),
            AnyDecay::Landmark(lw) => lw.g_sum_batch(ts, l),
            AnyDecay::Poly(p) => p.g_sum_batch(ts, l),
        }
    }

    fn g_dot_batch(&self, ts: &[Timestamp], vals: &[f64], l: Timestamp) -> (f64, Timestamp) {
        match self {
            AnyDecay::None => NoDecay.g_dot_batch(ts, vals, l),
            AnyDecay::Monomial(m) => m.g_dot_batch(ts, vals, l),
            AnyDecay::Exponential(e) => e.g_dot_batch(ts, vals, l),
            AnyDecay::Landmark(lw) => lw.g_dot_batch(ts, vals, l),
            AnyDecay::Poly(p) => p.g_dot_batch(ts, vals, l),
        }
    }
}

impl std::str::FromStr for AnyDecay {
    type Err = String;

    /// Parses `"none"`, `"landmark"`, `"poly:<β>"`, `"exp:<α>"`, or
    /// `"halflife:<seconds>"`.
    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        let num = |a: Option<&str>| -> Result<f64, String> {
            a.ok_or_else(|| format!("'{kind}' needs a numeric parameter"))?
                .parse::<f64>()
                .map_err(|e| format!("bad parameter for '{kind}': {e}"))
        };
        match kind {
            "none" => Ok(AnyDecay::None),
            "landmark" => Ok(AnyDecay::Landmark(LandmarkWindow)),
            "poly" => Monomial::try_new(num(arg)?)
                .map(AnyDecay::Monomial)
                .map_err(|e| e.to_string()),
            "exp" => Exponential::try_new(num(arg)?)
                .map(AnyDecay::Exponential)
                .map_err(|e| e.to_string()),
            "halflife" => Exponential::try_with_half_life(num(arg)?)
                .map(AnyDecay::Exponential)
                .map_err(|e| e.to_string()),
            other => Err(format!(
                "unknown decay '{other}' (none|landmark|poly:β|exp:α|halflife:s)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Backward decay
// ---------------------------------------------------------------------------

/// A backward decay function `f` (Definition 2 of the paper): positive and
/// monotone non-increasing in the item's age `a = t − t_i`.
pub trait BackwardDecay: Clone + Send + Sync + 'static {
    /// Evaluates `f(a)` for age `a ≥ 0`.
    fn f(&self, age: f64) -> f64;

    /// The decayed weight `w(i, t) = f(t − t_i) / f(0)`.
    #[inline]
    fn weight(&self, t_i: impl Into<Timestamp>, t: impl Into<Timestamp>) -> f64 {
        let (t_i, t) = (t_i.into(), t.into());
        debug_assert!(t >= t_i, "query time precedes item");
        self.f(t - t_i) / self.f(0.0)
    }
}

/// Backward "no decay": `f(a) = 1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BackNoDecay;

impl BackwardDecay for BackNoDecay {
    #[inline]
    fn f(&self, _age: f64) -> f64 {
        1.0
    }
}

/// Sliding window of width `W`: `f(a) = 1` for `a < W`, else `0`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackSlidingWindow {
    width: f64,
}

impl BackSlidingWindow {
    /// Creates a sliding window of the given width (seconds).
    ///
    /// # Panics
    /// Panics if `width` is not finite and positive.
    pub fn new(width: f64) -> Self {
        assert!(width.is_finite() && width > 0.0);
        Self { width }
    }

    /// The window width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }
}

impl BackwardDecay for BackSlidingWindow {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        if age < self.width {
            1.0
        } else {
            0.0
        }
    }
}

/// Backward exponential decay: `f(a) = exp(−λa)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackExponential {
    lambda: f64,
}

impl BackExponential {
    /// Creates `f(a) = exp(−λa)`.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0);
        Self { lambda }
    }

    /// The rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The forward decay function that yields *identical* weights
    /// (Section III-A), regardless of landmark.
    pub fn as_forward(&self) -> Exponential {
        Exponential::new(self.lambda)
    }
}

impl BackwardDecay for BackExponential {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        (-self.lambda * age).exp()
    }
}

/// Backward polynomial decay: `f(a) = (a + 1)^{−α}` (the `+1` makes
/// `f(0) = 1`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackPolynomial {
    alpha: f64,
}

impl BackPolynomial {
    /// Creates `f(a) = (a + 1)^{−α}`.
    ///
    /// # Panics
    /// Panics if `alpha` is not finite and positive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0);
        Self { alpha }
    }
}

impl BackwardDecay for BackPolynomial {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        (age + 1.0).powf(-self.alpha)
    }
}

/// Sub-polynomial backward decay: `f(a) = (1 + ln(1 + a))⁻¹` — slower than
/// any polynomial (Section II's example of the breadth of the backward
/// class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubPolynomial;

impl BackwardDecay for SubPolynomial {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        1.0 / (1.0 + age.ln_1p())
    }
}

/// Super-exponential backward decay: `f(a) = exp(−λa²)` — faster than any
/// exponential.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SuperExponential {
    lambda: f64,
}

impl SuperExponential {
    /// Creates `f(a) = exp(−λa²)`.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0);
        Self { lambda }
    }
}

impl BackwardDecay for SuperExponential {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        (-self.lambda * age * age).exp()
    }
}

// ---------------------------------------------------------------------------
// Definition-1 property checks
// ---------------------------------------------------------------------------

/// Checks the decay-function axioms of Definition 1 for a forward decay
/// function on a grid of item times and query times over `[landmark,
/// horizon]`. Returns `Err` describing the first violated axiom.
///
/// Intended for tests and for validating user-supplied decay functions.
pub fn check_forward_axioms<G: ForwardDecay>(
    g: &G,
    landmark: impl Into<Timestamp>,
    horizon: impl Into<Timestamp>,
    steps: usize,
) -> Result<(), String> {
    let (landmark, horizon) = (landmark.into(), horizon.into());
    assert!(horizon > landmark && steps >= 2);
    let dt = (horizon - landmark) / steps as f64;
    for i in 1..=steps {
        let t_i = landmark + dt * i as f64;
        // Axiom 1: w(i, t_i) = 1 (when g(t_i − L) > 0), and w ∈ [0, 1].
        let w0 = g.weight(landmark, t_i, t_i);
        if g.g(t_i - landmark) > 0.0 && (w0 - 1.0).abs() > 1e-9 {
            return Err(format!("w(i, t_i) = {w0} ≠ 1 at t_i = {t_i}"));
        }
        let mut prev = w0;
        for j in i..=steps {
            let t = landmark + dt * j as f64;
            let w = g.weight(landmark, t_i, t);
            if !(0.0..=1.0 + 1e-12).contains(&w) {
                return Err(format!("w(i, {t}) = {w} outside [0, 1]"));
            }
            // Axiom 2: monotone non-increasing in t.
            if w > prev + 1e-9 {
                return Err(format!("w increased from {prev} to {w} at t = {t}"));
            }
            prev = w;
        }
    }
    Ok(())
}

/// Checks the decay-function axioms of Definition 1 for a backward decay
/// function on a grid of ages over `[0, horizon]`.
pub fn check_backward_axioms<F: BackwardDecay>(
    f: &F,
    horizon: f64,
    steps: usize,
) -> Result<(), String> {
    assert!(horizon > 0.0 && steps >= 2);
    let da = horizon / steps as f64;
    let w0 = f.weight(0.0, 0.0);
    if (w0 - 1.0).abs() > 1e-9 {
        return Err(format!("w at age 0 is {w0} ≠ 1"));
    }
    let mut prev = w0;
    for j in 1..=steps {
        let age = da * j as f64;
        let w = f.weight(0.0, age);
        if !(0.0..=1.0 + 1e-12).contains(&w) {
            return Err(format!("w(age = {age}) = {w} outside [0, 1]"));
        }
        if w > prev + 1e-9 {
            return Err(format!("w increased from {prev} to {w} at age {age}"));
        }
        prev = w;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper: L = 100, g(n) = n², t = 110.
    #[test]
    fn paper_example_1_weights() {
        let g = Monomial::quadratic();
        let stream = [105.0, 107.0, 103.0, 108.0, 104.0];
        let expected = [0.25, 0.49, 0.09, 0.64, 0.16];
        for (&t_i, &w) in stream.iter().zip(&expected) {
            assert!(
                (g.weight(100.0, t_i, 110.0) - w).abs() < 1e-12,
                "t_i = {t_i}"
            );
        }
    }

    /// Section III-A: forward and backward exponential decay coincide for
    /// any landmark.
    #[test]
    fn exponential_forward_equals_backward() {
        let alpha = 0.37;
        let fwd = Exponential::new(alpha);
        let bwd = BackExponential::new(alpha);
        for &landmark in &[0.0, 50.0, 99.9] {
            for &t_i in &[100.0, 123.4, 200.0] {
                for &dt in &[0.0, 0.1, 7.5, 300.0] {
                    let t = t_i + dt;
                    let wf = fwd.weight(landmark, t_i, t);
                    let wb = bwd.weight(t_i, t);
                    assert!(
                        (wf - wb).abs() < 1e-12,
                        "L={landmark} t_i={t_i} t={t}: fwd={wf} bwd={wb}"
                    );
                }
            }
        }
    }

    /// Lemma 1: monomial forward decay has the relative decay property,
    /// w = γ^β for relative age γ.
    #[test]
    fn monomial_relative_decay_property() {
        for &beta in &[0.5, 1.0, 2.0, 3.5] {
            let g = Monomial::new(beta);
            let landmark = 40.0;
            for &gamma in &[0.1, 0.25, 0.5, 0.75, 0.9] {
                for &t in &[50.0, 100.0, 1e6] {
                    let t_i = gamma * t + (1.0 - gamma) * landmark;
                    let w = g.weight(landmark, t_i, t);
                    assert!(
                        (w - gamma.powf(beta)).abs() < 1e-9,
                        "β={beta} γ={gamma} t={t}: w={w}"
                    );
                }
            }
        }
    }

    /// Backward polynomial decay does NOT have the relative decay property
    /// (the contrast the paper draws in Section III-B).
    #[test]
    fn backward_polynomial_lacks_relative_decay() {
        let f = BackPolynomial::new(2.0);
        let landmark = 0.0;
        let gamma = 0.5;
        let w_at = |t: f64| f.weight(gamma * t + (1.0 - gamma) * landmark, t);
        assert!((w_at(10.0) - w_at(1000.0)).abs() > 1e-3);
    }

    #[test]
    fn landmark_window_weights() {
        let g = LandmarkWindow;
        assert_eq!(g.weight(100.0, 105.0, 200.0), 1.0);
        assert_eq!(g.weight(100.0, 100.0, 200.0), 0.0); // at the landmark: n = 0
    }

    #[test]
    fn no_decay_weights_all_one() {
        let g = NoDecay;
        assert_eq!(g.weight(0.0, 5.0, 1e9), 1.0);
        assert!(g.is_multiplicative());
    }

    #[test]
    fn polysum_horner_matches_naive() {
        let g = PolySum::new(vec![1.0, 0.0, 2.0, 0.5]); // 1 + 2n² + 0.5n³
        for &n in &[0.0, 0.5, 1.0, 3.0, 10.0] {
            let naive = 1.0 + 2.0 * n * n + 0.5 * n * n * n;
            assert!((g.g(n) - naive).abs() < 1e-9 * naive.max(1.0));
        }
    }

    #[test]
    fn forward_axioms_hold_for_all_families() {
        check_forward_axioms(&NoDecay, 0.0, 100.0, 50).unwrap();
        check_forward_axioms(&Monomial::new(0.7), 0.0, 100.0, 50).unwrap();
        check_forward_axioms(&Monomial::quadratic(), 10.0, 500.0, 50).unwrap();
        check_forward_axioms(&Exponential::new(0.1), 0.0, 100.0, 50).unwrap();
        check_forward_axioms(&LandmarkWindow, 0.0, 100.0, 50).unwrap();
        check_forward_axioms(&PolySum::new(vec![0.0, 1.0, 3.0]), 0.0, 100.0, 50).unwrap();
    }

    #[test]
    fn backward_axioms_hold_for_all_families() {
        check_backward_axioms(&BackNoDecay, 100.0, 50).unwrap();
        check_backward_axioms(&BackSlidingWindow::new(30.0), 100.0, 50).unwrap();
        check_backward_axioms(&BackExponential::new(0.2), 100.0, 50).unwrap();
        check_backward_axioms(&BackPolynomial::new(1.5), 100.0, 50).unwrap();
        check_backward_axioms(&SubPolynomial, 100.0, 50).unwrap();
        check_backward_axioms(&SuperExponential::new(0.01), 100.0, 50).unwrap();
    }

    #[test]
    fn exponential_half_life() {
        let g = Exponential::with_half_life(10.0);
        let w = g.weight(0.0, 0.0, 10.0);
        assert!((w - 0.5).abs() < 1e-12);
        let w2 = g.weight(0.0, 5.0, 25.0);
        assert!((w2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_weight_survives_huge_spans() {
        // g(t−L) overflows f64, but the multiplicative log-domain path keeps
        // the weight exact.
        let g = Exponential::new(1.0);
        let w = g.weight(0.0, 9_999.0, 10_000.0);
        assert!((w - (-1.0f64).exp()).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn ln_g_consistent_with_g() {
        fn check<G: ForwardDecay>(g: &G) {
            for &n in &[0.1, 1.0, 17.0, 123.4] {
                assert!((g.g(n).ln() - g.ln_g(n)).abs() < 1e-9);
            }
        }
        check(&Monomial::new(1.3));
        check(&Exponential::new(0.4));
        check(&PolySum::new(vec![1.0, 2.0]));
    }

    #[test]
    fn any_decay_matches_static_families() {
        let any: AnyDecay = "poly:2".parse().unwrap();
        let stat = Monomial::quadratic();
        for &(l, t_i, t) in &[(0.0, 5.0, 10.0), (100.0, 105.0, 110.0)] {
            assert_eq!(any.weight(l, t_i, t), stat.weight(l, t_i, t));
        }
        let any: AnyDecay = "exp:0.5".parse().unwrap();
        assert!(any.is_multiplicative());
        assert_eq!(any.ln_g(3.0), 1.5);
        let any: AnyDecay = "halflife:10".parse().unwrap();
        assert!((any.weight(0.0, 0.0, 10.0) - 0.5).abs() < 1e-12);
        let any: AnyDecay = "none".parse().unwrap();
        assert_eq!(any.weight(0.0, 1.0, 1e9), 1.0);
        let any: AnyDecay = "landmark".parse().unwrap();
        assert_eq!(any.weight(5.0, 6.0, 100.0), 1.0);
    }

    #[test]
    fn any_decay_rejects_malformed_specs() {
        for bad in [
            "",
            "poly",
            "poly:-1",
            "poly:zzz",
            "exp:0",
            "sliding:5",
            "halflife:-2",
        ] {
            assert!(bad.parse::<AnyDecay>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn any_decay_satisfies_axioms() {
        for spec in ["none", "landmark", "poly:1.5", "exp:0.2", "halflife:30"] {
            let g: AnyDecay = spec.parse().unwrap();
            check_forward_axioms(&g, 0.0, 100.0, 40).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "invalid beta")]
    fn monomial_rejects_nonpositive_beta() {
        let _ = Monomial::new(0.0);
    }

    #[test]
    fn try_constructors_report_instead_of_panicking() {
        assert!(Monomial::try_new(2.0).is_ok());
        assert!(Monomial::try_new(0.0).is_err());
        assert!(Monomial::try_new(f64::NAN).is_err());
        assert!(Exponential::try_new(-1.0).is_err());
        assert!(Exponential::try_with_half_life(0.0).is_err());
        assert!(Exponential::try_with_half_life(60.0).is_ok());
        assert!(PolySum::try_new(vec![]).is_err());
        assert!(PolySum::try_new(vec![0.0, 0.0]).is_err());
        assert!(PolySum::try_new(vec![1.0, -1.0]).is_err());
        assert!(PolySum::try_new(vec![0.0, 1.0]).is_ok());
        let msg = Monomial::try_new(0.0).unwrap_err().to_string();
        assert!(msg.contains("beta") && msg.contains("> 0"), "{msg}");
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_nonpositive_alpha() {
        let _ = Exponential::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn polysum_rejects_all_zero() {
        let _ = PolySum::new(vec![0.0, 0.0]);
    }

    #[test]
    fn sliding_window_cutoff_is_sharp() {
        let f = BackSlidingWindow::new(60.0);
        assert_eq!(f.weight(0.0, 59.999), 1.0);
        assert_eq!(f.weight(0.0, 60.0), 0.0);
    }

    #[test]
    fn pre_landmark_arrivals_clamp_to_the_landmark() {
        // For every family, an item stamped before the landmark weighs
        // exactly as much as one stamped *at* the landmark — weight() must
        // not decay it below L, return NaN, or (for exponential) give it a
        // weight below the landmark item's.
        let landmark = 100.0;
        let t = 110.0;
        for g in [
            AnyDecay::None,
            AnyDecay::Monomial(Monomial::new(2.0)),
            AnyDecay::Monomial(Monomial::new(1.5)),
            AnyDecay::Exponential(Exponential::new(0.3)),
            AnyDecay::Landmark(LandmarkWindow),
            AnyDecay::Poly(PolySum::new(vec![1.0, 0.0, 2.0])),
        ] {
            let at_landmark = g.weight(landmark, landmark, t);
            for early in [99.9, 50.0, -1000.0] {
                let w = g.weight(landmark, early, t);
                assert_eq!(
                    w, at_landmark,
                    "pre-landmark arrival at {early} disagrees with the clamp"
                );
                assert!(!w.is_nan());
            }
        }
    }

    #[test]
    fn clamp_to_landmark_is_identity_at_and_after_l() {
        let l = Timestamp::from_secs_f64(100.0);
        assert_eq!(clamp_to_landmark(Timestamp::from_secs_f64(99.0), l), l);
        assert_eq!(clamp_to_landmark(l, l), l);
        let later = Timestamp::from_secs_f64(101.0);
        assert_eq!(clamp_to_landmark(later, l), later);
    }
}
