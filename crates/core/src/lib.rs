//! # fd-core — Forward Decay for data streams
//!
//! A from-scratch implementation of *"Forward Decay: A Practical Time Decay
//! Model for Streaming Systems"* (Cormode, Shkapenyuk, Srivastava, Xu,
//! ICDE 2009).
//!
//! The paper's central idea: instead of weighting a stream item by a function
//! of its *age* measured **backward** from the (ever-moving) current time,
//! weight it by a function of the time elapsed **forward** from a fixed
//! landmark `L`:
//!
//! ```text
//! w(i, t) = g(t_i − L) / g(t − L)
//! ```
//!
//! for a monotone non-decreasing `g`. The numerator is *fixed at arrival*, so
//! every aggregate reduces to its weighted, undecayed counterpart plus a
//! single scaling by `g(t − L)` at query time. This crate provides:
//!
//! - [`decay`] — forward decay functions (no decay, monomial, exponential,
//!   landmark window, general polynomials) and the classical backward decay
//!   functions they are compared against;
//! - [`aggregates`] — constant-space decayed Count / Sum / Average /
//!   Variance / Min / Max (Theorem 1 of the paper);
//! - [`heavy_hitters`] — weighted SpaceSaving for decayed φ-heavy-hitters
//!   (Theorem 2), plus the unary-optimized variant used as the undecayed
//!   baseline in the paper's experiments;
//! - [`quantiles`] — a weighted q-digest for decayed φ-quantiles (Theorem 3)
//!   and a weighted Greenwald–Khanna summary for unbounded value domains;
//! - [`distinct`] — decayed count-distinct, i.e. the dominance norm
//!   `Σ_v max_{v_i = v} g(t_i − L)` (Theorem 4);
//! - [`sampling`] — decayed sampling with replacement (Theorem 5), weighted
//!   reservoir sampling and priority sampling without replacement
//!   (Theorem 6), and the exponential-decay sampler of Corollary 1, plus
//!   Aggarwal's biased reservoir as the backward-decay baseline;
//! - [`backward`] — the backward-decay machinery the paper benchmarks
//!   against: exponential histograms for sliding-window / arbitrary-decay
//!   sums and counts (with the Cohen–Strauss query-time combination) and a
//!   pane-structured sliding-window heavy-hitter summary;
//! - [`numerics`] — landmark renormalization and log-domain accumulation,
//!   handling the overflow issues of exponential `g` (Section VI-A);
//! - [`kernel`] — batched `g`/`ln_g` evaluation with per-tick memoization
//!   ([`kernel::WeightKernel`]), the scalar building block behind the
//!   `update_batch` fast paths on the summaries;
//! - [`merge`] — the [`merge::Mergeable`] trait: every summary in this crate
//!   can be merged across distributed sites or shards (Section VI-B);
//! - [`cm`] — a weighted Count-Min sketch as an alternative heavy-hitter
//!   backend (compared against SpaceSaving in the ablation benches);
//! - [`checkpoint`] — binary snapshot/restore for every summary (all derive
//!   serde), via an in-repo bincode-style codec;
//! - [`oracle`] — a brute-force differential oracle (keeps the whole
//!   stream, recomputes every decayed answer from scratch), an adversarial
//!   stream generator and a ddmin shrinker, backing the metamorphic
//!   cross-check harness in `tests/differential.rs`;
//! - [`summary`] — the unified [`Summary`] trait (`update_at` / `query_at`
//!   / `landmark`) implemented by every decayed aggregate, sketch and
//!   sampler, so engine, checkpoint and merge layers can be generic;
//! - [`error`] — the [`Error`] enum returned by the `try_` constructors
//!   (`Monomial::try_new`, `Exponential::try_with_half_life`, …) for
//!   callers that prefer reporting over panicking.
//!
//! ## Quick example
//!
//! ```
//! use fd_core::decay::Monomial;
//! use fd_core::aggregates::{DecayedCount, DecayedSum};
//!
//! # fn main() -> Result<(), fd_core::Error> {
//! // Example 1 of the paper: landmark L = 100, g(n) = n², queried at t = 110.
//! let g = Monomial::try_new(2.0)?;
//! let landmark = 100.0;
//! let stream = [(105.0, 4.0), (107.0, 8.0), (103.0, 3.0), (108.0, 6.0), (104.0, 4.0)];
//!
//! let mut count = DecayedCount::new(g.clone(), landmark);
//! let mut sum = DecayedSum::new(g.clone(), landmark);
//! for &(t, v) in &stream {
//!     count.update(t);
//!     sum.update(t, v);
//! }
//! assert!((count.query(110.0) - 1.63).abs() < 1e-9);
//! assert!((sum.query(110.0) - 9.67).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! ## Timestamps
//!
//! All APIs take `impl Into<`[`Timestamp`]`>`: either a [`Timestamp`]
//! (integer microseconds since a fixed epoch, the workspace-wide clock
//! shared with `fd-engine`'s packet tuples) or a plain `f64` in seconds,
//! which converts at microsecond resolution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod aggregates;
pub mod backward;
pub mod checkpoint;
pub mod cm;
pub mod decay;
pub mod distinct;
pub mod error;
pub mod hash;
pub mod heavy_hitters;
pub mod kernel;
pub mod merge;
pub mod numerics;
pub mod oracle;
pub mod quantiles;
pub mod sampling;
pub mod summary;

pub use decay::{BackwardDecay, ForwardDecay};
pub use error::Error;
pub use merge::Mergeable;
pub use summary::{Summary, SummaryStats};

/// One-stop imports for typical forward-decay use.
///
/// ```
/// use fd_core::prelude::*;
///
/// let mut sum = DecayedSum::new(Exponential::with_half_life(60.0), 0.0);
/// sum.update(10.0, 3.0);
/// assert!(sum.query(20.0) > 0.0);
/// ```
pub mod prelude {
    pub use crate::aggregates::{
        DecayedAverage, DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance,
    };
    pub use crate::decay::{
        AnyDecay, BackwardDecay, Exponential, ForwardDecay, LandmarkWindow, Monomial, NoDecay,
        PolySum,
    };
    pub use crate::distinct::DominanceSketch;
    pub use crate::error::Error;
    pub use crate::heavy_hitters::DecayedHeavyHitters;
    pub use crate::kernel::WeightKernel;
    pub use crate::merge::Mergeable;
    pub use crate::quantiles::DecayedQuantiles;
    pub use crate::sampling::{exp_decay_sample, PrioritySampler, WeightedReservoir};
    pub use crate::summary::{Summary, SummaryStats};
    pub use crate::Timestamp;
}

/// An instant on the stream clock: integer microseconds since an arbitrary
/// fixed epoch.
///
/// The paper is agnostic to time units. This crate fixes *one* clock for the
/// whole workspace: a 64-bit count of microseconds, the native resolution of
/// packet traces, shared by the summaries here and by the `fd-engine` tuple
/// format (which previously kept its own `u64` microsecond clock alongside
/// fd-core's `f64` seconds). Being an integer type, `Timestamp` is totally
/// ordered and hashable, so bucket indices and merge decisions are exact and
/// identical across shards — no float-comparison edge cases.
///
/// All decay math still happens in `f64` seconds via [`as_secs_f64`]; every
/// public API takes `impl Into<Timestamp>`, and `From<f64>` interprets a
/// float as *seconds* (rounded to the nearest microsecond), so existing
/// call sites written against the old `f64` alias compile unchanged:
///
/// ```
/// use fd_core::Timestamp;
///
/// let t: Timestamp = 1.5.into();           // seconds → micros
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(Timestamp::from_micros(250), Timestamp::from(0.00025));
/// ```
///
/// The only semantic requirements on timestamps are unchanged: they must be
/// non-decreasing *on average* (out-of-order arrivals are explicitly
/// supported) and every item timestamp must be at or after the landmark of
/// the summary it feeds.
///
/// [`as_secs_f64`]: Timestamp::as_secs_f64
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Timestamp {
    micros: i64,
}

impl Timestamp {
    /// The epoch itself: `t = 0`.
    pub const ZERO: Timestamp = Timestamp { micros: 0 };

    /// A timestamp from raw microseconds since the epoch.
    pub const fn from_micros(micros: i64) -> Self {
        Self { micros }
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> i64 {
        self.micros
    }

    /// A timestamp from seconds since the epoch, rounded to the nearest
    /// microsecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self {
            micros: (secs * 1e6).round() as i64,
        }
    }

    /// Seconds since the epoch, the unit all decay math runs in.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 * 1e-6
    }
}

impl From<f64> for Timestamp {
    /// Interprets the float as *seconds* since the epoch.
    fn from(secs: f64) -> Self {
        Self::from_secs_f64(secs)
    }
}

impl From<Timestamp> for f64 {
    fn from(t: Timestamp) -> f64 {
        t.as_secs_f64()
    }
}

/// Timestamp difference in *seconds* — ages and window widths feed straight
/// into the `f64` decay math.
impl std::ops::Sub for Timestamp {
    type Output = f64;

    fn sub(self, rhs: Timestamp) -> f64 {
        (self.micros - rhs.micros) as f64 * 1e-6
    }
}

/// Age in seconds of a timestamp relative to a float clock reading —
/// eases migration of call sites that still hold `f64` seconds.
impl std::ops::Sub<Timestamp> for f64 {
    type Output = f64;

    fn sub(self, rhs: Timestamp) -> f64 {
        self - rhs.as_secs_f64()
    }
}

/// Shifts a timestamp by a duration in seconds.
impl std::ops::Add<f64> for Timestamp {
    type Output = Timestamp;

    fn add(self, secs: f64) -> Timestamp {
        Timestamp {
            micros: self.micros + (secs * 1e6).round() as i64,
        }
    }
}

/// Shifts a timestamp back by a duration in seconds.
impl std::ops::Sub<f64> for Timestamp {
    type Output = Timestamp;

    fn sub(self, secs: f64) -> Timestamp {
        Timestamp {
            micros: self.micros - (secs * 1e6).round() as i64,
        }
    }
}

/// Compares against a time in seconds (exact at microsecond resolution).
impl PartialEq<f64> for Timestamp {
    fn eq(&self, secs: &f64) -> bool {
        *self == Timestamp::from_secs_f64(*secs)
    }
}

impl PartialEq<Timestamp> for f64 {
    fn eq(&self, t: &Timestamp) -> bool {
        Timestamp::from_secs_f64(*self) == *t
    }
}

impl PartialOrd<f64> for Timestamp {
    fn partial_cmp(&self, secs: &f64) -> Option<std::cmp::Ordering> {
        Some(self.micros.cmp(&Timestamp::from_secs_f64(*secs).micros))
    }
}

impl PartialOrd<Timestamp> for f64 {
    fn partial_cmp(&self, t: &Timestamp) -> Option<std::cmp::Ordering> {
        Some(Timestamp::from_secs_f64(*self).micros.cmp(&t.micros))
    }
}

impl std::fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_secs_f64())
    }
}
