//! # fd-core — Forward Decay for data streams
//!
//! A from-scratch implementation of *"Forward Decay: A Practical Time Decay
//! Model for Streaming Systems"* (Cormode, Shkapenyuk, Srivastava, Xu,
//! ICDE 2009).
//!
//! The paper's central idea: instead of weighting a stream item by a function
//! of its *age* measured **backward** from the (ever-moving) current time,
//! weight it by a function of the time elapsed **forward** from a fixed
//! landmark `L`:
//!
//! ```text
//! w(i, t) = g(t_i − L) / g(t − L)
//! ```
//!
//! for a monotone non-decreasing `g`. The numerator is *fixed at arrival*, so
//! every aggregate reduces to its weighted, undecayed counterpart plus a
//! single scaling by `g(t − L)` at query time. This crate provides:
//!
//! - [`decay`] — forward decay functions (no decay, monomial, exponential,
//!   landmark window, general polynomials) and the classical backward decay
//!   functions they are compared against;
//! - [`aggregates`] — constant-space decayed Count / Sum / Average /
//!   Variance / Min / Max (Theorem 1 of the paper);
//! - [`heavy_hitters`] — weighted SpaceSaving for decayed φ-heavy-hitters
//!   (Theorem 2), plus the unary-optimized variant used as the undecayed
//!   baseline in the paper's experiments;
//! - [`quantiles`] — a weighted q-digest for decayed φ-quantiles (Theorem 3)
//!   and a weighted Greenwald–Khanna summary for unbounded value domains;
//! - [`distinct`] — decayed count-distinct, i.e. the dominance norm
//!   `Σ_v max_{v_i = v} g(t_i − L)` (Theorem 4);
//! - [`sampling`] — decayed sampling with replacement (Theorem 5), weighted
//!   reservoir sampling and priority sampling without replacement
//!   (Theorem 6), and the exponential-decay sampler of Corollary 1, plus
//!   Aggarwal's biased reservoir as the backward-decay baseline;
//! - [`backward`] — the backward-decay machinery the paper benchmarks
//!   against: exponential histograms for sliding-window / arbitrary-decay
//!   sums and counts (with the Cohen–Strauss query-time combination) and a
//!   pane-structured sliding-window heavy-hitter summary;
//! - [`numerics`] — landmark renormalization and log-domain accumulation,
//!   handling the overflow issues of exponential `g` (Section VI-A);
//! - [`merge`] — the [`merge::Mergeable`] trait: every summary in this crate
//!   can be merged across distributed sites or shards (Section VI-B);
//! - [`cm`] — a weighted Count-Min sketch as an alternative heavy-hitter
//!   backend (compared against SpaceSaving in the ablation benches);
//! - [`checkpoint`] — binary snapshot/restore for every summary (all derive
//!   serde), via an in-repo bincode-style codec.
//!
//! ## Quick example
//!
//! ```
//! use fd_core::decay::Monomial;
//! use fd_core::aggregates::{DecayedCount, DecayedSum};
//!
//! // Example 1 of the paper: landmark L = 100, g(n) = n², queried at t = 110.
//! let g = Monomial::new(2.0);
//! let landmark = 100.0;
//! let stream = [(105.0, 4.0), (107.0, 8.0), (103.0, 3.0), (108.0, 6.0), (104.0, 4.0)];
//!
//! let mut count = DecayedCount::new(g.clone(), landmark);
//! let mut sum = DecayedSum::new(g.clone(), landmark);
//! for &(t, v) in &stream {
//!     count.update(t);
//!     sum.update(t, v);
//! }
//! assert!((count.query(110.0) - 1.63).abs() < 1e-9);
//! assert!((sum.query(110.0) - 9.67).abs() < 1e-9);
//! ```
//!
//! ## Timestamps
//!
//! All APIs take timestamps as `f64` seconds (any fixed epoch). The companion
//! crate `fd-engine` converts from its integer microsecond packet clock.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod aggregates;
pub mod backward;
pub mod checkpoint;
pub mod cm;
pub mod decay;
pub mod distinct;
pub mod hash;
pub mod heavy_hitters;
pub mod merge;
pub mod numerics;
pub mod quantiles;
pub mod sampling;

pub use decay::{BackwardDecay, ForwardDecay};
pub use merge::Mergeable;

/// One-stop imports for typical forward-decay use.
///
/// ```
/// use fd_core::prelude::*;
///
/// let mut sum = DecayedSum::new(Exponential::with_half_life(60.0), 0.0);
/// sum.update(10.0, 3.0);
/// assert!(sum.query(20.0) > 0.0);
/// ```
pub mod prelude {
    pub use crate::aggregates::{
        DecayedAverage, DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance,
    };
    pub use crate::decay::{
        AnyDecay, BackwardDecay, Exponential, ForwardDecay, LandmarkWindow, Monomial, NoDecay,
        PolySum,
    };
    pub use crate::distinct::DominanceSketch;
    pub use crate::heavy_hitters::DecayedHeavyHitters;
    pub use crate::merge::Mergeable;
    pub use crate::quantiles::DecayedQuantiles;
    pub use crate::sampling::{exp_decay_sample, PrioritySampler, WeightedReservoir};
    pub use crate::Timestamp;
}

/// A timestamp, in seconds since an arbitrary fixed epoch.
///
/// The paper is agnostic to time units; the whole crate follows suit. The
/// only requirements are that timestamps are non-decreasing *on average*
/// (out-of-order arrivals are explicitly supported) and that every item
/// timestamp is at or after the landmark of the summary it feeds.
pub type Timestamp = f64;
