//! A weighted Count-Min sketch and a CM-based decayed heavy-hitter tracker.
//!
//! The paper's Theorem 2 uses SpaceSaving, but any weighted frequency
//! sketch slots into the same forward-decay reduction: feed it the static
//! weights `g(tᵢ − L)`, scale by `g(t − L)` at query time, rescale the
//! whole (linear) structure when exponential weights grow large. This
//! module provides the Count-Min alternative (Cormode & Muthukrishnan),
//! used by the ablation benchmarks to compare the two backends.

use std::collections::HashMap;

use crate::decay::ForwardDecay;
use crate::hash::SeededHash;
use crate::heavy_hitters::HeavyHitter;
use crate::merge::Mergeable;
use crate::numerics::Renormalizer;
use crate::Timestamp;

/// A Count-Min sketch over weighted updates: `depth` rows of `width`
/// counters; a point query returns the minimum of the item's `depth`
/// counters, overestimating the true weight by at most `ε·W` with
/// probability `1 − δ` (for `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CmSketch {
    width: usize,
    depth: usize,
    /// Row-major `depth × width` counters.
    counters: Vec<f64>,
    hashers: Vec<SeededHash>,
    total: f64,
}

impl CmSketch {
    /// Creates a sketch with explicit dimensions.
    ///
    /// # Panics
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0);
        Self {
            width,
            depth,
            counters: vec![0.0; width * depth],
            hashers: (0..depth as u64)
                .map(|d| SeededHash::new(seed ^ d.wrapping_mul(0xD6E8_FEB8_6659_FD93)))
                .collect(),
            total: 0.0,
        }
    }

    /// Creates a sketch with additive error `ε·W` at failure probability
    /// `δ` per query.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1` and `0 < δ < 1`.
    pub fn with_epsilon_delta(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total ingested weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counters.capacity() * 8 + std::mem::size_of::<Self>()
    }

    /// Adds weight `w ≥ 0` to `item`.
    #[inline]
    pub fn update(&mut self, item: u64, w: f64) {
        debug_assert!(w >= 0.0 && w.is_finite());
        self.total += w;
        for (d, h) in self.hashers.iter().enumerate() {
            let col = (h.hash(item) % self.width as u64) as usize;
            self.counters[d * self.width + col] += w;
        }
    }

    /// Estimated weight of `item`: never an underestimate; overestimates by
    /// at most `ε·W` with probability `1 − δ`.
    #[inline]
    pub fn query(&self, item: u64) -> f64 {
        let mut est = f64::INFINITY;
        for (d, h) in self.hashers.iter().enumerate() {
            let col = (h.hash(item) % self.width as u64) as usize;
            est = est.min(self.counters[d * self.width + col]);
        }
        if est.is_finite() {
            est
        } else {
            0.0
        }
    }

    /// Multiplies every counter and the total by `factor`
    /// (landmark-renormalization support). A factor of exactly `0.0` is
    /// legal — see [`crate::numerics::landmark_shift_factor`].
    pub fn scale_all(&mut self, factor: f64) {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        for c in &mut self.counters {
            *c *= factor;
        }
        self.total *= factor;
    }
}

impl Mergeable for CmSketch {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "dimensions must match"
        );
        assert_eq!(self.hashers, other.hashers, "hash seeds must match");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Decayed φ-heavy-hitters backed by a [`CmSketch`] plus a bounded candidate
/// set — the Count-Min counterpart of
/// [`crate::heavy_hitters::DecayedHeavyHitters`].
///
/// Candidates are the items whose sketched decayed weight reached the
/// `φ/2`-fraction watermark when last seen; the set is pruned against the
/// sketch whenever it outgrows `capacity`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedCmHeavyHitters<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    sketch: CmSketch,
    phi: f64,
    capacity: usize,
    /// candidate item → sketched estimate when last touched.
    candidates: HashMap<u64, f64>,
}

impl<G: ForwardDecay> DecayedCmHeavyHitters<G> {
    /// Creates a tracker for φ-heavy-hitters with sketch error `ε` (choose
    /// `ε ≤ φ/2` for useful answers) and failure probability `δ`.
    pub fn new(
        g: G,
        landmark: impl Into<Timestamp>,
        phi: f64,
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Self {
        let landmark = landmark.into();
        assert!(phi > 0.0 && phi < 1.0);
        let capacity = (8.0 / phi).ceil() as usize;
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            sketch: CmSketch::with_epsilon_delta(epsilon, delta, seed),
            phi,
            capacity,
            candidates: HashMap::with_capacity(capacity * 2),
        }
    }

    /// Ingests an occurrence of `item` at time `t_i`. Pre-landmark
    /// timestamps are clamped to the landmark
    /// ([`crate::decay::clamp_to_landmark`]).
    pub fn update(&mut self, t_i: impl Into<Timestamp>, item: u64) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.sketch.scale_all(factor);
            for est in self.candidates.values_mut() {
                *est *= factor;
            }
        }
        let w = self.g.g(t_i - self.renorm.landmark());
        self.sketch.update(item, w);
        let est = self.sketch.query(item);
        if est >= self.phi / 2.0 * self.sketch.total_weight() {
            self.candidates.insert(item, est);
            if self.candidates.len() > self.capacity {
                self.prune();
            }
        }
    }

    /// Drops candidates that have decayed below the watermark; if that is
    /// not enough, keeps only the heaviest `capacity`.
    fn prune(&mut self) {
        let threshold = self.phi / 2.0 * self.sketch.total_weight();
        let sketch = &self.sketch;
        for (item, est) in self.candidates.iter_mut() {
            *est = sketch.query(*item);
        }
        self.candidates.retain(|_, est| *est >= threshold);
        if self.candidates.len() > self.capacity {
            let mut by_weight: Vec<(u64, f64)> =
                self.candidates.iter().map(|(&i, &e)| (i, e)).collect();
            by_weight.sort_by(|a, b| b.1.total_cmp(&a.1));
            by_weight.truncate(self.capacity);
            self.candidates = by_weight.into_iter().collect();
        }
    }

    /// The total decayed count `C` at query time `t`.
    pub fn decayed_count(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            0.0
        } else {
            self.sketch.total_weight() / denom
        }
    }

    /// The φ-heavy-hitters at query time `t` (the φ fixed at construction),
    /// heaviest first.
    pub fn heavy_hitters(&self, t: impl Into<Timestamp>) -> Vec<HeavyHitter> {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            return Vec::new();
        }
        let threshold = self.phi * self.sketch.total_weight();
        let mut out: Vec<HeavyHitter> = self
            .candidates
            .keys()
            .map(|&item| (item, self.sketch.query(item)))
            .filter(|&(_, est)| est >= threshold)
            .map(|(item, est)| HeavyHitter {
                item,
                count: est / denom,
                guaranteed: false,
            })
            .collect();
        out.sort_by(|a, b| b.count.total_cmp(&a.count));
        out
    }

    /// Estimated decayed count of `item` at time `t` (sketch upper bound).
    pub fn estimate(&self, item: u64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            0.0
        } else {
            self.sketch.query(item) / denom
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sketch.size_bytes() + self.candidates.capacity() * 24 + std::mem::size_of::<Self>()
    }
}

impl<G: ForwardDecay> Mergeable for DecayedCmHeavyHitters<G> {
    /// Distributed merge: sketches are aligned to a common effective
    /// landmark (rescaling the side that renormalized less) and added;
    /// candidate sets are unioned, re-estimated against the merged sketch
    /// and pruned back to capacity.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        assert_eq!(self.phi, other.phi, "phi must match");
        if other.renorm.landmark() > self.renorm.landmark() {
            if let Some(f) = self.renorm.rescale_to(&self.g, other.renorm.landmark()) {
                self.sketch.scale_all(f);
            }
            self.sketch.merge_from(&other.sketch);
        } else if other.renorm.landmark() < self.renorm.landmark() {
            let mut o = other.sketch.clone();
            // Log-domain landmark alignment; see DecayedHeavyHitters.
            o.scale_all(crate::numerics::landmark_shift_factor(
                &self.g,
                other.renorm.landmark(),
                self.renorm.landmark(),
            ));
            self.sketch.merge_from(&o);
        } else {
            self.sketch.merge_from(&other.sketch);
        }
        let sketch = &self.sketch;
        for &item in other.candidates.keys() {
            let est = sketch.query(item);
            self.candidates.insert(item, est);
        }
        // prune() re-estimates every candidate against the merged sketch
        // and enforces the capacity bound.
        self.prune();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, Monomial, NoDecay};

    #[test]
    fn cm_never_underestimates_and_bounds_overestimate() {
        let eps = 0.005;
        let mut cm = CmSketch::with_epsilon_delta(eps, 0.01, 42);
        let mut exact: HashMap<u64, f64> = HashMap::new();
        for i in 0..50_000u64 {
            let item = i % 1000;
            let w = 1.0 + (i % 5) as f64;
            cm.update(item, w);
            *exact.entry(item).or_default() += w;
        }
        let w_total = cm.total_weight();
        let mut violations = 0;
        for (&item, &true_w) in &exact {
            let est = cm.query(item);
            assert!(est + 1e-9 >= true_w, "underestimate for {item}");
            if est - true_w > eps * w_total {
                violations += 1;
            }
        }
        // δ = 0.01 per query: allow a handful of the 1000 to exceed.
        assert!(
            violations <= 20,
            "{violations} queries exceeded the ε bound"
        );
    }

    #[test]
    fn cm_absent_items_estimate_small() {
        let mut cm = CmSketch::with_epsilon_delta(0.01, 0.01, 7);
        for i in 0..10_000u64 {
            cm.update(i % 100, 1.0);
        }
        let mut max_ghost = 0.0f64;
        for ghost in 1_000_000..1_000_100u64 {
            max_ghost = max_ghost.max(cm.query(ghost));
        }
        assert!(
            max_ghost <= 0.02 * cm.total_weight(),
            "ghost estimate {max_ghost}"
        );
    }

    #[test]
    fn cm_merge_equals_concat() {
        let mut a = CmSketch::new(256, 4, 1);
        let mut b = CmSketch::new(256, 4, 1);
        let mut whole = CmSketch::new(256, 4, 1);
        for i in 0..20_000u64 {
            let (item, w) = (i % 300, 1.0);
            whole.update(item, w);
            if i % 2 == 0 {
                a.update(item, w)
            } else {
                b.update(item, w)
            }
        }
        a.merge_from(&b);
        for item in 0..300u64 {
            assert!((a.query(item) - whole.query(item)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "hash seeds must match")]
    fn cm_merge_rejects_seed_mismatch() {
        let mut a = CmSketch::new(64, 2, 1);
        let b = CmSketch::new(64, 2, 2);
        a.merge_from(&b);
    }

    #[test]
    fn cm_scale_all_preserves_ratios() {
        let mut cm = CmSketch::new(128, 3, 9);
        cm.update(1, 10.0);
        cm.update(2, 30.0);
        cm.scale_all(0.5);
        assert!((cm.query(1) - 5.0).abs() < 1e-9);
        assert!((cm.query(2) - 15.0).abs() < 1e-9);
        assert!((cm.total_weight() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cm_hh_finds_heavy_items_under_decay() {
        let g = Monomial::quadratic();
        let mut hh = DecayedCmHeavyHitters::new(g, 0.0, 0.1, 0.01, 0.01, 3);
        for i in 0..30_000u64 {
            let t = 1.0 + i as f64 * 0.001;
            let item = if i % 4 == 0 { 999 } else { i % 2000 };
            hh.update(t, item);
        }
        let hits = hh.heavy_hitters(32.0);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].item, 999);
        let c = hh.decayed_count(32.0);
        assert!(
            (hits[0].count / c - 0.25).abs() < 0.05,
            "share {}",
            hits[0].count / c
        );
    }

    #[test]
    fn cm_hh_agrees_with_space_saving_backend() {
        use crate::heavy_hitters::DecayedHeavyHitters;
        let g = Exponential::new(0.05);
        let mut cm = DecayedCmHeavyHitters::new(g, 0.0, 0.05, 0.005, 0.01, 5);
        let mut ss = DecayedHeavyHitters::with_epsilon(g, 0.0, 0.005);
        for i in 0..40_000u64 {
            let t = i as f64 * 0.002;
            // Zipf-ish: item k with frequency ∝ 1/(k+1).
            let item = (i % 97).min(i % 13).min(i % 7);
            cm.update(t, item);
            ss.update(t, item);
        }
        let t_q = 80.0;
        let cm_hits: Vec<u64> = cm.heavy_hitters(t_q).iter().map(|h| h.item).collect();
        let ss_hits: Vec<u64> = ss.heavy_hitters(0.05, t_q).iter().map(|h| h.item).collect();
        assert_eq!(
            cm_hits.first(),
            ss_hits.first(),
            "{cm_hits:?} vs {ss_hits:?}"
        );
        for item in &ss_hits {
            assert!(cm_hits.contains(item), "CM missed {item}");
        }
    }

    #[test]
    fn cm_hh_survives_exponential_overflow() {
        // Round-robin over 3 items with α = 1 at 1 s spacing: the decayed
        // shares are ≈ 0.665 / 0.245 / 0.090 (recency dominates), so
        // φ = 0.05 must report all three.
        let g = Exponential::new(1.0);
        let mut hh = DecayedCmHeavyHitters::new(g, 0.0, 0.05, 0.02, 0.05, 11);
        for i in 0..10_000u64 {
            hh.update(i as f64, i % 3);
        }
        let c = hh.decayed_count(10_000.0);
        assert!(c.is_finite() && c > 0.0);
        let hits = hh.heavy_hitters(10_000.0);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].item, 0, "the most recent item must lead");
    }

    #[test]
    fn cm_hh_candidate_set_stays_bounded() {
        let g = NoDecay;
        let mut hh = DecayedCmHeavyHitters::new(g, 0.0, 0.01, 0.001, 0.01, 13);
        for i in 0..100_000u64 {
            hh.update(i as f64 * 1e-4, i % 50_000);
        }
        assert!(
            hh.candidates.len() <= hh.capacity,
            "{} candidates",
            hh.candidates.len()
        );
    }
}
