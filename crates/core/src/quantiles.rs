//! Quantiles under forward decay (Section IV-C, Theorem 3).
//!
//! Definition 8: the decayed rank of value `v` is
//! `r_v = Σ_{v_i ≤ v} g(t_i − L) / g(t − L)`; the φ-quantile is the smallest
//! `v` with `r_v ≥ φ·C`. As with heavy hitters, factoring out `g(t − L)`
//! reduces this to a *weighted* quantile problem over static weights
//! `g(t_i − L)`, which the q-digest of Shrivastava et al. handles natively.
//!
//! This module provides:
//!
//! - [`QDigest`] — a weighted q-digest over an integer domain `[0, 2^bits)`:
//!   space `O((1/ε)·log U)` counters for rank error `ε·W` (Theorem 3);
//! - [`WeightedGK`] — a weighted Greenwald–Khanna summary over arbitrary
//!   `f64` values (an extension beyond the paper, for unbounded domains);
//! - [`DecayedQuantiles`] — the forward-decay wrapper around [`QDigest`].

use std::collections::HashMap;

use crate::decay::ForwardDecay;
use crate::merge::Mergeable;
use crate::numerics::Renormalizer;
use crate::Timestamp;

// ---------------------------------------------------------------------------
// Weighted q-digest
// ---------------------------------------------------------------------------

/// A weighted q-digest over the integer domain `[0, 2^bits)`.
///
/// Nodes are the dyadic intervals of the domain, identified by 1-based heap
/// numbering (`1` = whole domain, children of `id` are `2·id`, `2·id + 1`,
/// leaves are `2^bits + v`). Each carries an `f64` weight. The digest
/// property is restored by [`Self::compress`], which runs automatically
/// every `capacity` updates.
///
/// For compression parameter `k` (see [`QDigest::new`]), any rank query is
/// answered within `W · bits / k` of the true weighted rank, using at most
/// `O(k)` live nodes. [`QDigest::with_epsilon`] picks `k = ⌈bits/ε⌉` so the
/// rank error is at most `ε·W` — the `O((1/ε) log U)` space of Theorem 3.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QDigest {
    bits: u32,
    k: u64,
    nodes: HashMap<u64, f64>,
    total: f64,
    pending: usize,
}

impl QDigest {
    /// Creates a q-digest for values in `[0, 2^bits)` with compression
    /// parameter `k` (maximum ≈ `3k` live nodes, rank error `W·bits/k`).
    ///
    /// # Panics
    /// Panics unless `1 ≤ bits ≤ 62` and `k ≥ 1`.
    pub fn new(bits: u32, k: u64) -> Self {
        assert!((1..=62).contains(&bits), "bits must be in 1..=62");
        assert!(k >= 1);
        Self {
            bits,
            k,
            nodes: HashMap::new(),
            total: 0.0,
            pending: 0,
        }
    }

    /// Creates a q-digest with rank error at most `ε·W` for values in
    /// `[0, 2^bits)`.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(bits: u32, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self::new(bits, (bits as f64 / epsilon).ceil() as u64)
    }

    /// The domain size `2^bits`.
    pub fn domain(&self) -> u64 {
        1u64 << self.bits
    }

    /// The compression parameter `k` (live nodes stay below ≈ `3k`).
    pub fn compression(&self) -> u64 {
        self.k
    }

    /// Total ingested weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<f64>() + 8)
            + std::mem::size_of::<Self>()
    }

    /// Guaranteed upper bound on rank error, as a fraction of total weight.
    pub fn epsilon(&self) -> f64 {
        self.bits as f64 / self.k as f64
    }

    /// Adds `value` with positive weight `w`. Amortized O(1) plus a periodic
    /// compress.
    pub fn update(&mut self, value: u64, w: f64) {
        assert!(value < self.domain(), "value {value} outside domain");
        debug_assert!(w >= 0.0 && w.is_finite());
        if w == 0.0 {
            return;
        }
        let leaf = self.domain() + value;
        *self.nodes.entry(leaf).or_insert(0.0) += w;
        self.total += w;
        self.pending += 1;
        if self.pending as u64 >= self.k {
            self.compress();
        }
    }

    /// Restores the digest property, pruning light nodes into their parents.
    /// Runs automatically; public for tests and benchmarks. One pass over
    /// the live nodes (bucketed by level, swept leaves-first).
    pub fn compress(&mut self) {
        self.pending = 0;
        let tau = self.total / self.k as f64;
        if tau <= 0.0 {
            return;
        }
        let mut by_level: Vec<Vec<u64>> = vec![Vec::new(); self.bits as usize + 1];
        for &id in self.nodes.keys() {
            let level = 63 - id.leading_zeros();
            by_level[level as usize].push(id);
        }
        for level in (1..=self.bits as usize).rev() {
            let mut i = 0;
            while i < by_level[level].len() {
                let id = by_level[level][i];
                i += 1;
                let sib = id ^ 1;
                let parent = id >> 1;
                // The node may have been merged away as a sibling, or the
                // parent may appear several times in its level bucket; a
                // zero/absent own weight makes the revisit a no-op.
                let own = self.nodes.get(&id).copied().unwrap_or(0.0);
                if own == 0.0 {
                    continue;
                }
                let sib_w = self.nodes.get(&sib).copied().unwrap_or(0.0);
                let par_w = self.nodes.get(&parent).copied().unwrap_or(0.0);
                // q-digest violation: the triple is too light to deserve
                // separate nodes.
                if own + sib_w + par_w < tau {
                    *self.nodes.entry(parent).or_insert(0.0) += own + sib_w;
                    self.nodes.remove(&id);
                    if sib_w > 0.0 {
                        self.nodes.remove(&sib);
                    }
                    // The (possibly new) parent becomes a candidate one
                    // level up.
                    by_level[level - 1].push(parent);
                }
            }
        }
    }

    /// The (approximate) weighted rank of `value`: total weight of items
    /// `≤ value`. Within `ε·W` of the truth.
    pub fn rank(&self, value: u64) -> f64 {
        debug_assert!(value < self.domain());
        // A node [lo, hi] contributes fully if hi ≤ value, half-heartedly
        // (not at all, here) if it straddles. Counting straddlers as zero
        // keeps rank() a lower-ish estimate within the error bound.
        let mut r = 0.0;
        for (&id, &w) in &self.nodes {
            let (_, hi) = self.range(id);
            if hi <= value {
                r += w;
            }
        }
        r
    }

    /// The φ-quantile: the smallest value whose estimated rank reaches
    /// `φ·W`. `None` on an empty digest.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.nodes.is_empty() || self.total <= 0.0 {
            return None;
        }
        let target = (phi.clamp(0.0, 1.0)) * self.total;
        // Visit nodes in increasing max-value order, smaller ranges first
        // (the classic q-digest query order).
        let mut ordered: Vec<(u64, u64, f64)> = self
            .nodes
            .iter()
            .map(|(&id, &w)| {
                let (lo, hi) = self.range(id);
                (hi, hi - lo, w)
            })
            .collect();
        ordered.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut acc = 0.0;
        for (hi, _, w) in ordered {
            acc += w;
            if acc >= target {
                return Some(hi);
            }
        }
        // Rounding: fall back to the maximum value present.
        self.nodes.keys().map(|&id| self.range(id).1).max()
    }

    /// The `[lo, hi]` value range (inclusive) covered by node `id`.
    fn range(&self, id: u64) -> (u64, u64) {
        let level = 63 - id.leading_zeros(); // depth of the node; leaves at `bits`
        let span_bits = self.bits - level;
        let lo = (id - (1u64 << level)) << span_bits;
        (lo, lo + (1u64 << span_bits) - 1)
    }

    /// Multiplies all node weights and the total by `factor`
    /// (landmark-renormalization support). A factor of exactly `0.0` is
    /// legal — a landmark shift across a gap wider than the subnormal range
    /// rounds to zero (see [`crate::numerics::landmark_shift_factor`]).
    pub fn scale_all(&mut self, factor: f64) {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        for w in self.nodes.values_mut() {
            *w *= factor;
        }
        self.total *= factor;
    }
}

impl Mergeable for QDigest {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.bits, other.bits, "domains must match");
        assert_eq!(self.k, other.k, "compression parameters must match");
        for (&id, &w) in &other.nodes {
            *self.nodes.entry(id).or_insert(0.0) += w;
        }
        self.total += other.total;
        self.compress();
    }
}

// ---------------------------------------------------------------------------
// Weighted Greenwald–Khanna
// ---------------------------------------------------------------------------

/// One GK tuple: a stored value, the weight `g` it absorbs, and the
/// uncertainty `Δ` of its rank.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
struct GkTuple {
    v: f64,
    g: f64,
    delta: f64,
}

/// A weighted Greenwald–Khanna quantile summary over arbitrary `f64`
/// values — an extension beyond the paper's q-digest (which needs a bounded
/// integer domain).
///
/// Maintains the invariant `g_i + Δ_i ≤ 2εW`, giving rank queries within
/// `ε·W`. Space is `O((1/ε)·log(εW))` in theory; in practice a few hundred
/// tuples for ε = 0.01.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WeightedGK {
    epsilon: f64,
    tuples: Vec<GkTuple>,
    total: f64,
    pending: usize,
}

impl WeightedGK {
    /// Creates a summary with rank error at most `ε·W`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self {
            epsilon,
            tuples: Vec::new(),
            total: 0.0,
            pending: 0,
        }
    }

    /// Total ingested weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tuples.capacity() * std::mem::size_of::<GkTuple>() + std::mem::size_of::<Self>()
    }

    /// Adds `value` with positive weight `w`.
    pub fn update(&mut self, value: f64, w: f64) {
        debug_assert!(value.is_finite() && w >= 0.0 && w.is_finite());
        if w == 0.0 {
            return;
        }
        self.total += w;
        let budget = 2.0 * self.epsilon * self.total;
        // Position of the first tuple with v ≥ value.
        let pos = self.tuples.partition_point(|t| t.v < value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            0.0 // extremes carry no uncertainty
        } else {
            (budget - w).max(0.0)
        };
        self.tuples.insert(
            pos,
            GkTuple {
                v: value,
                g: w,
                delta,
            },
        );
        self.pending += 1;
        if self.pending as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
        }
    }

    /// Merges adjacent tuples while the invariant allows.
    pub fn compress(&mut self) {
        self.pending = 0;
        if self.tuples.len() < 3 {
            return;
        }
        let budget = 2.0 * self.epsilon * self.total;
        let mut out: Vec<GkTuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        // Never merge into the last tuple's slot prematurely; walk left to
        // right merging tuple i into i+1 where allowed.
        for i in 1..self.tuples.len() {
            let cur = self.tuples[i];
            let prev = *out.last().unwrap();
            let is_first = out.len() == 1;
            if !is_first && prev.g + cur.g + cur.delta <= budget {
                // Absorb prev into cur.
                out.pop();
                out.push(GkTuple {
                    v: cur.v,
                    g: prev.g + cur.g,
                    delta: cur.delta,
                });
            } else {
                out.push(cur);
            }
        }
        self.tuples = out;
    }

    /// The (approximate) weighted rank of `value`, within `ε·W`.
    pub fn rank(&self, value: f64) -> f64 {
        let mut r_min = 0.0;
        for t in &self.tuples {
            if t.v <= value {
                r_min += t.g;
            } else {
                // Midpoint of the uncertainty window.
                return r_min + t.delta / 2.0;
            }
        }
        r_min
    }

    /// The φ-quantile: a value whose weighted rank is within `ε·W` of
    /// `φ·W`. `None` on an empty summary.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        if self.tuples.is_empty() {
            return None;
        }
        let target = phi.clamp(0.0, 1.0) * self.total;
        let mut r_min = 0.0;
        for t in &self.tuples {
            r_min += t.g;
            // First tuple whose maximum possible rank reaches the target:
            // its true rank is within 2εW of the target by the invariant.
            if r_min + t.delta >= target {
                return Some(t.v);
            }
        }
        Some(self.tuples.last().unwrap().v)
    }

    /// Multiplies all tuple weights and the total by `factor`. A factor of
    /// exactly `0.0` is legal — see [`crate::numerics::landmark_shift_factor`].
    pub fn scale_all(&mut self, factor: f64) {
        debug_assert!(factor >= 0.0 && !factor.is_nan());
        for t in &mut self.tuples {
            t.g *= factor;
            t.delta *= factor;
        }
        self.total *= factor;
    }
}

impl Mergeable for WeightedGK {
    /// Merge by interleaving the tuple lists (the standard GK merge: ranks
    /// add, errors add) and recompressing.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.epsilon.to_bits(),
            other.epsilon.to_bits(),
            "error parameters must match"
        );
        let mut merged = Vec::with_capacity(self.tuples.len() + other.tuples.len());
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() || j < other.tuples.len() {
            let take_left = j >= other.tuples.len()
                || (i < self.tuples.len() && self.tuples[i].v <= other.tuples[j].v);
            if take_left {
                merged.push(self.tuples[i]);
                i += 1;
            } else {
                merged.push(other.tuples[j]);
                j += 1;
            }
        }
        self.tuples = merged;
        self.total += other.total;
        self.compress();
    }
}

// ---------------------------------------------------------------------------
// Forward-decayed wrapper
// ---------------------------------------------------------------------------

/// Decayed φ-quantiles under forward decay (Definition 8 / Theorem 3),
/// backed by a weighted [`QDigest`].
///
/// ```
/// use fd_core::quantiles::DecayedQuantiles;
/// use fd_core::decay::Monomial;
///
/// let mut q = DecayedQuantiles::new(Monomial::quadratic(), 0.0, 16, 0.01);
/// for i in 1..=1000u64 {
///     q.update(i as f64 * 0.01, i % 1000);
/// }
/// let median = q.quantile(0.5, 10.0).unwrap();
/// // Under quadratic decay recent (larger) values weigh more, so the
/// // decayed median sits above the plain median of ~500.
/// assert!(median > 550);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DecayedQuantiles<G: ForwardDecay> {
    g: G,
    renorm: Renormalizer,
    inner: QDigest,
}

impl<G: ForwardDecay> DecayedQuantiles<G> {
    /// Creates a decayed quantile summary for values in `[0, 2^bits)` with
    /// rank error `ε` relative to the decayed count.
    pub fn new(g: G, landmark: impl Into<Timestamp>, bits: u32, epsilon: f64) -> Self {
        let landmark = landmark.into();
        Self {
            g,
            renorm: Renormalizer::new(landmark),
            inner: QDigest::with_epsilon(bits, epsilon),
        }
    }

    /// Ingests `(t_i, value)`. Pre-landmark timestamps are clamped to the
    /// landmark ([`crate::decay::clamp_to_landmark`]).
    #[inline]
    pub fn update(&mut self, t_i: impl Into<Timestamp>, value: u64) {
        let t_i = crate::decay::clamp_to_landmark(t_i.into(), self.renorm.original_landmark());
        if let Some(factor) = self.renorm.pre_update(&self.g, t_i) {
            self.inner.scale_all(factor);
        }
        self.inner
            .update(value, self.g.g(t_i - self.renorm.landmark()));
    }

    /// Ingests a columnar batch: `ts[i]` pairs with `values[i]`.
    ///
    /// Hoists the renormalization check to a single
    /// [`pre_update`](crate::numerics::Renormalizer::pre_update) against
    /// the batch maximum and evaluates weights through a
    /// [`WeightKernel`](crate::kernel::WeightKernel); q-digest updates are
    /// applied in slice order. See
    /// [`DecayedCount::update_batch`](crate::aggregates::DecayedCount::update_batch)
    /// for the renormalization rounding caveats.
    ///
    /// # Panics
    /// Panics if the slices' lengths differ.
    pub fn update_batch(&mut self, ts: &[Timestamp], values: &[u64]) {
        assert_eq!(ts.len(), values.len(), "columnar batch slices must align");
        let Some(&max_t) = ts.iter().max() else {
            return;
        };
        if let Some(factor) = self.renorm.pre_update(&self.g, max_t) {
            self.inner.scale_all(factor);
        }
        let l0 = self.renorm.original_landmark();
        let l = self.renorm.landmark();
        let mut k = crate::kernel::WeightKernel::new(self.g.clone());
        for (&t_i, &value) in ts.iter().zip(values) {
            self.inner
                .update(value, k.g(crate::decay::clamp_to_landmark(t_i, l0) - l));
        }
    }

    /// The decayed φ-quantile at query time `t` (which only normalizes; the
    /// quantile itself is independent of `t` because the `g(t−L)` factor
    /// cancels between rank and count).
    pub fn quantile(&self, phi: f64, _t: impl Into<Timestamp>) -> Option<u64> {
        let _t = _t.into();
        self.inner.quantile(phi)
    }

    /// The decayed rank of `value` at query time `t` (Definition 8).
    pub fn rank(&self, value: u64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            0.0
        } else {
            self.inner.rank(value) / denom
        }
    }

    /// The total decayed count `C` at query time `t`.
    pub fn decayed_count(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let denom = self.g.g(t - self.renorm.landmark());
        if denom == 0.0 {
            0.0
        } else {
            self.inner.total_weight() / denom
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.size_bytes() + std::mem::size_of::<Self>()
    }

    /// Access to the underlying q-digest.
    pub fn inner(&self) -> &QDigest {
        &self.inner
    }
}

impl<G: ForwardDecay> Mergeable for DecayedQuantiles<G> {
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.renorm.original_landmark(),
            other.renorm.original_landmark(),
            "summaries must share a landmark"
        );
        if other.renorm.landmark() > self.renorm.landmark() {
            if let Some(f) = self.renorm.rescale_to(&self.g, other.renorm.landmark()) {
                self.inner.scale_all(f);
            }
            self.inner.merge_from(&other.inner);
        } else if other.renorm.landmark() < self.renorm.landmark() {
            let mut o = other.inner.clone();
            // Log-domain landmark alignment; see DecayedHeavyHitters.
            o.scale_all(crate::numerics::landmark_shift_factor(
                &self.g,
                other.renorm.landmark(),
                self.renorm.landmark(),
            ));
            self.inner.merge_from(&o);
        } else {
            self.inner.merge_from(&other.inner);
        }
    }
}

// ----- unified Summary API ------------------------------------------------

use crate::summary::Summary;

impl<G: ForwardDecay> DecayedQuantiles<G> {
    /// The landmark `L` passed at construction.
    pub fn landmark(&self) -> Timestamp {
        self.renorm.original_landmark()
    }
}

/// Values in, total decayed mass out; ranks and quantiles come from the
/// inherent [`quantile`] / [`rank`] methods.
///
/// [`quantile`]: DecayedQuantiles::quantile
/// [`rank`]: DecayedQuantiles::rank
impl<G: ForwardDecay> Summary for DecayedQuantiles<G> {
    type Update = u64;
    type Output = f64;

    fn landmark(&self) -> Timestamp {
        self.landmark()
    }

    fn update_at(&mut self, t_i: Timestamp, value: u64) {
        self.update(t_i, value);
    }

    fn update_batch_at(&mut self, ts: &[Timestamp], values: &[u64]) {
        self.update_batch(ts, values);
    }

    fn query_at(&self, t: Timestamp) -> f64 {
        self.decayed_count(t)
    }

    fn stats(&self) -> crate::summary::SummaryStats {
        crate::summary::SummaryStats {
            renormalizations: self.renorm.rescales(),
            occupancy: self.inner.len() as u64,
            // The digest property caps live nodes at ≈ 3k.
            capacity: 3 * self.inner.compression(),
            items: 0, // not tracked by the q-digest
            accepted: 0,
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        let total = self.inner.total_weight();
        if total.is_nan() || total < 0.0 {
            return Err(format!("q-digest total weight invalid: {total}"));
        }
        let mut node_sum = 0.0;
        for (&id, &w) in &self.inner.nodes {
            if w.is_nan() || w < 0.0 {
                return Err(format!("q-digest node {id} has invalid weight {w}"));
            }
            node_sum += w;
        }
        // Node weights must account for the total (same additions, possibly
        // reassociated by compression).
        if (node_sum - total).abs() > 1e-6 * total.max(1.0) {
            return Err(format!(
                "q-digest node mass {node_sum} disagrees with total {total}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{Exponential, Monomial, NoDecay};

    /// Brute-force weighted rank for checking.
    fn exact_rank(items: &[(u64, f64)], v: u64) -> f64 {
        items.iter().filter(|(x, _)| *x <= v).map(|(_, w)| w).sum()
    }

    #[test]
    fn qdigest_node_ranges() {
        let q = QDigest::new(3, 8); // domain [0, 8)
        assert_eq!(q.range(1), (0, 7));
        assert_eq!(q.range(2), (0, 3));
        assert_eq!(q.range(3), (4, 7));
        assert_eq!(q.range(8), (0, 0)); // first leaf
        assert_eq!(q.range(15), (7, 7)); // last leaf
    }

    #[test]
    fn qdigest_exact_when_uncompressed() {
        let mut q = QDigest::new(8, 1_000_000);
        let items: Vec<(u64, f64)> = (0..100).map(|i| (i % 256, 1.0 + (i % 3) as f64)).collect();
        for &(v, w) in &items {
            q.update(v, w);
        }
        for v in [0u64, 50, 99, 255] {
            assert!((q.rank(v) - exact_rank(&items, v)).abs() < 1e-9);
        }
    }

    #[test]
    fn qdigest_rank_error_within_epsilon() {
        let eps = 0.05;
        let mut q = QDigest::with_epsilon(16, eps);
        let mut items = Vec::new();
        // Deterministic messy mixture over a 16-bit domain.
        for i in 0..20_000u64 {
            let v = (i.wrapping_mul(2654435761) >> 16) & 0xFFFF;
            let w = 1.0 + (i % 7) as f64;
            q.update(v, w);
            items.push((v, w));
        }
        let w_total: f64 = items.iter().map(|(_, w)| w).sum();
        assert!((q.total_weight() - w_total).abs() < 1e-6 * w_total);
        for v in (0..0xFFFFu64).step_by(4111) {
            let err = (q.rank(v) - exact_rank(&items, v)).abs();
            assert!(
                err <= eps * w_total + 1e-6,
                "rank({v}) error {err} > {}",
                eps * w_total
            );
        }
        // Space bound: O((1/ε) log U) nodes.
        assert!(
            q.len() as f64 <= 4.0 * 16.0 / eps,
            "too many nodes: {}",
            q.len()
        );
    }

    #[test]
    fn qdigest_quantiles_within_epsilon() {
        let eps = 0.02;
        let mut q = QDigest::with_epsilon(12, eps);
        let mut items = Vec::new();
        for i in 0..50_000u64 {
            let v = (i.wrapping_mul(40503) ^ (i >> 3)) & 0xFFF;
            q.update(v, 1.0);
            items.push((v, 1.0));
        }
        let w_total = items.len() as f64;
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = q.quantile(phi).unwrap();
            let r = exact_rank(&items, est);
            assert!(
                r >= (phi - 2.0 * eps) * w_total && r - 1.0 <= (phi + 2.0 * eps) * w_total,
                "phi = {phi}: rank {r} of estimate {est} outside window"
            );
        }
    }

    #[test]
    fn qdigest_merge_matches_concat() {
        let eps = 0.05;
        let mut a = QDigest::with_epsilon(10, eps);
        let mut b = QDigest::with_epsilon(10, eps);
        let mut whole = QDigest::with_epsilon(10, eps);
        let mut items = Vec::new();
        for i in 0..10_000u64 {
            let v = (i * 37) % 1024;
            let w = 1.0;
            whole.update(v, w);
            if i % 2 == 0 {
                a.update(v, w)
            } else {
                b.update(v, w)
            }
            items.push((v, w));
        }
        a.merge_from(&b);
        let w_total = items.len() as f64;
        for v in (0..1024u64).step_by(101) {
            let exact = exact_rank(&items, v);
            assert!((a.rank(v) - exact).abs() <= 2.0 * eps * w_total);
        }
        assert!((a.total_weight() - whole.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn gk_exact_small_stream() {
        let mut gk = WeightedGK::new(0.1);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            gk.update(v, 1.0);
        }
        assert_eq!(gk.quantile(0.5), Some(3.0));
        assert!((gk.rank(3.0) - 3.0).abs() <= 0.5 + 1e-9);
    }

    #[test]
    fn gk_rank_error_within_epsilon() {
        let eps = 0.02;
        let mut gk = WeightedGK::new(eps);
        let mut items: Vec<(f64, f64)> = Vec::new();
        for i in 0..30_000u64 {
            let v = ((i.wrapping_mul(2654435761)) % 100_000) as f64 / 100.0;
            let w = 1.0 + (i % 4) as f64;
            gk.update(v, w);
            items.push((v, w));
        }
        let w_total: f64 = items.iter().map(|(_, w)| w).sum();
        for &v in &[1.0, 100.0, 250.0, 500.0, 900.0, 999.0] {
            let exact: f64 = items.iter().filter(|(x, _)| *x <= v).map(|(_, w)| w).sum();
            let err = (gk.rank(v) - exact).abs();
            assert!(err <= 2.0 * eps * w_total, "rank({v}) err {err}");
        }
        // Sublinear space.
        assert!(gk.len() < 2_000, "GK kept {} tuples", gk.len());
    }

    #[test]
    fn gk_quantile_error_with_heavy_weights() {
        // One very heavy late item must shift quantiles decisively.
        let eps = 0.05;
        let mut gk = WeightedGK::new(eps);
        for i in 0..1000 {
            gk.update(i as f64, 1.0);
        }
        gk.update(5000.0, 10_000.0); // dominates everything
        let med = gk.quantile(0.5).unwrap();
        assert_eq!(med, 5000.0);
    }

    #[test]
    fn gk_merge_matches_concat() {
        let eps = 0.05;
        let mut a = WeightedGK::new(eps);
        let mut b = WeightedGK::new(eps);
        let mut items: Vec<(f64, f64)> = Vec::new();
        for i in 0..5_000u64 {
            let v = ((i * 97) % 1000) as f64;
            if i % 2 == 0 {
                a.update(v, 1.0)
            } else {
                b.update(v, 1.0)
            }
            items.push((v, 1.0));
        }
        a.merge_from(&b);
        let w_total = items.len() as f64;
        for &v in &[100.0, 400.0, 700.0] {
            let exact: f64 = items.iter().filter(|(x, _)| *x <= v).map(|(_, w)| w).sum();
            assert!((a.rank(v) - exact).abs() <= 2.0 * eps * w_total);
        }
    }

    #[test]
    fn decayed_quantiles_follow_recency() {
        // Early values small, late values large; decay should pull the
        // median toward the late (large) values.
        let g = Exponential::new(0.1);
        let mut q = DecayedQuantiles::new(g, 0.0, 10, 0.01);
        for i in 0..500 {
            q.update(i as f64 * 0.1, 100); // early: value 100
        }
        for i in 500..600 {
            q.update(i as f64 * 0.1, 900); // late: value 900
        }
        let med = q.quantile(0.5, 60.0).unwrap();
        assert_eq!(med, 900);
        // Without decay the median would be 100 (500 vs 100 occurrences).
        let mut undecayed = DecayedQuantiles::new(NoDecay, 0.0, 10, 0.01);
        for i in 0..500 {
            undecayed.update(i as f64 * 0.1, 100);
        }
        for i in 500..600 {
            undecayed.update(i as f64 * 0.1, 900);
        }
        assert_eq!(undecayed.quantile(0.5, 60.0), Some(100));
    }

    #[test]
    fn decayed_quantiles_match_brute_force() {
        let g = Monomial::quadratic();
        let landmark = 0.0;
        let eps = 0.02;
        let mut q = DecayedQuantiles::new(g, landmark, 10, eps);
        let mut items = Vec::new();
        for i in 0..10_000u64 {
            let t = 1.0 + i as f64 * 0.01;
            let v = (i.wrapping_mul(48271)) % 1024;
            q.update(t, v);
            items.push((t, v));
        }
        let t_q = 102.0;
        let weights: Vec<f64> = items
            .iter()
            .map(|&(t, _)| g.weight(landmark, t, t_q))
            .collect();
        let w_total: f64 = weights.iter().sum();
        for &phi in &[0.25, 0.5, 0.75] {
            let est = q.quantile(phi, t_q).unwrap();
            let exact_r: f64 = items
                .iter()
                .zip(&weights)
                .filter(|((_, v), _)| *v <= est)
                .map(|(_, w)| w)
                .sum();
            let frac = exact_r / w_total;
            assert!(
                (frac - phi).abs() <= 3.0 * eps,
                "phi = {phi}: estimate {est} has decayed rank fraction {frac}"
            );
        }
    }

    #[test]
    fn decayed_quantiles_survive_exponential_overflow() {
        let g = Exponential::new(1.0);
        let mut q = DecayedQuantiles::new(g, 0.0, 8, 0.05);
        for i in 0..5_000u64 {
            q.update(i as f64, i % 256);
        }
        let med = q.quantile(0.5, 5_000.0);
        assert!(med.is_some());
        assert!(q.decayed_count(5_000.0).is_finite());
    }

    #[test]
    fn decayed_quantiles_merge() {
        let g = Monomial::quadratic();
        let mut whole = DecayedQuantiles::new(g, 0.0, 10, 0.02);
        let mut left = DecayedQuantiles::new(g, 0.0, 10, 0.02);
        let mut right = DecayedQuantiles::new(g, 0.0, 10, 0.02);
        for i in 0..4_000u64 {
            let t = 1.0 + i as f64 * 0.01;
            let v = (i * 7) % 1024;
            whole.update(t, v);
            if i % 2 == 0 {
                left.update(t, v)
            } else {
                right.update(t, v)
            }
        }
        left.merge_from(&right);
        for &phi in &[0.25, 0.5, 0.75] {
            let a = whole.quantile(phi, 50.0).unwrap() as f64;
            let b = left.quantile(phi, 50.0).unwrap() as f64;
            assert!((a - b).abs() <= 0.1 * 1024.0, "phi = {phi}: {a} vs {b}");
        }
    }

    #[test]
    fn empty_summaries() {
        assert_eq!(QDigest::new(8, 10).quantile(0.5), None);
        assert_eq!(WeightedGK::new(0.1).quantile(0.5), None);
        let d = DecayedQuantiles::new(NoDecay, 0.0, 8, 0.1);
        assert_eq!(d.quantile(0.5, 10.0), None);
        assert_eq!(d.decayed_count(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn qdigest_rejects_out_of_domain() {
        let mut q = QDigest::new(4, 10);
        q.update(16, 1.0);
    }
}
