//! Brute-force differential oracle: the reference side of the metamorphic
//! harness in `tests/differential.rs`.
//!
//! The paper's central claim (Section III) is that forward decay with frozen
//! numerators `g(t_i − L)` computes *exactly* the decayed answer an offline
//! evaluator would, for any arrival order. That makes every summary in this
//! crate oracle-testable: keep the whole stream, recompute each decayed
//! aggregate from scratch at query time, and the streaming answer must agree
//! — exactly for the O(1) aggregates, within the sketch's error bound for
//! SpaceSaving / q-digest / Count-Min / KMV.
//!
//! Three tools live here:
//!
//! - [`Oracle`], the brute-force evaluator: O(n) space and O(n) per query,
//!   numerically careful (per-item weights via [`ForwardDecay::weight`]'s
//!   log-domain path) but otherwise the most naive possible implementation —
//!   naive enough to be obviously correct;
//! - [`adversarial_stream`], a seeded generator of hostile inputs:
//!   out-of-order arrivals, timestamps at and below the landmark, duplicate
//!   timestamps, zero/negative/huge/NaN values, skewed keys — combined with
//!   extreme decay rates by the harness to force mid-stream renormalization;
//! - [`shrink`], a delta-debugging minimizer that cuts a failing stream down
//!   to a (locally) minimal reproduction, which the harness prints as a
//!   ready-to-commit regression case ([`format_events`]).
//!
//! Seeds come from [`harness_seeds`]: a committed matrix by default, or the
//! `FD_ORACLE_SEED` environment variable for randomized CI smoke runs.

use crate::decay::ForwardDecay;
use crate::Timestamp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One stream item as the oracle sees it: a timestamp, a value (used by the
/// scalar aggregates and samplers), and a key (used by the heavy-hitter,
/// quantile and distinct summaries). Harness streams carry both so one
/// generated stream can drive every summary.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OracleEvent {
    /// Arrival timestamp (may precede the landmark, duplicate a neighbor,
    /// or arrive out of order — that is the point).
    pub t: Timestamp,
    /// Scalar payload; may be zero, negative, huge, or NaN.
    pub v: f64,
    /// Item identifier for keyed summaries.
    pub key: u64,
}

impl OracleEvent {
    /// Convenience constructor from seconds / value / key.
    pub fn new(t_secs: f64, v: f64, key: u64) -> Self {
        Self {
            t: Timestamp::from_secs_f64(t_secs),
            v,
            key,
        }
    }
}

/// The brute-force reference evaluator: holds every `(t_i, v_i, key_i)` and
/// recomputes each decayed answer from scratch at query time.
#[derive(Debug, Clone)]
pub struct Oracle<G: ForwardDecay> {
    g: G,
    landmark: Timestamp,
    events: Vec<OracleEvent>,
}

impl<G: ForwardDecay> Oracle<G> {
    /// An empty oracle for decay `g` against `landmark`.
    pub fn new(g: G, landmark: impl Into<Timestamp>) -> Self {
        Self {
            g,
            landmark: landmark.into(),
            events: Vec::new(),
        }
    }

    /// Records one event.
    pub fn push(&mut self, e: OracleEvent) {
        self.events.push(e);
    }

    /// Records a slice of events.
    pub fn push_all(&mut self, events: &[OracleEvent]) {
        self.events.extend_from_slice(events);
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[OracleEvent] {
        &self.events
    }

    /// The decayed weight of a single arrival at query time `t` —
    /// [`ForwardDecay::weight`], which clamps pre-landmark timestamps and
    /// runs multiplicative decay through the log domain.
    #[inline]
    pub fn weight(&self, t_i: Timestamp, t: Timestamp) -> f64 {
        self.g.weight(self.landmark, t_i, t)
    }

    /// Decayed count `C(t) = Σᵢ w(i, t)`.
    pub fn count(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.events.iter().map(|e| self.weight(e.t, t)).sum()
    }

    /// Decayed sum `S(t) = Σᵢ w(i, t) · vᵢ`.
    pub fn sum(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.events.iter().map(|e| self.weight(e.t, t) * e.v).sum()
    }

    /// Decayed average `S/C`, or `None` when the decayed count is zero.
    pub fn average(&self, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let c = self.count(t);
        (c != 0.0).then(|| self.sum(t) / c)
    }

    /// Decayed variance `Σ w v²/C − (S/C)²`, clamped at zero; `None` when
    /// the decayed count is zero — the same formula as `DecayedVariance`.
    pub fn variance(&self, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let c = self.count(t);
        if c == 0.0 {
            return None;
        }
        let sum_sq: f64 = self
            .events
            .iter()
            .map(|e| self.weight(e.t, t) * e.v * e.v)
            .sum();
        let a = self.sum(t) / c;
        Some((sum_sq / c - a * a).max(0.0))
    }

    /// Decayed minimum (`min = true`) or maximum over `w(i, t) · vᵢ`, with
    /// the witness `(t_i, v_i)` — NaN values skipped, ties broken toward the
    /// lexicographically smallest `(t_i, v_i)`, mirroring `DecayedExtremum`.
    pub fn extremum(&self, min: bool, t: impl Into<Timestamp>) -> Option<(f64, Timestamp, f64)> {
        use std::cmp::Ordering;
        let t = t.into();
        let mut best: Option<(f64, Timestamp, f64)> = None;
        for e in &self.events {
            let d = self.weight(e.t, t) * e.v;
            if d.is_nan() {
                continue;
            }
            let t_i = crate::decay::clamp_to_landmark(e.t, self.landmark);
            let wins = match &best {
                None => true,
                Some((b, bt, bv)) => {
                    let ord = if min { d.total_cmp(b) } else { b.total_cmp(&d) };
                    match ord {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => {
                            t_i < *bt || (t_i == *bt && e.v.total_cmp(bv) == Ordering::Less)
                        }
                    }
                }
            };
            if wins {
                best = Some((d, t_i, e.v));
            }
        }
        best
    }

    /// For a min/max near-tie check: the gap between the best and
    /// second-best *distinct* decayed value, or `None` with fewer than two
    /// distinct values. The harness only asserts on the witness when this
    /// gap is comfortably above rounding noise.
    pub fn extremum_margin(&self, min: bool, t: impl Into<Timestamp>) -> Option<f64> {
        let t = t.into();
        let mut ds: Vec<f64> = self
            .events
            .iter()
            .map(|e| self.weight(e.t, t) * e.v)
            .filter(|d| !d.is_nan())
            .collect();
        ds.sort_by(|a, b| a.total_cmp(b));
        if !min {
            ds.reverse();
        }
        let first = *ds.first()?;
        ds.iter().find(|&&d| d != first).map(|d| (d - first).abs())
    }

    /// Decayed count of one item: `Σ_{keyᵢ = key} w(i, t)`.
    pub fn item_count(&self, key: u64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.events
            .iter()
            .filter(|e| e.key == key)
            .map(|e| self.weight(e.t, t))
            .sum()
    }

    /// The *true* φ-heavy-hitters at `t`: every key whose decayed count is
    /// at least `φ · C(t)`, heaviest first.
    pub fn heavy_hitters(&self, phi: f64, t: impl Into<Timestamp>) -> Vec<(u64, f64)> {
        let t = t.into();
        let threshold = phi * self.count(t);
        let mut per_key: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for e in &self.events {
            *per_key.entry(e.key).or_insert(0.0) += self.weight(e.t, t);
        }
        let mut out: Vec<(u64, f64)> = per_key
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Decayed rank of `value` at `t` (Definition 8): the decayed count of
    /// events whose key is `≤ value`.
    pub fn rank(&self, value: u64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.events
            .iter()
            .filter(|e| e.key <= value)
            .map(|e| self.weight(e.t, t))
            .sum()
    }

    /// The exact decayed φ-quantile at `t`: the smallest observed key whose
    /// decayed rank reaches `φ · C(t)`.
    pub fn quantile(&self, phi: f64, t: impl Into<Timestamp>) -> Option<u64> {
        let t = t.into();
        let target = phi * self.count(t);
        let mut keys: Vec<u64> = self.events.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().find(|&k| self.rank(k, t) >= target)
    }

    /// The decayed dominance norm at `t` (Definition 9): per distinct key,
    /// the *maximum* weight any of its occurrences carries, summed.
    pub fn dominance(&self, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let mut per_key: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for e in &self.events {
            let w = self.weight(e.t, t);
            per_key
                .entry(e.key)
                .and_modify(|m| *m = m.max(w))
                .or_insert(w);
        }
        per_key.values().sum()
    }
}

/// Shape parameters for [`adversarial_stream`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of events.
    pub n: usize,
    /// Landmark, in seconds.
    pub landmark: f64,
    /// Rough length of the stream after the landmark, in seconds.
    pub span: f64,
    /// Keys are drawn from `[0, key_domain)`, skewed so a few are heavy.
    pub key_domain: u64,
    /// Typical magnitude of values.
    pub value_scale: f64,
    /// Include NaN values (≈ 2% of events). Leave off for summaries whose
    /// oracle comparison cannot absorb NaN (e.g. witness checks).
    pub allow_nan: bool,
    /// Include pre-landmark stragglers (≈ 10% of events).
    pub pre_landmark: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            n: 400,
            landmark: 100.0,
            span: 60.0,
            key_domain: 64,
            value_scale: 10.0,
            allow_nan: false,
            pre_landmark: true,
        }
    }
}

/// Generates a seeded adversarial stream: mostly-increasing timestamps with
/// out-of-order arrivals, duplicates, items exactly at and before the
/// landmark, and hostile values. Deterministic in `(seed, cfg)`.
pub fn adversarial_stream(seed: u64, cfg: &StreamConfig) -> Vec<OracleEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(cfg.n);
    let step = cfg.span / cfg.n.max(1) as f64;
    let mut now = cfg.landmark;
    let mut prev_t = Timestamp::from_secs_f64(cfg.landmark);
    for _ in 0..cfg.n {
        now += rng.gen_range(0.0..step * 2.0);
        let roll: f64 = rng.gen_range(0.0..1.0);
        let t = if cfg.pre_landmark && roll < 0.10 {
            // Straggler stamped before the landmark.
            Timestamp::from_secs_f64(cfg.landmark - rng.gen_range(0.0..cfg.span / 4.0))
        } else if roll < 0.20 {
            // Exact duplicate of the previous timestamp.
            prev_t
        } else if roll < 0.35 {
            // Out-of-order arrival from the recent past.
            Timestamp::from_secs_f64((now - rng.gen_range(0.0..cfg.span / 4.0)).max(cfg.landmark))
        } else if roll < 0.40 {
            // Exactly at the landmark.
            Timestamp::from_secs_f64(cfg.landmark)
        } else {
            Timestamp::from_secs_f64(now)
        };
        let vroll: f64 = rng.gen_range(0.0..1.0);
        let v = if cfg.allow_nan && vroll < 0.02 {
            f64::NAN
        } else if vroll < 0.07 {
            0.0
        } else if vroll < 0.12 {
            // Huge magnitude, either sign.
            if rng.gen_bool(0.5) {
                1e6
            } else {
                -1e6
            }
        } else {
            rng.gen_range(-cfg.value_scale..cfg.value_scale)
        };
        // Skew keys so a handful are genuinely heavy.
        let key = if rng.gen_bool(0.5) {
            rng.gen_range(0..cfg.key_domain.clamp(1, 4))
        } else {
            rng.gen_range(0..cfg.key_domain.max(1))
        };
        events.push(OracleEvent { t, v, key });
        prev_t = t;
    }
    events
}

/// Delta-debugging (ddmin) shrinker: repeatedly removes chunks of events,
/// keeping each removal that still makes `fails` return `true`, until the
/// stream is locally minimal (no single remaining event can be dropped).
///
/// `fails` must be deterministic. The result still fails.
pub fn shrink<F: FnMut(&[OracleEvent]) -> bool>(
    events: &[OracleEvent],
    mut fails: F,
) -> Vec<OracleEvent> {
    debug_assert!(fails(events), "shrink() needs a failing input to start");
    let mut cur = events.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if fails(&cand) {
                cur = cand;
                removed_any = true;
                // Keep `i` in place: the next chunk slid into this slot.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            return cur;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Renders events as a Rust array literal — what the harness prints when a
/// shrunk failure needs committing as a named regression test.
pub fn format_events(events: &[OracleEvent]) -> String {
    let mut s = String::from("&[\n");
    for e in events {
        s.push_str(&format!(
            "    OracleEvent {{ t: Timestamp::from_micros({}), v: {:?}, key: {} }},\n",
            e.t.as_micros(),
            e.v,
            e.key
        ));
    }
    s.push(']');
    s
}

/// The seed list the harness iterates: the committed `default` matrix, or a
/// comma-separated override from `FD_ORACLE_SEED` (the CI smoke entry sets
/// it to the run id for a fresh stream per run). An unset, empty, or
/// unparsable variable falls back to the committed matrix.
pub fn harness_seeds(default: &[u64]) -> Vec<u64> {
    if let Ok(raw) = std::env::var("FD_ORACLE_SEED") {
        let parsed: Vec<u64> = raw
            .split(',')
            .filter_map(|p| p.trim().parse().ok())
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    default.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::{DecayedCount, DecayedSum};
    use crate::decay::Monomial;

    #[test]
    fn oracle_agrees_with_streaming_count_and_sum() {
        let g = Monomial::quadratic();
        let mut oracle = Oracle::new(g, 100.0);
        let mut count = DecayedCount::new(g, 100.0);
        let mut sum = DecayedSum::new(g, 100.0);
        for e in adversarial_stream(7, &StreamConfig::default()) {
            oracle.push(e);
            count.update(e.t);
            sum.update(e.t, e.v);
        }
        let t = Timestamp::from_secs_f64(170.0);
        assert!((oracle.count(t) - count.query(t)).abs() <= 1e-9 * oracle.count(t).abs().max(1.0));
        assert!((oracle.sum(t) - sum.query(t)).abs() <= 1e-9 * oracle.sum(t).abs().max(1.0));
    }

    #[test]
    fn generator_is_deterministic_in_seed() {
        let cfg = StreamConfig::default();
        let a = adversarial_stream(42, &cfg);
        let b = adversarial_stream(42, &cfg);
        let c = adversarial_stream(43, &cfg);
        assert_eq!(a.len(), cfg.n);
        assert!(a.iter().zip(&b).all(|(x, y)| {
            x.t == y.t && x.key == y.key && (x.v == y.v || (x.v.is_nan() && y.v.is_nan()))
        }));
        assert!(a.iter().zip(&c).any(|(x, y)| x.t != y.t || x.key != y.key));
    }

    #[test]
    fn generator_covers_the_adversarial_cases() {
        let cfg = StreamConfig {
            n: 2000,
            allow_nan: true,
            ..StreamConfig::default()
        };
        let l = Timestamp::from_secs_f64(cfg.landmark);
        let events = adversarial_stream(11, &cfg);
        assert!(events.iter().any(|e| e.t < l), "no pre-landmark stragglers");
        assert!(events.iter().any(|e| e.t == l), "no landmark-exact events");
        assert!(
            events.windows(2).any(|w| w[1].t == w[0].t),
            "no duplicate timestamps"
        );
        assert!(
            events.windows(2).any(|w| w[1].t < w[0].t),
            "no out-of-order arrivals"
        );
        assert!(events.iter().any(|e| e.v == 0.0), "no zero values");
        assert!(events.iter().any(|e| e.v < 0.0), "no negative values");
        assert!(events.iter().any(|e| e.v.is_nan()), "no NaN values");
    }

    #[test]
    fn shrink_minimizes_a_planted_failure() {
        // Failure predicate: "contains an event with key 13". The minimal
        // failing stream is exactly one such event.
        let cfg = StreamConfig {
            key_domain: 16,
            ..StreamConfig::default()
        };
        let events = adversarial_stream(3, &cfg);
        assert!(events.iter().any(|e| e.key == 13), "seed must plant key 13");
        let minimal = shrink(&events, |es| es.iter().any(|e| e.key == 13));
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal[0].key, 13);
    }

    #[test]
    fn harness_seeds_fall_back_to_default() {
        // The test runner may or may not have FD_ORACLE_SEED set; only the
        // unset path is asserted here (CI covers the override).
        if std::env::var("FD_ORACLE_SEED").is_err() {
            assert_eq!(harness_seeds(&[1, 2, 3]), vec![1, 2, 3]);
        }
    }

    #[test]
    fn extremum_skips_nan_and_breaks_ties_deterministically() {
        let g = Monomial::quadratic();
        let mut o = Oracle::new(g, 0.0);
        o.push(OracleEvent::new(5.0, f64::NAN, 0));
        o.push(OracleEvent::new(7.0, 3.0, 0));
        o.push(OracleEvent::new(5.0, 3.0, 0)); // lighter weight, same value
        let (_, t_i, v) = o.extremum(false, 10.0).unwrap();
        assert_eq!((t_i, v), (Timestamp::from_secs_f64(7.0), 3.0));
        // Exact duplicate of the max: the earliest (t, v) is the witness.
        o.push(OracleEvent::new(7.0, 3.0, 1));
        let (_, t_i, v) = o.extremum(false, 10.0).unwrap();
        assert_eq!((t_i, v), (Timestamp::from_secs_f64(7.0), 3.0));
    }
}
