//! Backward-decay machinery: the baselines the paper benchmarks forward
//! decay against (Sections VII and VIII).
//!
//! - [`ExponentialHistogram`] — Datar, Gionis, Indyk, Motwani (SODA 2002):
//!   approximate counts and sums over sliding windows using
//!   `O((1/ε) log n)` buckets. Run here over an *unbounded* window so that,
//!   following Cohen & Strauss (PODS 2003), **any** backward decay function
//!   chosen at query time can be answered by combining scaled window
//!   queries — exactly the baseline used in the paper's Figure 2;
//! - [`PrefixBackwardHH`] — heavy hitters under arbitrary backward decay
//!   via a dyadic hierarchy over the item domain, one exponential histogram
//!   per prefix node: the structure of Cormode, Korn & Tirthapura
//!   (PODS 2008) that the paper benchmarks in Figures 4 and 5. Its defining
//!   costs — per-tuple overhead an order of magnitude above SpaceSaving,
//!   space in the megabytes and *insensitive to ε* — are the behaviours the
//!   paper reports for the backward-decay approach;
//! - [`SlidingWindowHH`] — a dyadic decomposition over *time* with exact
//!   per-interval key counts, covering the window-query side of the same
//!   comparison;
//! - [`DeterministicWave`] / [`WaveSum`] — Gibbons & Tirthapura
//!   (SPAA 2002): the other classic `O((1/ε) log εN)` sliding-window
//!   count/sum structures, kept as additional baselines.

use std::collections::{HashMap, VecDeque};

use crate::decay::BackwardDecay;
use crate::heavy_hitters::HeavyHitter;
use crate::Timestamp;

// ---------------------------------------------------------------------------
// Exponential histograms
// ---------------------------------------------------------------------------

/// One EH bucket: an aggregated `size` (count or sum of values) and the
/// timestamp of its most recent element.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EhBucket {
    /// Aggregated quantity in the bucket.
    pub size: u64,
    /// Timestamp of the newest element merged into the bucket.
    pub newest: Timestamp,
    /// Timestamp of the oldest element merged into the bucket.
    pub oldest: Timestamp,
}

/// An exponential histogram over an unbounded window.
///
/// Buckets are grouped in size classes `[2^j, 2^{j+1})`; at most
/// `max_per_class` buckets live in any class, the two oldest being merged
/// when the bound is exceeded. Sliding-window count/sum queries are answered
/// with relative error `≈ 1/(max_per_class − 2)`; arbitrary backward decay
/// is answered at query time by weighting each bucket with the decay
/// function (the Cohen–Strauss combination of window queries).
///
/// Counts use [`ExponentialHistogram::insert`] (size-1 elements); sums
/// insert their value via [`ExponentialHistogram::insert_value`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExponentialHistogram {
    max_per_class: usize,
    /// `classes[j]`: buckets of size class `[2^j, 2^{j+1})`, newest at the
    /// front. Canonical EH keeps sizes non-decreasing with age, so all of
    /// class `j + 1` is older than all of class `j`.
    classes: Vec<VecDeque<EhBucket>>,
    total: u64,
    merges: u64,
}

impl ExponentialHistogram {
    /// Creates a histogram with relative error `ε` for window queries
    /// (`⌈1/ε⌉ + 2` buckets per size class).
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self::new((1.0 / epsilon).ceil() as usize + 2)
    }

    /// Creates a histogram allowing `max_per_class ≥ 2` buckets per size
    /// class.
    ///
    /// # Panics
    /// Panics if `max_per_class < 2`.
    pub fn new(max_per_class: usize) -> Self {
        assert!(max_per_class >= 2);
        Self {
            max_per_class,
            classes: Vec::new(),
            total: 0,
            merges: 0,
        }
    }

    /// Inserts one element (a count of 1) at time `t`.
    #[inline]
    pub fn insert(&mut self, t: impl Into<Timestamp>) {
        let t = t.into();
        self.insert_value(t, 1);
    }

    /// Inserts an element of value `v ≥ 1` at time `t` (the EH-for-sums
    /// variant).
    pub fn insert_value(&mut self, t: impl Into<Timestamp>, v: u64) {
        let t = t.into();
        debug_assert!(v >= 1);
        self.total += v;
        let class = 63 - v.leading_zeros() as usize; // ⌊log₂ v⌋
        self.insert_bucket(
            class,
            EhBucket {
                size: v,
                newest: t,
                oldest: t,
            },
        );
        self.cascade(class);
    }

    /// Inserts a bucket into its class keeping the class ordered newest
    /// first. Classes hold at most `max_per_class + 1` buckets, so the scan
    /// is O(1/ε) worst case and O(1) for in-order streams.
    fn insert_bucket(&mut self, class: usize, b: EhBucket) {
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, VecDeque::new);
        }
        let deque = &mut self.classes[class];
        let pos = deque
            .iter()
            .position(|x| x.newest <= b.newest)
            .unwrap_or(deque.len());
        deque.insert(pos, b);
    }

    /// Merge the two oldest buckets of any over-full class, cascading
    /// upward.
    fn cascade(&mut self, mut class: usize) {
        while class < self.classes.len() && self.classes[class].len() > self.max_per_class {
            let oldest = self.classes[class].pop_back().expect("over-full");
            let second = self.classes[class].pop_back().expect("over-full");
            let merged = EhBucket {
                size: oldest.size + second.size,
                newest: oldest.newest.max(second.newest),
                oldest: oldest.oldest.min(second.oldest),
            };
            self.merges += 1;
            let up = 63 - merged.size.leading_zeros() as usize;
            self.insert_bucket(up, merged);
            class = up;
        }
    }

    /// Exact total inserted (counts or summed values) since creation.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of live buckets (`O((1/ε) log n)`).
    pub fn bucket_count(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Number of bucket merges performed (a cost diagnostic).
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Approximate memory footprint in bytes — the "space per group" the
    /// paper plots in Figure 2(d).
    pub fn size_bytes(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<EhBucket>())
            .sum::<usize>()
            + self.classes.capacity() * std::mem::size_of::<VecDeque<EhBucket>>()
            + std::mem::size_of::<Self>()
    }

    /// Approximate count/sum of elements with timestamp in `(t − window,
    /// t]`: buckets fully inside count fully, the straddling bucket counts
    /// half. Relative error bounded by `≈ 1/(max_per_class − 2)`.
    pub fn window_query(&self, window: f64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let cutoff = t - window;
        let mut acc = 0.0;
        let mut straddler: Option<&EhBucket> = None;
        for class in &self.classes {
            for b in class {
                if b.newest > cutoff {
                    acc += b.size as f64;
                    if b.oldest <= cutoff {
                        // Straddling bucket: oldest such (largest size wins
                        // the correction).
                        match straddler {
                            Some(s) if s.size >= b.size => {}
                            _ => straddler = Some(b),
                        }
                    }
                }
            }
        }
        if let Some(s) = straddler {
            acc -= s.size as f64 / 2.0;
        }
        acc
    }

    /// The Cohen–Strauss query-time combination: an approximate decayed
    /// count/sum `Σ_i f(t − t_i)/f(0) · v_i` for **any** backward decay
    /// function `f` supplied now, at query time. Each bucket is weighted by
    /// `f` at the midpoint of its time span; the within-bucket spread is
    /// what the EH's ε controls.
    pub fn decayed_query<F: BackwardDecay>(&self, f: &F, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let f0 = f.f(0.0);
        let mut acc = 0.0;
        for class in &self.classes {
            for b in class {
                let mid = Timestamp::from_micros((b.newest.as_micros() + b.oldest.as_micros()) / 2);
                let age = (t - mid).max(0.0);
                acc += b.size as f64 * f.f(age) / f0;
            }
        }
        acc
    }

    /// All live buckets, newest first.
    pub fn buckets(&self) -> Vec<EhBucket> {
        let mut out = Vec::with_capacity(self.bucket_count());
        for class in &self.classes {
            out.extend(class.iter().copied());
        }
        out.sort_by_key(|n| std::cmp::Reverse(n.newest));
        out
    }

    /// All live buckets of `self`, oldest first (for merging).
    fn buckets_oldest_first(&self) -> Vec<EhBucket> {
        let mut all = self.buckets();
        all.reverse();
        all
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for (j, class) in self.classes.iter().enumerate() {
            assert!(class.len() <= self.max_per_class, "class {j} over-full");
            for b in class {
                let c = 63 - b.size.leading_zeros() as usize;
                assert_eq!(c, j, "bucket of size {} in class {j}", b.size);
                assert!(b.newest >= b.oldest);
            }
            // Newest-first within the class.
            for w in class.iter().zip(class.iter().skip(1)) {
                assert!(w.0.newest >= w.1.newest);
            }
        }
        let sum: u64 = self.classes.iter().flatten().map(|b| b.size).sum();
        assert_eq!(sum, self.total);
    }
}

impl crate::merge::Mergeable for ExponentialHistogram {
    /// Distributed merge: absorb the other histogram's buckets (oldest
    /// first) and re-canonicalize. The merged histogram's window-query
    /// error can reach twice the single-site bound, because a bucket from
    /// one site may interleave with differently-aged buckets from the
    /// other; the total stays exact.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.max_per_class, other.max_per_class,
            "precision must match"
        );
        for b in other.buckets_oldest_first() {
            let class = 63 - b.size.leading_zeros() as usize;
            self.insert_bucket(class, b);
            self.cascade(class);
        }
        self.total += other.total;
        self.merges += other.merges;
    }
}

// ---------------------------------------------------------------------------
// Sliding-window / arbitrary-backward-decay heavy hitters
// ---------------------------------------------------------------------------

/// One sealed time interval of a dyadic level: exact per-key counts.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Interval {
    start: Timestamp,
    counts: HashMap<u64, u64>,
    total: u64,
}

/// One level of the dyadic time decomposition: intervals of a fixed span.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Level {
    span: f64,
    current: Option<Interval>,
    sealed: Vec<Interval>,
}

impl Level {
    fn insert(&mut self, t: Timestamp, item: u64) {
        let aligned = (t.as_secs_f64() / self.span).floor() * self.span;
        let needs_seal = self.current.as_ref().is_some_and(|c| c.start != aligned);
        if needs_seal {
            self.sealed
                .push(self.current.take().expect("checked above"));
        }
        let cur = self.current.get_or_insert_with(|| Interval {
            start: aligned.into(),
            counts: HashMap::new(),
            total: 0,
        });
        *cur.counts.entry(item).or_insert(0) += 1;
        cur.total += 1;
    }

    fn intervals(&self) -> impl Iterator<Item = &Interval> {
        self.sealed.iter().chain(self.current.iter())
    }
}

/// Heavy hitters under *backward* decay chosen at query time: the baseline
/// for the paper's Figures 4 and 5, standing in for the out-of-order
/// sliding-window structures of Cormode, Korn & Tirthapura (PODS 2008).
///
/// As in that line of work, the stream is maintained under a **dyadic
/// decomposition over time**: level ℓ partitions time into intervals of
/// `pane_duration · 2^ℓ` seconds, and every arrival updates one interval at
/// *every* level, so that any sliding window `[t − a, t]` can later be
/// assembled from O(log) dyadic nodes, and an arbitrary decay function can
/// be answered at query time as a combination of scaled window queries
/// (Cohen–Strauss).
///
/// This structure deliberately exhibits the backward-decay costs the paper
/// measures: `O(levels)` hash-map updates per tuple (CPU well above
/// SpaceSaving — Figure 5), every distinct key stored at every level (space
/// a multiple of the input key set, and **independent of ε** —
/// Figure 4(c)(d)).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SlidingWindowHH {
    pane_duration: f64,
    levels: Vec<Level>,
    items: u64,
}

impl SlidingWindowHH {
    /// Creates a summary with the given finest pane duration (seconds) and
    /// `levels ≥ 1` dyadic levels (maximum exactly-decomposable window
    /// `pane_duration · 2^{levels−1}`).
    ///
    /// # Panics
    /// Panics unless `pane_duration > 0` and `1 ≤ levels ≤ 40`.
    pub fn new(pane_duration: f64, levels: usize) -> Self {
        assert!(pane_duration > 0.0 && pane_duration.is_finite());
        assert!((1..=40).contains(&levels));
        Self {
            pane_duration,
            levels: (0..levels)
                .map(|l| Level {
                    span: pane_duration * (1u64 << l) as f64,
                    current: None,
                    sealed: Vec::new(),
                })
                .collect(),
            items: 0,
        }
    }

    /// Ingests an occurrence of `item` at time `t ≥ 0`. O(levels) hash-map
    /// updates.
    pub fn update(&mut self, t: impl Into<Timestamp>, item: u64) {
        let t = t.into();
        debug_assert!(t >= 0.0, "dyadic time decomposition needs t ≥ 0");
        self.items += 1;
        for level in &mut self.levels {
            level.insert(t, item);
        }
    }

    /// Total items ingested.
    pub fn items_seen(&self) -> u64 {
        self.items
    }

    /// The finest pane duration in seconds.
    pub fn pane_duration(&self) -> f64 {
        self.pane_duration
    }

    /// Number of dyadic levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total live intervals across all levels (a space diagnostic).
    pub fn interval_count(&self) -> usize {
        self.levels.iter().map(|l| l.intervals().count()).sum()
    }

    /// Approximate memory footprint in bytes: per-key storage across every
    /// interval of every level.
    pub fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.intervals())
            .map(|i| i.counts.capacity() * 24 + std::mem::size_of::<Interval>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Exact count of `item` within the window `(t − a, t]`, assembled from
    /// the finest level whose intervals tile the window (straddling
    /// intervals contribute proportionally — the source of the structure's
    /// approximation).
    pub fn window_count(&self, item: u64, window: f64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let cutoff = t - window;
        let mut acc = 0.0;
        for iv in self.levels[0].intervals() {
            let end = iv.start + self.levels[0].span;
            if end <= cutoff || iv.start > t {
                continue;
            }
            let c = iv.counts.get(&item).copied().unwrap_or(0) as f64;
            if iv.start >= cutoff {
                acc += c;
            } else {
                // Straddler: pro-rate by overlap.
                acc += c * (end - cutoff) / self.levels[0].span;
            }
        }
        acc
    }

    /// The decayed count of every key and the decayed total, for an
    /// arbitrary backward decay function `f` supplied at query time: the
    /// Cohen–Strauss combination over the finest-level intervals, each
    /// weighted by `f` at its midpoint.
    pub fn decayed_counts<F: BackwardDecay>(
        &self,
        f: &F,
        t: impl Into<Timestamp>,
    ) -> (HashMap<u64, f64>, f64) {
        let t = t.into();
        let f0 = f.f(0.0);
        let mut acc: HashMap<u64, f64> = HashMap::new();
        let mut total = 0.0;
        let span = self.levels[0].span;
        for iv in self.levels[0].intervals() {
            if iv.total == 0 {
                continue;
            }
            let mid = iv.start + span * 0.5;
            let w = f.f((t - mid).max(0.0)) / f0;
            if w == 0.0 {
                continue;
            }
            for (&k, &c) in &iv.counts {
                *acc.entry(k).or_insert(0.0) += w * c as f64;
            }
            total += w * iv.total as f64;
        }
        (acc, total)
    }

    /// The φ-heavy-hitters under backward decay `f` at query time `t`.
    pub fn heavy_hitters<F: BackwardDecay>(
        &self,
        f: &F,
        t: impl Into<Timestamp>,
        phi: f64,
    ) -> Vec<HeavyHitter> {
        let t = t.into();
        let (counts, total) = self.decayed_counts(f, t);
        let threshold = phi * total;
        let mut out: Vec<HeavyHitter> = counts
            .into_iter()
            .filter(|(_, c)| *c >= threshold)
            .map(|(item, count)| HeavyHitter {
                item,
                count,
                guaranteed: true,
            })
            .collect();
        out.sort_by(|a, b| b.count.total_cmp(&a.count));
        out
    }
}

// ---------------------------------------------------------------------------
// Deterministic waves
// ---------------------------------------------------------------------------

/// Deterministic Waves (Gibbons & Tirthapura, SPAA 2002): the other classic
/// `O((1/ε) log εN)` structure for sliding-window **counts**, kept here as a
/// second backward-decay baseline next to [`ExponentialHistogram`].
///
/// Level `i` records the timestamps of every `2^i`-th element, keeping the
/// most recent `⌈2/ε⌉ + 2` of them (the factor 2 makes the finest covering
/// level's spacing at most `ε` times the window count). A window query
/// locates the finest level that still covers the window boundary; the
/// position of the latest recorded element at or before the boundary
/// determines the count with relative error at most `ε`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DeterministicWave {
    per_level: usize,
    /// `levels[i]`: (sequence number, timestamp) of recorded elements,
    /// oldest first.
    levels: Vec<VecDeque<(u64, Timestamp)>>,
    n: u64,
}

impl DeterministicWave {
    /// Creates a wave with relative error `ε` for window count queries.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self {
            per_level: (2.0 / epsilon).ceil() as usize + 2,
            levels: Vec::new(),
            n: 0,
        }
    }

    /// Inserts one element at time `t` (non-decreasing).
    pub fn insert(&mut self, t: impl Into<Timestamp>) {
        let t = t.into();
        let seq = self.n;
        self.n += 1;
        // Element seq belongs to levels 0 ..= trailing_zeros(seq).
        let max_level = if seq == 0 { 63 } else { seq.trailing_zeros() } as usize;
        for i in 0..=max_level.min(62) {
            if self.levels.len() <= i {
                self.levels.push(VecDeque::new());
            }
            let level = &mut self.levels[i];
            level.push_back((seq, t));
            if level.len() > self.per_level {
                level.pop_front();
            }
            // Don't create levels far beyond what the stream length
            // justifies.
            if (1u64 << i) > seq.max(1) {
                break;
            }
        }
    }

    /// Total elements inserted.
    pub fn total(&self) -> u64 {
        self.n
    }

    /// Approximate count of elements with timestamp in `(t − window, t]`,
    /// within relative error ε.
    pub fn window_query(&self, window: f64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let cutoff = t - window;
        // Find the finest level whose oldest record is at or before the
        // cutoff (so the boundary is covered).
        for level in &self.levels {
            let Some(&(_, oldest_ts)) = level.front() else {
                continue;
            };
            if oldest_ts > cutoff && level.len() >= self.per_level {
                continue; // boundary precedes this level's coverage
            }
            // Latest record at or before the cutoff; elements after it are
            // in the window.
            let mut boundary_seq = None;
            for &(seq, ts) in level.iter().rev() {
                if ts <= cutoff {
                    boundary_seq = Some(seq);
                    break;
                }
            }
            return match boundary_seq {
                Some(seq) => (self.n - seq - 1) as f64,
                None => self.n as f64, // whole (covered) stream in window
            };
        }
        self.n as f64
    }

    /// Number of stored records across all levels.
    pub fn record_count(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.capacity() * 16).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

/// The sum variant of [`DeterministicWave`]: approximate sliding-window
/// **sums** of non-negative integer values in `O((1/ε) log εV)` space.
///
/// Level `i` records a `(cumulative sum, timestamp)` checkpoint every time
/// the running sum crosses a multiple of `2^i`, keeping the most recent
/// `⌈2/ε⌉ + 2` checkpoints. A window query subtracts the latest checkpoint
/// at or before the boundary from the total, at the finest level still
/// covering the boundary; the skipped remainder is at most one level stride
/// ≤ `ε` times the window sum.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WaveSum {
    per_level: usize,
    /// `levels[i]`: (cumulative sum at checkpoint, timestamp), oldest
    /// first.
    levels: Vec<VecDeque<(u64, Timestamp)>>,
    /// Running sum of all inserted values.
    cum: u64,
}

impl WaveSum {
    /// Creates a wave with relative error `ε` for window sum queries.
    ///
    /// # Panics
    /// Panics unless `0 < ε ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self {
            per_level: (2.0 / epsilon).ceil() as usize + 2,
            levels: Vec::new(),
            cum: 0,
        }
    }

    /// Inserts a value `v ≥ 0` at time `t` (non-decreasing).
    pub fn insert(&mut self, t: impl Into<Timestamp>, v: u64) {
        let t = t.into();
        let before = self.cum;
        self.cum += v;
        // Record a checkpoint at every level whose stride was crossed. If
        // no multiple of 2^i was crossed, none of the coarser strides were
        // either (`x >> i == y >> i` implies `x >> j == y >> j` for j ≥ i).
        for i in 0..63 {
            if before >> i == self.cum >> i {
                break;
            }
            if self.levels.len() <= i {
                self.levels.push(VecDeque::new());
            }
            let level = &mut self.levels[i];
            level.push_back((self.cum, t));
            if level.len() > self.per_level {
                level.pop_front();
            }
        }
    }

    /// Total of all inserted values (exact).
    pub fn total(&self) -> u64 {
        self.cum
    }

    /// Approximate sum of values with timestamp in `(t − window, t]`,
    /// within relative error ε.
    pub fn window_query(&self, window: f64, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        let cutoff = t - window;
        for level in &self.levels {
            let Some(&(_, oldest_ts)) = level.front() else {
                continue;
            };
            if oldest_ts > cutoff && level.len() >= self.per_level {
                continue; // boundary precedes this level's coverage
            }
            let mut boundary_cum = None;
            for &(cum, ts) in level.iter().rev() {
                if ts <= cutoff {
                    boundary_cum = Some(cum);
                    break;
                }
            }
            return match boundary_cum {
                Some(cum) => (self.cum - cum) as f64,
                None => self.cum as f64,
            };
        }
        self.cum as f64
    }

    /// Number of stored checkpoints across all levels.
    pub fn record_count(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.capacity() * 16).sum::<usize>() + std::mem::size_of::<Self>()
    }
}

// ---------------------------------------------------------------------------
// Prefix-hierarchy backward-decay heavy hitters (CKT-style)
// ---------------------------------------------------------------------------

/// Heavy hitters under arbitrary backward decay chosen at query time, via a
/// **dyadic hierarchy over the item domain** — the structure of Cormode,
/// Korn & Tirthapura (PODS 2008), the paper's actual Figure 4/5 baseline.
///
/// Every dyadic prefix of the item id owns an [`ExponentialHistogram`];
/// each arrival inserts into the histogram of *every* prefix
/// (`domain_bits + 1` of them). At query time, the decayed count of any
/// prefix is available through the Cohen–Strauss combination, so the
/// φ-heavy items are found by descending the prefix tree, pruning subtrees
/// below the threshold.
///
/// This reproduces the backward-decay costs the paper reports: tens of EH
/// insertions per tuple (CPU an order of magnitude above SpaceSaving), and
/// space proportional to distinct items × levels × EH buckets — megabytes
/// per group, essentially insensitive to ε (the node count, not the
/// per-node precision, dominates).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PrefixBackwardHH {
    domain_bits: u32,
    epsilon: f64,
    /// (level, prefix) → per-prefix histogram. Level 0 = full ids,
    /// level `domain_bits` = the root (single prefix).
    nodes: HashMap<(u32, u64), ExponentialHistogram>,
    items: u64,
}

impl PrefixBackwardHH {
    /// Creates a summary over item ids in `[0, 2^domain_bits)` with
    /// per-node EH error `ε`. Ids outside the domain are masked.
    ///
    /// # Panics
    /// Panics unless `1 ≤ domain_bits ≤ 40` and `0 < ε ≤ 1`.
    pub fn new(domain_bits: u32, epsilon: f64) -> Self {
        assert!((1..=40).contains(&domain_bits));
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        Self {
            domain_bits,
            epsilon,
            nodes: HashMap::new(),
            items: 0,
        }
    }

    /// Ingests an occurrence of `item` at time `t`: one EH insertion per
    /// prefix level (`domain_bits + 1` insertions).
    pub fn update(&mut self, t: impl Into<Timestamp>, item: u64) {
        let t = t.into();
        self.items += 1;
        let masked = item & ((1u64 << self.domain_bits) - 1);
        let eps = self.epsilon;
        for level in 0..=self.domain_bits {
            let prefix = masked >> level;
            self.nodes
                .entry((level, prefix))
                .or_insert_with(|| ExponentialHistogram::with_epsilon(eps))
                .insert(t);
        }
    }

    /// Total items ingested.
    pub fn items_seen(&self) -> u64 {
        self.items
    }

    /// Number of live prefix nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|eh| eh.size_bytes() + 24)
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Decayed count of one prefix node under `f` at time `t` (zero if the
    /// node does not exist).
    fn node_count_decayed<F: BackwardDecay>(
        &self,
        level: u32,
        prefix: u64,
        f: &F,
        t: Timestamp,
    ) -> f64 {
        self.nodes
            .get(&(level, prefix))
            .map_or(0.0, |eh| eh.decayed_query(f, t))
    }

    /// The decayed total count `C` under `f` at time `t` (the root node).
    pub fn decayed_total<F: BackwardDecay>(&self, f: &F, t: impl Into<Timestamp>) -> f64 {
        let t = t.into();
        self.node_count_decayed(self.domain_bits, 0, f, t)
    }

    /// The φ-heavy-hitters under backward decay `f` at query time `t`,
    /// found by descending the prefix tree.
    pub fn heavy_hitters<F: BackwardDecay>(
        &self,
        f: &F,
        t: impl Into<Timestamp>,
        phi: f64,
    ) -> Vec<HeavyHitter> {
        let t = t.into();
        let total = self.decayed_total(f, t);
        let threshold = phi * total;
        if total <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Stack of (level, prefix) with decayed count ≥ threshold.
        let mut stack = vec![(self.domain_bits, 0u64)];
        while let Some((level, prefix)) = stack.pop() {
            let c = self.node_count_decayed(level, prefix, f, t);
            if c < threshold {
                continue;
            }
            if level == 0 {
                out.push(HeavyHitter {
                    item: prefix,
                    count: c,
                    guaranteed: false,
                });
            } else {
                stack.push((level - 1, prefix << 1));
                stack.push((level - 1, (prefix << 1) | 1));
            }
        }
        out.sort_by(|a, b| b.count.total_cmp(&a.count));
        out
    }
}

impl crate::merge::Mergeable for SlidingWindowHH {
    /// Distributed merge of two dyadic decompositions with identical pane
    /// configuration: intervals covering the same `[start, start + span)`
    /// range have their exact per-key counts added; disjoint intervals are
    /// adopted as-is. Exactness is preserved — both sides hold exact counts
    /// per interval, so the merged structure answers any window or decayed
    /// query as if the concatenated stream had been ingested at one site.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.pane_duration, other.pane_duration,
            "pane durations must match"
        );
        assert_eq!(
            self.levels.len(),
            other.levels.len(),
            "level counts must match"
        );
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            // Index every interval (sealed and current) by start time.
            // Out-of-order sealing can leave several intervals with the
            // same start on either side — fold them all together.
            let mut by_start: std::collections::HashMap<Timestamp, Interval> =
                std::collections::HashMap::new();
            let mut absorb = |iv: Interval| match by_start.entry(iv.start) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let acc = e.get_mut();
                    for (&k, &c) in &iv.counts {
                        *acc.counts.entry(k).or_insert(0) += c;
                    }
                    acc.total += iv.total;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(iv);
                }
            };
            for iv in mine.sealed.drain(..).chain(mine.current.take()) {
                absorb(iv);
            }
            for iv in theirs.intervals() {
                absorb(iv.clone());
            }
            let mut merged: Vec<Interval> = by_start.into_values().collect();
            merged.sort_by_key(|iv| iv.start);
            // The newest interval becomes `current` so later in-order
            // arrivals extend it instead of sealing a fresh one.
            mine.current = merged.pop();
            mine.sealed = merged;
        }
        self.items += other.items;
    }
}

impl crate::merge::Mergeable for PrefixBackwardHH {
    /// Distributed merge: per-prefix exponential histograms are merged
    /// node-wise (missing nodes are adopted whole). Each node inherits the
    /// EH merge guarantee — exact totals, window error up to twice the
    /// single-site bound.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.domain_bits, other.domain_bits,
            "domain sizes must match"
        );
        assert_eq!(self.epsilon, other.epsilon, "precision must match");
        for (key, eh) in &other.nodes {
            match self.nodes.entry(*key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_from(eh);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(eh.clone());
                }
            }
        }
        self.items += other.items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decay::{BackExponential, BackPolynomial, BackSlidingWindow, BackwardDecay};

    /// A deterministic stream: one element per 0.1 s for `n` elements.
    fn ts_stream(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.1).collect()
    }

    #[test]
    fn eh_count_window_error_bound() {
        let eps = 0.1;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let ts = ts_stream(50_000);
        for &t in &ts {
            eh.insert(t);
        }
        eh.check_invariants();
        let t_q = *ts.last().unwrap();
        for &w in &[1.0, 10.0, 100.0, 1000.0, 4000.0] {
            let exact = ts.iter().filter(|&&x| x > t_q - w).count() as f64;
            let est = eh.window_query(w, t_q);
            let rel = (est - exact).abs() / exact.max(1.0);
            assert!(
                rel <= eps,
                "window {w}: est {est}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn eh_bucket_count_is_logarithmic() {
        let mut eh = ExponentialHistogram::with_epsilon(0.1);
        for &t in &ts_stream(100_000) {
            eh.insert(t);
        }
        // O((1/ε) log n) = O(12 × 17) buckets — give generous headroom.
        assert!(
            eh.bucket_count() < 400,
            "bucket count {}",
            eh.bucket_count()
        );
        assert_eq!(eh.total(), 100_000);
    }

    #[test]
    fn eh_sum_window_error_bound() {
        let eps = 0.1;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let items: Vec<(f64, u64)> = (0..30_000)
            .map(|i| (i as f64 * 0.1, 1 + (i as u64 * 7919) % 1400))
            .collect();
        for &(t, v) in &items {
            eh.insert_value(t, v);
        }
        eh.check_invariants();
        let t_q = items.last().unwrap().0;
        for &w in &[10.0, 100.0, 1000.0] {
            let exact: u64 = items
                .iter()
                .filter(|&&(x, _)| x > t_q - w)
                .map(|&(_, v)| v)
                .sum();
            let est = eh.window_query(w, t_q);
            let rel = (est - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 2.0 * eps,
                "window {w}: est {est}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn eh_decayed_query_matches_brute_force_poly() {
        let eps = 0.05;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let ts = ts_stream(20_000);
        for &t in &ts {
            eh.insert(t);
        }
        let t_q = *ts.last().unwrap();
        let f = BackPolynomial::new(1.5);
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let est = eh.decayed_query(&f, t_q);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 3.0 * eps, "est {est}, exact {exact}, rel {rel}");
    }

    #[test]
    fn eh_decayed_query_matches_brute_force_exponential() {
        let eps = 0.02;
        let mut eh = ExponentialHistogram::with_epsilon(eps);
        let ts = ts_stream(20_000);
        for &t in &ts {
            eh.insert(t);
        }
        let t_q = *ts.last().unwrap();
        let f = BackExponential::new(0.01);
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let est = eh.decayed_query(&f, t_q);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.1, "est {est}, exact {exact}, rel {rel}");
    }

    #[test]
    fn eh_decayed_query_sliding_window_decay_equals_window_query_roughly() {
        let mut eh = ExponentialHistogram::with_epsilon(0.05);
        let ts = ts_stream(10_000);
        for &t in &ts {
            eh.insert(t);
        }
        let t_q = *ts.last().unwrap();
        let f = BackSlidingWindow::new(100.0);
        let via_decay = eh.decayed_query(&f, t_q);
        let exact = ts.iter().filter(|&&x| t_q - x < 100.0).count() as f64;
        let rel = (via_decay - exact).abs() / exact;
        assert!(rel < 0.15, "via decay {via_decay}, exact {exact}");
    }

    #[test]
    fn eh_space_grows_with_precision() {
        let build = |eps: f64| {
            let mut eh = ExponentialHistogram::with_epsilon(eps);
            for &t in &ts_stream(50_000) {
                eh.insert(t);
            }
            eh.size_bytes()
        };
        let coarse = build(0.1);
        let fine = build(0.01);
        assert!(
            fine > 3 * coarse,
            "expected ε=0.01 to use much more space: {fine} vs {coarse}"
        );
    }

    #[test]
    fn eh_merge_preserves_total_and_window_error() {
        use crate::merge::Mergeable;
        let eps = 0.05;
        let mut a = ExponentialHistogram::with_epsilon(eps);
        let mut b = ExponentialHistogram::with_epsilon(eps);
        let ts = ts_stream(20_000);
        for (i, &t) in ts.iter().enumerate() {
            if i % 2 == 0 {
                a.insert(t);
            } else {
                b.insert(t);
            }
        }
        a.merge_from(&b);
        a.check_invariants();
        assert_eq!(a.total(), 20_000);
        let t_q = *ts.last().unwrap();
        for &w in &[10.0, 100.0, 1000.0] {
            let exact = ts.iter().filter(|&&x| x > t_q - w).count() as f64;
            let est = a.window_query(w, t_q);
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 2.0 * eps, "window {w}: est {est}, exact {exact}");
        }
        // Decayed queries survive the merge too.
        let f = BackExponential::new(0.01);
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let est = a.decayed_query(&f, t_q);
        assert!((est - exact).abs() / exact < 0.15);
    }

    #[test]
    #[should_panic(expected = "precision must match")]
    fn eh_merge_rejects_mismatched_precision() {
        use crate::merge::Mergeable;
        let mut a = ExponentialHistogram::with_epsilon(0.1);
        let b = ExponentialHistogram::with_epsilon(0.01);
        a.merge_from(&b);
    }

    #[test]
    fn eh_empty_queries() {
        let eh = ExponentialHistogram::with_epsilon(0.1);
        assert_eq!(eh.window_query(10.0, 100.0), 0.0);
        assert_eq!(eh.decayed_query(&BackExponential::new(0.1), 100.0), 0.0);
        assert_eq!(eh.bucket_count(), 0);
    }

    #[test]
    fn swhh_exact_within_single_interval() {
        let mut hh = SlidingWindowHH::new(60.0, 4);
        for i in 0..1000u64 {
            hh.update(i as f64 * 0.01, i % 5);
        }
        let f = BackExponential::new(0.001); // nearly flat
        let (counts, total) = hh.decayed_counts(&f, 10.0);
        assert!((total - 1000.0).abs() < 10.0);
        for v in 0..5u64 {
            assert!((counts[&v] - 200.0).abs() < 5.0);
        }
    }

    #[test]
    fn swhh_decayed_counts_match_brute_force() {
        let mut hh = SlidingWindowHH::new(5.0, 6);
        let mut items: Vec<(f64, u64)> = Vec::new();
        for i in 0..20_000u64 {
            let t = i as f64 * 0.01; // 200 s of stream, 40 finest intervals
            let v = if i % 3 == 0 { 7 } else { i % 50 };
            hh.update(t, v);
            items.push((t, v));
        }
        let t_q = 200.0;
        let f = BackExponential::new(0.05);
        let (counts, total) = hh.decayed_counts(&f, t_q);
        let exact_total: f64 = items.iter().map(|&(t, _)| f.weight(t, t_q)).sum();
        assert!(
            (total - exact_total).abs() / exact_total < 0.2,
            "total {total} vs {exact_total}"
        );
        let exact_7: f64 = items
            .iter()
            .filter(|&&(_, v)| v == 7)
            .map(|&(t, _)| f.weight(t, t_q))
            .sum();
        let got_7 = counts[&7];
        assert!(
            (got_7 - exact_7).abs() / exact_7 < 0.2,
            "key 7: {got_7} vs {exact_7}"
        );
    }

    #[test]
    fn swhh_heavy_hitters_find_the_hot_key() {
        let mut hh = SlidingWindowHH::new(10.0, 4);
        for i in 0..10_000u64 {
            let t = i as f64 * 0.01;
            let v = if i % 2 == 0 { 42 } else { i };
            hh.update(t, v);
        }
        let hits = hh.heavy_hitters(&BackPolynomial::new(1.0), 100.0, 0.3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 42);
    }

    #[test]
    fn swhh_window_count_tiles_the_window() {
        let mut hh = SlidingWindowHH::new(1.0, 8);
        // Key 9: one occurrence per 0.1 s for 100 s.
        for i in 0..1000u64 {
            hh.update(i as f64 * 0.1, 9);
        }
        let t_q = 99.9;
        for window in [5.0, 20.0, 50.0] {
            let got = hh.window_count(9, window, t_q);
            let exact = window * 10.0;
            assert!(
                (got - exact).abs() <= 12.0,
                "window {window}: got {got}, exact ≈ {exact}"
            );
        }
    }

    #[test]
    fn swhh_stores_keys_at_every_level() {
        // The defining space behaviour of Figure 4(c)(d): footprint tracks
        // (distinct keys × levels), with no ε to shrink it.
        let mut small_keys = SlidingWindowHH::new(5.0, 8);
        let mut many_keys = SlidingWindowHH::new(5.0, 8);
        for i in 0..50_000u64 {
            let t = i as f64 * 0.01;
            small_keys.update(t, i % 10);
            many_keys.update(t, i % 10_000);
        }
        assert!(
            many_keys.size_bytes() > 10 * small_keys.size_bytes(),
            "space should track key cardinality: {} vs {}",
            many_keys.size_bytes(),
            small_keys.size_bytes()
        );
        // Coarse levels replicate the key set: at least levels/2 × the keys.
        assert!(
            many_keys.size_bytes() > 4 * 10_000 * 24,
            "levels should multiply the per-key storage: {}",
            many_keys.size_bytes()
        );
        assert_eq!(many_keys.level_count(), 8);
        assert!(many_keys.interval_count() >= 100 + 50 + 25);
    }

    #[test]
    fn wave_window_count_error_bound() {
        let eps = 0.1;
        let mut wave = DeterministicWave::with_epsilon(eps);
        let ts: Vec<f64> = (0..60_000).map(|i| i as f64 * 0.1).collect();
        for &t in &ts {
            wave.insert(t);
        }
        let t_q = *ts.last().unwrap();
        for &w in &[1.0, 10.0, 100.0, 1000.0, 5000.0] {
            let exact = ts.iter().filter(|&&x| x > t_q - w).count() as f64;
            let est = wave.window_query(w, t_q);
            let rel = (est - exact).abs() / exact.max(1.0);
            assert!(rel <= eps + 1e-9, "window {w}: est {est}, exact {exact}");
        }
        assert_eq!(wave.total(), 60_000);
    }

    #[test]
    fn wave_space_is_logarithmic() {
        let mut wave = DeterministicWave::with_epsilon(0.1);
        for i in 0..1_000_000u64 {
            wave.insert(i as f64);
        }
        // ~(2/ε + 2) records × log₂ N levels.
        assert!(
            wave.record_count() < 22 * 21,
            "records: {}",
            wave.record_count()
        );
        assert!(wave.size_bytes() < 16 * 1024);
    }

    #[test]
    fn wave_sum_window_error_bound() {
        let eps = 0.1;
        let mut wave = WaveSum::with_epsilon(eps);
        // Deterministic messy values in [1, 1400].
        let items: Vec<(f64, u64)> = (0..40_000)
            .map(|i| (i as f64 * 0.1, 1 + (i as u64).wrapping_mul(7919) % 1400))
            .collect();
        for &(t, v) in &items {
            wave.insert(t, v);
        }
        assert_eq!(wave.total(), items.iter().map(|&(_, v)| v).sum::<u64>());
        let t_q = items.last().unwrap().0;
        for &w in &[50.0, 500.0, 3000.0] {
            let exact: u64 = items
                .iter()
                .filter(|&&(x, _)| x > t_q - w)
                .map(|&(_, v)| v)
                .sum();
            let est = wave.window_query(w, t_q);
            let rel = (est - exact as f64).abs() / exact as f64;
            // ε plus the unavoidable single-straddler slack.
            assert!(
                rel <= eps + 1400.0 / exact as f64,
                "window {w}: est {est}, exact {exact}, rel {rel}"
            );
        }
        // Space: ~(2/ε + 2) checkpoints × log₂(total) levels.
        assert!(
            wave.record_count() < 22 * 26,
            "records {}",
            wave.record_count()
        );
    }

    #[test]
    fn wave_sum_unit_values_match_count_wave() {
        let mut ws = WaveSum::with_epsilon(0.1);
        let mut wc = DeterministicWave::with_epsilon(0.1);
        for i in 0..10_000u64 {
            ws.insert(i as f64, 1);
            wc.insert(i as f64);
        }
        for &w in &[100.0, 1000.0, 5000.0] {
            let (a, b) = (ws.window_query(w, 9_999.0), wc.window_query(w, 9_999.0));
            let rel = (a - b).abs() / b.max(1.0);
            assert!(rel < 0.2, "window {w}: sum-wave {a} vs count-wave {b}");
        }
    }

    #[test]
    fn wave_short_stream_and_whole_window() {
        let mut wave = DeterministicWave::with_epsilon(0.2);
        for i in 0..10 {
            wave.insert(i as f64);
        }
        assert_eq!(wave.window_query(100.0, 9.0), 10.0);
        let recent = wave.window_query(2.5, 9.0);
        assert!((recent - 3.0).abs() <= 1.0, "recent = {recent}");
    }

    #[test]
    fn prefix_hh_finds_heavy_items_under_decay() {
        let mut hh = PrefixBackwardHH::new(12, 0.05);
        for i in 0..20_000u64 {
            let t = i as f64 * 0.01;
            let v = if i % 3 == 0 { 42 } else { i % 3000 };
            hh.update(t, v);
        }
        let f = BackExponential::new(0.02);
        let hits = hh.heavy_hitters(&f, 200.0, 0.1);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].item, 42);
        // Its decayed count should be ≈ 1/3 of the decayed total.
        let total = hh.decayed_total(&f, 200.0);
        assert!((hits[0].count / total - 1.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn prefix_hh_total_matches_brute_force() {
        let mut hh = PrefixBackwardHH::new(10, 0.05);
        let ts: Vec<f64> = (0..5_000).map(|i| i as f64 * 0.02).collect();
        for (i, &t) in ts.iter().enumerate() {
            hh.update(t, (i % 512) as u64);
        }
        let f = BackPolynomial::new(1.2);
        let t_q = 100.0;
        let exact: f64 = ts.iter().map(|&x| f.weight(x, t_q)).sum();
        let got = hh.decayed_total(&f, t_q);
        assert!((got - exact).abs() / exact < 0.15, "{got} vs {exact}");
    }

    #[test]
    fn prefix_hh_space_tracks_items_not_epsilon() {
        let build = |eps: f64, keys: u64| {
            let mut hh = PrefixBackwardHH::new(16, eps);
            for i in 0..30_000u64 {
                hh.update(i as f64 * 0.01, i % keys);
            }
            hh
        };
        let coarse = build(0.1, 5_000);
        let fine = build(0.02, 5_000);
        // ε changes space by far less than the key cardinality does.
        let ratio_eps = fine.size_bytes() as f64 / coarse.size_bytes() as f64;
        assert!(
            ratio_eps < 2.0,
            "ε should barely move the footprint: {ratio_eps}"
        );
        let few = build(0.1, 50);
        assert!(
            coarse.size_bytes() > 10 * few.size_bytes(),
            "space should track distinct items: {} vs {}",
            coarse.size_bytes(),
            few.size_bytes()
        );
        // And the footprint is huge in absolute terms (MBs in the paper).
        assert!(
            coarse.size_bytes() > 1_000_000,
            "{} bytes",
            coarse.size_bytes()
        );
    }

    #[test]
    fn prefix_hh_masks_out_of_domain_items() {
        let mut hh = PrefixBackwardHH::new(4, 0.1);
        hh.update(1.0, 0xFFFF); // masked to 15
        hh.update(2.0, 15);
        let f = BackExponential::new(0.001);
        let hits = hh.heavy_hitters(&f, 3.0, 0.5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 15);
    }

    #[test]
    fn prefix_hh_empty() {
        let hh = PrefixBackwardHH::new(8, 0.1);
        let f = BackExponential::new(0.1);
        assert_eq!(hh.decayed_total(&f, 1.0), 0.0);
        assert!(hh.heavy_hitters(&f, 1.0, 0.1).is_empty());
    }

    #[test]
    fn swhh_sliding_window_decay_expires_old_intervals() {
        let mut hh = SlidingWindowHH::new(1.0, 6);
        for i in 0..1000u64 {
            hh.update(i as f64 * 0.1, 1); // 100 s of key 1
        }
        for i in 1000..1100u64 {
            hh.update(i as f64 * 0.1, 2); // last 10 s of key 2
        }
        let f = BackSlidingWindow::new(10.0);
        let (counts, _) = hh.decayed_counts(&f, 110.0);
        let c1 = counts.get(&1).copied().unwrap_or(0.0);
        let c2 = counts.get(&2).copied().unwrap_or(0.0);
        assert!(c2 > 50.0, "recent key under-counted: {c2}");
        // Key 1 may leak via the straddling interval, but must be mostly
        // gone.
        assert!(
            c1 < c2 / 2.0,
            "expired key still dominant: c1 = {c1}, c2 = {c2}"
        );
    }
}
