//! Distributed merging of summaries (Section VI-B of the paper).
//!
//! Forward decay extends naturally to distributed and parallel settings:
//! *"given the data structures computed at each centralized site for the same
//! decay function and landmark, they can easily be merged to form a data
//! structure summarizing the union of the inputs."* Every summary in this
//! crate implements [`Mergeable`].

/// A summary that can absorb another summary of the union of their inputs.
///
/// # Contract
///
/// Both summaries must have been built with the *same decay function,
/// landmark and configuration* (error parameter, capacity, domain, …).
/// Implementations check what they cheaply can and panic on detectable
/// mismatches; parameters that cannot be compared (e.g. closures) are the
/// caller's responsibility.
///
/// After `a.merge_from(&b)`, `a` must answer queries as if it had ingested
/// the concatenation of both input streams — exactly for the exact
/// summaries, and within the documented error bound for the approximate
/// ones. For the randomized samplers, the *distribution* of the merged
/// sample must match that of a sample drawn from the concatenated stream.
pub trait Mergeable {
    /// Merges `other` into `self`.
    fn merge_from(&mut self, other: &Self);
}
