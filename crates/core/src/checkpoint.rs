//! Checkpoint and restore: compact binary snapshots of any summary.
//!
//! Stream processors checkpoint operator state to survive restarts; all
//! fd-core summaries derive `serde::{Serialize, Deserialize}`, and this
//! module supplies the wire format — a minimal, non-self-describing binary
//! codec in the spirit of bincode (fixed-width little-endian integers,
//! length-prefixed sequences), implemented in-repo because the workspace
//! deliberately carries no serde format crate.
//!
//! ```
//! use fd_core::aggregates::DecayedSum;
//! use fd_core::decay::Monomial;
//! use fd_core::checkpoint::{from_bytes, to_bytes};
//!
//! let mut sum = DecayedSum::new(Monomial::quadratic(), 0.0);
//! sum.update(5.0, 2.0);
//! let snapshot = to_bytes(&sum).unwrap();
//! let mut restored: DecayedSum<Monomial> = from_bytes(&snapshot).unwrap();
//! restored.update(8.0, 3.0);
//! sum.update(8.0, 3.0);
//! assert_eq!(sum.query(10.0), restored.query(10.0));
//! ```
//!
//! The randomized samplers checkpoint their sample state but **not** their
//! RNG (a fresh deterministic RNG is seeded on restore); the restored
//! sampler draws fresh randomness, which leaves all sampling guarantees
//! intact.

use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Serializes a value into the checkpoint wire format.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    to_bytes_into(value, &mut out)?;
    Ok(out)
}

/// Serializes a value into the checkpoint wire format, appending to an
/// existing buffer. Hot checkpoint paths (one aggregator state per live
/// group, tens of thousands per snapshot) use this to avoid the
/// per-value allocation of [`to_bytes`].
pub fn to_bytes_into<T: Serialize>(value: &T, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let mut ser = BinSerializer {
        out: std::mem::take(out),
    };
    let result = value.serialize(&mut ser);
    *out = ser.out;
    result
}

/// Appends a little-endian `u64` — the framing primitive for the
/// hand-packed bulk sections of an engine checkpoint (read back with
/// [`Reader`]).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32` (read back with [`Reader::u32`]).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

// IEEE CRC-32 (reflected, polynomial 0xEDB88320), slicing-by-8. Built at
// compile time: table[0] is the classic byte-at-a-time table, and
// table[j][i] advances table[j-1][i] by one more zero byte, so eight
// lookups fold eight input bytes per step instead of one. The WAL writer
// checksums every streamed batch — megabytes per second — and on a
// small host it shares cores with the dispatcher, so the ~6x here is the
// difference between the checksum being invisible and it dominating the
// writer's CPU (see the `durability_overhead` bench).
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// IEEE CRC-32 of `bytes` — the checksum guarding every WAL record and
/// on-disk checkpoint frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one CRC-framed record: `[len: u32][crc32(payload): u32][payload]`.
///
/// This is the unit of torn-write detection for the durability layer's WAL
/// and checkpoint files: [`read_frame`] refuses a record whose length
/// prefix overruns the buffer or whose payload fails its checksum, so a
/// crash mid-append is detected and cleanly truncated rather than replayed
/// as garbage.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Outcome of [`read_frame`] on the head of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A complete, checksum-verified record. `consumed` is the total
    /// framed size (header + payload) to advance past.
    Complete {
        /// The verified payload.
        payload: &'a [u8],
        /// Bytes to advance (8-byte header plus payload).
        consumed: usize,
    },
    /// The buffer is empty: a clean end of log.
    End,
    /// A torn record: short header, length overrunning the buffer, or a
    /// checksum mismatch. Everything from this offset on is untrustworthy
    /// and should be truncated.
    Torn,
}

/// Reads one [`put_frame`] record off the head of `buf` without panicking
/// on any input. Hostile length prefixes (including `u32::MAX`) land in
/// [`Frame::Torn`], never an overflow or allocation.
pub fn read_frame(buf: &[u8]) -> Frame<'_> {
    if buf.is_empty() {
        return Frame::End;
    }
    if buf.len() < 8 {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > buf.len() - 8 {
        return Frame::Torn;
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != want {
        return Frame::Torn;
    }
    Frame::Complete {
        payload,
        consumed: 8 + len,
    }
}

/// Sequential reader over hand-packed checkpoint sections.
///
/// The serde codec in this module is convenient for small, irregular
/// structures, but its element-at-a-time walk makes serializing tens of
/// thousands of tiny aggregator states cost milliseconds — too slow for
/// checkpoints taken on a live worker's critical path. Bulk sections are
/// therefore packed flat with [`put_u64`] framing and read back here.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.bytes(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// How many unread bytes remain.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if n > self.buf.len() {
            return Err(CodecError::msg(format!(
                "truncated: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Restores a value from [`to_bytes`] output. Fails on truncated or
/// malformed input and on trailing garbage.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError::msg(format!(
            "{} trailing bytes",
            de.input.len()
        )));
    }
    Ok(value)
}

/// Codec failure: truncated input, oversized lengths, bad UTF-8, or a
/// custom serde error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Creates a codec error with the given message.
    ///
    /// Layers that extend the wire format beyond fd-core's summaries — the
    /// engine's aggregator and whole-engine checkpoints — use this to report
    /// their own failures in the same error type.
    pub fn new(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), CodecError> {
        self.out.push(1);
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        v: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::msg("sequences need a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::msg("maps need a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl $trait for &mut BinSerializer {
            type Ok = ();
            type Error = CodecError;
            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);
forward_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::msg(format!(
                "truncated input: wanted {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let raw = u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"));
        // A length cannot exceed the remaining payload (1 byte per element
        // minimum) — reject early rather than attempting huge allocations.
        if raw > self.input.len() as u64 * 8 + 8 {
            return Err(CodecError::msg(format!("implausible length {raw}")));
        }
        Ok(raw as usize)
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let bytes = self.take(std::mem::size_of::<$ty>())?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(CodecError::msg(format!("invalid bool byte {other}"))),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8);
    de_fixed!(deserialize_i16, visit_i16, i16);
    de_fixed!(deserialize_i32, visit_i32, i32);
    de_fixed!(deserialize_i64, visit_i64, i64);
    de_fixed!(deserialize_u16, visit_u16, u16);
    de_fixed!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_u64, visit_u64, u64);
    de_fixed!(deserialize_f32, visit_f32, f32);
    de_fixed!(deserialize_f64, visit_f64, f64);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let raw = u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes"));
        visitor.visit_char(char::from_u32(raw).ok_or_else(|| CodecError::msg("bad char"))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_str(std::str::from_utf8(bytes).map_err(|e| CodecError::msg(e.to_string()))?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(CodecError::msg(format!("invalid option tag {other}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Elements {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Elements {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Entries {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(VariantAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg(
            "cannot skip fields in a non-self-describing format",
        ))
    }
}

struct Elements<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Elements<'_, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct Entries<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> de::MapAccess<'de> for Entries<'_, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for VariantAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let idx = u32::from_le_bytes(self.de.take(4)?.try_into().expect("4 bytes"));
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::collections::{BTreeMap, HashMap};

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-0.0f64);
        roundtrip(&f64::MAX);
        roundtrip(&'λ');
        roundtrip(&"forward decay".to_string());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<f64>::new());
        roundtrip(&Some(3.5f64));
        roundtrip(&Option::<u32>::None);
        let mut m = HashMap::new();
        m.insert((1u32, 2u64), 3.0f64);
        m.insert((4, 5), 6.0);
        roundtrip(&m);
        let mut bt = BTreeMap::new();
        bt.insert(-3i64, vec![1u8, 2]);
        roundtrip(&bt);
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    struct Nested {
        name: String,
        values: Vec<(u64, f64)>,
        tag: Option<Tag>,
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    enum Tag {
        Unit,
        One(u32),
        Pair(u32, u32),
        Struct { a: f64 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(&Nested {
            name: "x".into(),
            values: vec![(1, 2.0), (3, 4.0)],
            tag: Some(Tag::Struct { a: 9.5 }),
        });
        roundtrip(&Tag::Unit);
        roundtrip(&Tag::One(7));
        roundtrip(&Tag::Pair(1, 2));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_bytes(&12345u64).unwrap();
        assert!(from_bytes::<u64>(&bytes[..4]).is_err());
        // Trailing garbage too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(from_bytes::<u64>(&extended).is_err());
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        // A claimed 2^60-element vector in a 16-byte payload.
        let mut bytes = (1u64 << 60).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn nan_survives() {
        let bytes = to_bytes(&f64::NAN).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value ("123456789" → 0xCBF43926) plus edges.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn frames_roundtrip_and_concatenate() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"first");
        put_frame(&mut buf, b"");
        put_frame(&mut buf, &[0xFFu8; 300]);
        let mut cursor = &buf[..];
        let mut seen = Vec::new();
        loop {
            match read_frame(cursor) {
                Frame::Complete { payload, consumed } => {
                    seen.push(payload.to_vec());
                    cursor = &cursor[consumed..];
                }
                Frame::End => break,
                Frame::Torn => panic!("clean log must not read torn"),
            }
        }
        assert_eq!(seen, vec![b"first".to_vec(), vec![], vec![0xFF; 300]]);
    }

    #[test]
    fn every_strict_prefix_of_a_frame_is_torn() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"payload bytes");
        for cut in 1..buf.len() {
            assert_eq!(read_frame(&buf[..cut]), Frame::Torn, "cut at {cut}");
        }
        assert_eq!(read_frame(&[]), Frame::End);
    }

    #[test]
    fn corrupt_frames_are_torn_never_panic() {
        let mut clean = Vec::new();
        put_frame(&mut clean, b"some payload");
        // Flip every single byte in turn: header, crc, or payload damage
        // must all land in Torn (flipping len may also make it Torn via
        // overrun) — never a panic or a bogus Complete.
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            assert_eq!(read_frame(&bad), Frame::Torn, "flipped byte {i}");
        }
        // Hostile length prefix: u32::MAX must not overflow or allocate.
        let mut hostile = vec![0xFF, 0xFF, 0xFF, 0xFF];
        hostile.extend_from_slice(&[0; 12]);
        assert_eq!(read_frame(&hostile), Frame::Torn);
    }

    #[test]
    fn reader_errors_on_short_buffers() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        // A failed read consumes nothing: smaller reads still succeed.
        assert_eq!(r.remaining(), 3);
        assert!(r.u8().is_ok());
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Huge requests cannot wrap.
        let mut r = Reader::new(&[0; 4]);
        assert!(r.bytes(usize::MAX).is_err());
    }
}
