//! # fd-gen — synthetic workloads for the forward-decay experiments
//!
//! The paper evaluates on a live AT&T network tap (~400 000 packets/s,
//! ≈1.8 Gbit/s of TCP and UDP). That feed is obviously unavailable, so this
//! crate generates the closest synthetic equivalent (see DESIGN.md for the
//! substitution argument): Poisson arrivals at a configurable rate,
//! Zipf-skewed destination popularity (tens of thousands of active groups
//! per minute, like the paper's per-destination queries), a realistic
//! packet-length mixture, a TCP/UDP mix, optional timestamp jitter for
//! out-of-order arrival testing, and the NIC flow-sampling knob the paper
//! used to vary the effective stream rate.
//!
//! Also provides a random-walk trade-tick stream for the financial example.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

use fd_engine::tuple::{Micros, Packet, Proto, MICROS_PER_SEC};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Zipf sampling
// ---------------------------------------------------------------------------

/// An exact Zipf(α) sampler over ranks `0..n` via an inverse-CDF table.
///
/// `P(rank = k) ∝ (k + 1)^{−α}`. Construction is O(n); each sample is one
/// uniform draw plus a binary search (O(log n)). Implemented in-repo rather
/// than pulling `rand_distr`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with skew `alpha ≥ 0` (0 =
    /// uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: construction guarantees at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of the given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

// ---------------------------------------------------------------------------
// Packet traces
// ---------------------------------------------------------------------------

/// Configuration of a synthetic packet trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed; same seed ⇒ identical trace.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_secs: f64,
    /// Mean arrival rate, packets per second (Poisson arrivals).
    pub rate_pps: f64,
    /// Number of distinct destination hosts (Zipf-ranked popularity).
    pub n_hosts: usize,
    /// Destination ports drawn per host (a busy server listens on few).
    pub ports_per_host: u16,
    /// Zipf skew of destination popularity (≈1.0 for internet-like).
    pub zipf_skew: f64,
    /// Fraction of TCP packets (the rest are UDP).
    pub tcp_fraction: f64,
    /// Uniform timestamp jitter half-width in seconds (0 = in-order).
    pub ooo_jitter_secs: f64,
    /// Flow-sampling keep-fraction in `(0, 1]` — the paper's NIC knob for
    /// varying the effective stream rate.
    pub flow_sample_rate: f64,
    /// Timestamp of the first packet (microseconds).
    pub start_micros: Micros,
    /// Optional traffic anomaly (e.g. a DDoS-like flood toward one host).
    pub burst: Option<Burst>,
    /// Optional square-wave rate modulation (bursty, non-stationary load).
    pub on_off: Option<OnOff>,
}

/// Square-wave rate modulation: the stream alternates between `on_secs` at
/// the configured rate and `off_secs` at `off_rate_fraction` of it —
/// a simple model of bursty, diurnal or congestion-shaped traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnOff {
    /// Length of the full-rate phase, seconds.
    pub on_secs: f64,
    /// Length of the reduced-rate phase, seconds.
    pub off_secs: f64,
    /// Rate multiplier during the reduced phase, in `(0, 1]`.
    pub off_rate_fraction: f64,
}

/// A traffic anomaly: during `[start_secs, end_secs)`, `fraction` of all
/// packets are redirected to one victim destination — the kind of sudden
/// shift decayed heavy hitters are meant to surface quickly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start, seconds into the trace.
    pub start_secs: f64,
    /// Burst end, seconds into the trace.
    pub end_secs: f64,
    /// Victim destination IP.
    pub dst_ip: u32,
    /// Fraction of in-burst packets aimed at the victim, in `(0, 1]`.
    pub fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            duration_secs: 60.0,
            rate_pps: 100_000.0,
            n_hosts: 20_000,
            ports_per_host: 4,
            zipf_skew: 1.1,
            tcp_fraction: 0.85,
            ooo_jitter_secs: 0.0,
            flow_sample_rate: 1.0,
            start_micros: 0,
            burst: None,
            on_off: None,
        }
    }
}

impl TraceConfig {
    /// Expected number of packets in the trace.
    pub fn expected_packets(&self) -> usize {
        (self.duration_secs * self.rate_pps * self.flow_sample_rate) as usize
    }

    /// Generates the whole trace into memory.
    pub fn generate(&self) -> Vec<Packet> {
        self.iter().collect()
    }

    /// Streams the trace lazily.
    pub fn iter(&self) -> TraceIter {
        assert!(self.duration_secs > 0.0 && self.rate_pps > 0.0);
        assert!(self.flow_sample_rate > 0.0 && self.flow_sample_rate <= 1.0);
        assert!((0.0..=1.0).contains(&self.tcp_fraction));
        assert!(self.ooo_jitter_secs >= 0.0);
        TraceIter {
            cfg: self.clone(),
            zipf: Zipf::new(self.n_hosts, self.zipf_skew),
            rng: SmallRng::seed_from_u64(self.seed),
            clock_secs: 0.0,
        }
    }
}

/// Lazy packet-trace iterator (see [`TraceConfig::iter`]).
pub struct TraceIter {
    cfg: TraceConfig,
    zipf: Zipf,
    rng: SmallRng,
    clock_secs: f64,
}

impl TraceIter {
    /// The classic trimodal internet packet-length mix: ~40% minimal
    /// (ACKs), ~30% mid-size, ~30% MTU-size.
    fn draw_len(&mut self) -> u32 {
        let u: f64 = self.rng.gen();
        if u < 0.4 {
            self.rng.gen_range(40..=100)
        } else if u < 0.7 {
            self.rng.gen_range(101..=576)
        } else {
            1500
        }
    }
}

impl Iterator for TraceIter {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        loop {
            // Poisson arrivals: exponential inter-arrival times, at a rate
            // possibly modulated by the on/off square wave.
            let rate = match self.cfg.on_off {
                Some(oo) => {
                    debug_assert!(oo.on_secs > 0.0 && oo.off_secs > 0.0);
                    debug_assert!(oo.off_rate_fraction > 0.0 && oo.off_rate_fraction <= 1.0);
                    let phase = self.clock_secs % (oo.on_secs + oo.off_secs);
                    if phase < oo.on_secs {
                        self.cfg.rate_pps
                    } else {
                        self.cfg.rate_pps * oo.off_rate_fraction
                    }
                }
                None => self.cfg.rate_pps,
            };
            let u: f64 = self.rng.gen::<f64>().max(1e-300);
            self.clock_secs += -u.ln() / rate;
            if self.clock_secs >= self.cfg.duration_secs {
                return None;
            }
            // Flow sampling drops packets at the NIC, before the engine.
            if self.cfg.flow_sample_rate < 1.0 && self.rng.gen::<f64>() >= self.cfg.flow_sample_rate
            {
                continue;
            }
            let in_burst = self.cfg.burst.is_some_and(|b| {
                (b.start_secs..b.end_secs).contains(&self.clock_secs)
                    && self.rng.gen::<f64>() < b.fraction
            });
            let dst_ip = if in_burst {
                self.cfg.burst.expect("checked above").dst_ip
            } else {
                0x0A00_0000 | self.zipf.sample(&mut self.rng) as u32 // 10.x.y.z
            };
            let dst_port = 8000 + (self.rng.gen::<u16>() % self.cfg.ports_per_host.max(1));
            let src_ip: u32 = self.rng.gen();
            let src_port: u16 = self.rng.gen_range(1024..=65535);
            let len = self.draw_len();
            let proto = if self.rng.gen::<f64>() < self.cfg.tcp_fraction {
                Proto::Tcp
            } else {
                Proto::Udp
            };
            let mut ts_secs = self.clock_secs;
            if self.cfg.ooo_jitter_secs > 0.0 {
                ts_secs += self
                    .rng
                    .gen_range(-self.cfg.ooo_jitter_secs..=self.cfg.ooo_jitter_secs);
                ts_secs = ts_secs.max(0.0);
            }
            let ts = self.cfg.start_micros + (ts_secs * MICROS_PER_SEC as f64) as Micros;
            return Some(Packet {
                ts,
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                len,
                proto,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Trade ticks (financial example)
// ---------------------------------------------------------------------------

/// One trade tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tick {
    /// Trade time in seconds.
    pub ts_secs: f64,
    /// Instrument id.
    pub symbol: u32,
    /// Trade price.
    pub price: f64,
    /// Trade size (shares).
    pub size: u32,
}

/// Configuration of a synthetic trade-tick stream: per-symbol geometric
/// random-walk prices with Poisson arrivals.
#[derive(Debug, Clone)]
pub struct TickerConfig {
    /// RNG seed.
    pub seed: u64,
    /// Stream duration in seconds.
    pub duration_secs: f64,
    /// Mean tick rate across all symbols, ticks per second.
    pub rate_tps: f64,
    /// Number of instruments.
    pub n_symbols: usize,
    /// Per-√second log-price volatility.
    pub volatility: f64,
    /// Initial price for every symbol.
    pub start_price: f64,
}

impl Default for TickerConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            duration_secs: 600.0,
            rate_tps: 1_000.0,
            n_symbols: 16,
            volatility: 0.005,
            start_price: 100.0,
        }
    }
}

impl TickerConfig {
    /// Generates the tick stream (time-ordered).
    pub fn generate(&self) -> Vec<Tick> {
        assert!(self.duration_secs > 0.0 && self.rate_tps > 0.0 && self.n_symbols > 0);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut prices = vec![self.start_price; self.n_symbols];
        let mut last_t = vec![0.0f64; self.n_symbols];
        let mut out = Vec::with_capacity((self.duration_secs * self.rate_tps) as usize);
        let mut clock = 0.0;
        loop {
            let u: f64 = rng.gen::<f64>().max(1e-300);
            clock += -u.ln() / self.rate_tps;
            if clock >= self.duration_secs {
                break;
            }
            let s = rng.gen_range(0..self.n_symbols);
            let dt = (clock - last_t[s]).max(1e-6);
            last_t[s] = clock;
            // Gaussian step via Box–Muller.
            let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-300), rng.gen());
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            prices[s] *= (self.volatility * dt.sqrt() * z).exp();
            out.push(Tick {
                ts_secs: clock,
                symbol: s as u32,
                price: prices[s],
                size: 100 * rng.gen_range(1..=10u32),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(1000, 1.2);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20, 49] {
            let emp = counts[k] as f64 / n as f64;
            let exp = z.pmf(k);
            assert!(
                (emp - exp).abs() < 0.1 * exp + 0.001,
                "rank {k}: emp {emp}, exp {exp}"
            );
        }
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_respects_rate_and_duration() {
        let cfg = TraceConfig {
            rate_pps: 10_000.0,
            duration_secs: 10.0,
            ..Default::default()
        };
        let pkts = cfg.generate();
        let expected = cfg.expected_packets() as f64;
        assert!((pkts.len() as f64 - expected).abs() < 0.05 * expected);
        assert!(pkts.iter().all(|p| p.ts < 10 * MICROS_PER_SEC));
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig {
            duration_secs: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig {
            seed: 43,
            duration_secs: 1.0,
            ..Default::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn trace_destinations_are_zipf_skewed() {
        let cfg = TraceConfig {
            duration_secs: 2.0,
            rate_pps: 100_000.0,
            n_hosts: 10_000,
            zipf_skew: 1.1,
            ..Default::default()
        };
        let pkts = cfg.generate();
        let mut counts = std::collections::HashMap::<u32, u32>::new();
        for p in &pkts {
            *counts.entry(p.dst_ip).or_default() += 1;
        }
        // Head heaviness: rank-0 host (10.0.0.0) must dwarf the mean.
        let hot = counts.get(&0x0A00_0000).copied().unwrap_or(0) as f64;
        let mean = pkts.len() as f64 / counts.len() as f64;
        assert!(hot > 10.0 * mean, "hot {hot}, mean {mean}");
        // And there must be many distinct groups, as the paper stresses.
        assert!(counts.len() > 2_000, "only {} distinct hosts", counts.len());
    }

    #[test]
    fn trace_protocol_mix() {
        let cfg = TraceConfig {
            duration_secs: 1.0,
            tcp_fraction: 0.7,
            ..Default::default()
        };
        let pkts = cfg.generate();
        let tcp = pkts.iter().filter(|p| p.proto == Proto::Tcp).count() as f64;
        let frac = tcp / pkts.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "tcp fraction {frac}");
    }

    #[test]
    fn flow_sampling_halves_the_stream() {
        let full = TraceConfig {
            duration_secs: 2.0,
            ..Default::default()
        };
        let half = TraceConfig {
            flow_sample_rate: 0.5,
            ..full.clone()
        };
        let (nf, nh) = (full.generate().len() as f64, half.generate().len() as f64);
        assert!((nh / nf - 0.5).abs() < 0.03, "ratio {}", nh / nf);
    }

    #[test]
    fn jitter_produces_out_of_order_arrivals() {
        let sorted = TraceConfig {
            duration_secs: 1.0,
            ..Default::default()
        };
        let jittered = TraceConfig {
            ooo_jitter_secs: 0.05,
            ..sorted.clone()
        };
        let is_sorted = |pkts: &[Packet]| pkts.windows(2).all(|w| w[0].ts <= w[1].ts);
        assert!(is_sorted(&sorted.generate()));
        assert!(!is_sorted(&jittered.generate()));
    }

    #[test]
    fn packet_lengths_follow_trimodal_mix() {
        let cfg = TraceConfig {
            duration_secs: 1.0,
            ..Default::default()
        };
        let pkts = cfg.generate();
        let n = pkts.len() as f64;
        let small = pkts.iter().filter(|p| p.len <= 100).count() as f64 / n;
        let mtu = pkts.iter().filter(|p| p.len == 1500).count() as f64 / n;
        assert!((small - 0.4).abs() < 0.03, "small fraction {small}");
        assert!((mtu - 0.3).abs() < 0.03, "mtu fraction {mtu}");
    }

    #[test]
    fn burst_floods_the_victim_during_the_window() {
        let victim = 0x0A00_4242;
        let cfg = TraceConfig {
            duration_secs: 30.0,
            rate_pps: 20_000.0,
            burst: Some(Burst {
                start_secs: 10.0,
                end_secs: 20.0,
                dst_ip: victim,
                fraction: 0.5,
            }),
            ..Default::default()
        };
        let pkts = cfg.generate();
        let count_in = |lo: f64, hi: f64| {
            pkts.iter()
                .filter(|p| {
                    let t = p.ts as f64 / MICROS_PER_SEC as f64;
                    (lo..hi).contains(&t) && p.dst_ip == victim
                })
                .count() as f64
        };
        let before = count_in(0.0, 10.0);
        let during = count_in(10.0, 20.0);
        let after = count_in(20.0, 30.0);
        assert!(during > 90_000.0, "burst too weak: {during}");
        assert!(
            before < 100.0 && after < 100.0,
            "victim traffic outside window: {before}/{after}"
        );
    }

    #[test]
    fn on_off_modulation_shapes_the_rate() {
        let cfg = TraceConfig {
            duration_secs: 40.0,
            rate_pps: 10_000.0,
            on_off: Some(OnOff {
                on_secs: 10.0,
                off_secs: 10.0,
                off_rate_fraction: 0.1,
            }),
            ..Default::default()
        };
        let pkts = cfg.generate();
        let count_in = |lo: f64, hi: f64| {
            pkts.iter()
                .filter(|p| {
                    let t = p.ts as f64 / MICROS_PER_SEC as f64;
                    (lo..hi).contains(&t)
                })
                .count() as f64
        };
        let on_phase = count_in(0.0, 10.0) + count_in(20.0, 30.0);
        let off_phase = count_in(10.0, 20.0) + count_in(30.0, 40.0);
        let ratio = off_phase / on_phase;
        assert!(
            (ratio - 0.1).abs() < 0.03,
            "off/on ratio {ratio}, expected ≈ 0.1"
        );
    }

    #[test]
    fn ticker_prices_walk_and_stay_positive() {
        let cfg = TickerConfig {
            duration_secs: 60.0,
            ..Default::default()
        };
        let ticks = cfg.generate();
        assert!(!ticks.is_empty());
        assert!(ticks.windows(2).all(|w| w[0].ts_secs <= w[1].ts_secs));
        assert!(ticks.iter().all(|t| t.price > 0.0 && t.size > 0));
        // Prices must actually move.
        let p0 = ticks.first().unwrap().price;
        assert!(ticks.iter().any(|t| (t.price - p0).abs() > 1e-6));
        // All symbols show up.
        let symbols: std::collections::HashSet<u32> = ticks.iter().map(|t| t.symbol).collect();
        assert_eq!(symbols.len(), cfg.n_symbols);
    }
}
