//! Process-level crash matrix: murder a real `fdql` process with
//! `SIGKILL` mid-stream, restart it with the same flags, and require the
//! restart to resume from the durable store and print output
//! byte-identical to a run that was never killed. A seeded kill schedule
//! (`FD_CRASH`) lets the CI crash-matrix explore different cut points;
//! an oracle test cross-checks the durable path's actual numbers against
//! the brute-force `fd_core::oracle` reference.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use fd_core::decay::Monomial;
use fd_core::oracle::{Oracle, OracleEvent};
use fd_gen::TraceConfig;

const FDQL: &str = env!("CARGO_BIN_EXE_fdql");

/// A self-cleaning store directory under the system temp dir.
struct StoreDir(PathBuf);

impl StoreDir {
    fn new(label: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("fd-process-crash-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The query under test. `--pace-ms` stretches the run to a few hundred
/// milliseconds so a kill can land mid-stream; it does not change output.
fn args(data_dir: Option<&Path>, pace_ms: u64) -> Vec<String> {
    let mut a: Vec<String> = [
        "--agg",
        "fwd_sum",
        "--group",
        "dst_host",
        "--bucket",
        "2",
        "--rate",
        "15000",
        "--duration",
        "3",
        "--hosts",
        "200",
        "--seed",
        "11",
        "--shards",
        "2",
        "--checkpoint-every",
        "512",
        "--format",
        "csv",
        "--limit",
        "0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(dir) = data_dir {
        a.push("--data-dir".into());
        a.push(dir.display().to_string());
    }
    if pace_ms > 0 {
        a.push("--pace-ms".into());
        a.push(pace_ms.to_string());
    }
    a
}

/// Runs `fdql` to completion and returns (stdout, stderr).
fn run_to_completion(args: &[String]) -> (String, String) {
    let out = Command::new(FDQL).args(args).output().expect("spawn fdql");
    assert!(
        out.status.success(),
        "fdql failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

/// Spawns `fdql`, lets it run for `delay`, then delivers `SIGKILL` — no
/// shutdown hooks, no Drop, nothing: the store is whatever hit the disk.
fn spawn_and_kill(args: &[String], delay: Duration) {
    let mut child = Command::new(FDQL)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fdql");
    std::thread::sleep(delay);
    // If the run already finished, the kill is a no-op on a zombie —
    // that's a legal matrix entry (crash-after-commit-of-everything).
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn kill_dash_nine_matrix_restarts_bit_identically() {
    // Golden output: the same flags without a store, run to completion.
    let (golden, _) = run_to_completion(&args(None, 0));
    assert!(golden.contains("# tuples="), "sanity: {golden}");

    // A clean durable run must already match the in-memory run exactly.
    let clean_store = StoreDir::new("clean");
    let (clean, _) = run_to_completion(&args(Some(clean_store.path()), 0));
    assert_eq!(golden, clean, "durable run diverged from in-memory run");

    // The kill schedule: seeded so CI rows explore different cut points,
    // spread from "barely started" to "almost done".
    let seed = std::env::var("FD_CRASH")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0xC4A5);
    let base = 30 + seed % 50;
    let step = 60 + (seed / 50) % 40;
    let delays: Vec<u64> = (0..4).map(|k| base + k * step).collect();

    let mut resumed_restarts = 0u32;
    for (i, &delay_ms) in delays.iter().enumerate() {
        let store = StoreDir::new(&format!("kill-{i}"));
        // Crash 1: paced run, killed mid-stream.
        spawn_and_kill(
            &args(Some(store.path()), 20),
            Duration::from_millis(delay_ms),
        );
        // Crash 2: the *restart* gets killed too — recovery of a store
        // that was itself written by a recovering process must hold.
        spawn_and_kill(
            &args(Some(store.path()), 20),
            Duration::from_millis(delay_ms / 2 + 15),
        );
        // Final restart runs to completion and must reproduce the golden
        // output byte for byte.
        let (out, err) = run_to_completion(&args(Some(store.path()), 0));
        assert_eq!(
            golden, out,
            "delay {delay_ms}ms: restarted output diverged\nstderr: {err}"
        );
        if err.contains("resumed durable store") {
            resumed_restarts += 1;
        }
    }
    assert!(
        resumed_restarts > 0,
        "no kill in the whole matrix landed mid-stream (delays {delays:?}) — \
         the crash matrix is not exercising recovery"
    );
}

#[test]
fn recovered_numbers_match_the_brute_force_oracle() {
    // One global group, forward-decayed sum, poly:2 — exactly the shape
    // the oracle computes by brute force from the raw event list.
    let bucket_secs = 2u64;
    let a: Vec<String> = [
        "--agg",
        "fwd_sum",
        "--group",
        "none",
        "--bucket",
        "2",
        "--rate",
        "8000",
        "--duration",
        "3",
        "--hosts",
        "100",
        "--seed",
        "17",
        "--shards",
        "2",
        "--checkpoint-every",
        "512",
        "--format",
        "csv",
        "--limit",
        "0",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Run durably, kill once mid-stream, then restart to completion: the
    // numbers checked against the oracle are *recovered* numbers.
    let store = StoreDir::new("oracle");
    let mut crashed = a.clone();
    crashed.push("--data-dir".into());
    crashed.push(store.path().display().to_string());
    crashed.push("--pace-ms".into());
    crashed.push("20".into());
    spawn_and_kill(&crashed, Duration::from_millis(60));
    let mut resumed = a.clone();
    resumed.push("--data-dir".into());
    resumed.push(store.path().display().to_string());
    let (out, _) = run_to_completion(&resumed);

    // The same trace the CLI generates (same seed → same packets).
    let trace = TraceConfig {
        seed: 17,
        duration_secs: 3.0,
        rate_pps: 8_000.0,
        n_hosts: 100,
        ..Default::default()
    }
    .generate();
    assert!(!trace.is_empty());

    let mut checked = 0u32;
    for line in out.lines().skip(1) {
        if line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let bucket_start: f64 = fields.next().unwrap().parse().expect("bucket");
        let value: f64 = fields.nth(1).unwrap().parse().expect("value");
        // Brute force: every event in the bucket, weighed with landmark =
        // bucket start, evaluated at bucket end — the paper's definition,
        // with no engine, no sharding, no WAL in the loop.
        let mut oracle = Oracle::new(Monomial::quadratic(), bucket_start);
        let end = bucket_start + bucket_secs as f64;
        for p in &trace {
            let t = p.ts as f64 / 1e6;
            if t >= bucket_start && t < end {
                oracle.push(OracleEvent::new(t, p.len as f64, 0));
            }
        }
        let want = oracle.sum(end);
        let rel = (value - want).abs() / want.abs().max(1e-12);
        assert!(
            rel < 1e-9,
            "bucket {bucket_start}: recovered fdql says {value}, oracle says {want} (rel {rel:e})"
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two buckets, got {checked}");
}
