//! # fd-cli — the `fdql` command-line tool
//!
//! Runs a forward-decayed continuous query over a synthetic packet trace
//! and prints the result rows, exercising the whole stack (fd-gen →
//! fd-engine → fd-core) from a shell:
//!
//! ```text
//! fdql --agg fwd_sum --decay poly:2 --group dst_key --bucket 60 \
//!      --proto tcp --rate 100000 --duration 120 --format csv
//! ```
//!
//! The argument grammar is deliberately tiny (no external parser crate);
//! [`CliConfig::parse`] turns an argument list into a validated
//! configuration, [`run`] executes it and returns the rendered output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;

use fd_core::decay::AnyDecay;
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::{Burst, TraceConfig};

/// Which aggregate to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Undecayed `count(*)`.
    Count,
    /// Undecayed `sum(len)`.
    Sum,
    /// Forward-decayed count.
    FwdCount,
    /// Forward-decayed `sum(len)`.
    FwdSum,
    /// Forward-decayed average of `len`.
    FwdAvg,
    /// Forward-decayed φ = 0.01 heavy hitters over the group's items.
    FwdHh,
    /// Forward-decayed quantiles (p50/p95/p99) of `len`.
    FwdQuantiles,
    /// Forward-decayed count-distinct of source hosts.
    FwdDistinct,
}

impl AggKind {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "count" => Self::Count,
            "sum" => Self::Sum,
            "fwd_count" => Self::FwdCount,
            "fwd_sum" => Self::FwdSum,
            "fwd_avg" => Self::FwdAvg,
            "fwd_hh" => Self::FwdHh,
            "fwd_quantiles" => Self::FwdQuantiles,
            "fwd_distinct" => Self::FwdDistinct,
            other => {
                return Err(format!(
                    "unknown aggregate '{other}' \
                     (count|sum|fwd_count|fwd_sum|fwd_avg|fwd_hh|fwd_quantiles|fwd_distinct)"
                ))
            }
        })
    }
}

/// Group-by key choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    /// One global group.
    None,
    /// Destination host.
    DstHost,
    /// Destination (host, port) pair.
    DstKey,
    /// Source host.
    SrcHost,
}

impl GroupKey {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "none" => Self::None,
            "dst_host" => Self::DstHost,
            "dst_key" => Self::DstKey,
            "src_host" => Self::SrcHost,
            other => {
                return Err(format!(
                    "unknown group key '{other}' (none|dst_host|dst_key|src_host)"
                ))
            }
        })
    }
}

/// Output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// CSV rows.
    Csv,
    /// Aligned text table.
    Table,
    /// Only the engine statistics.
    Stats,
}

/// A parsed, validated `fdql` invocation.
#[derive(Debug, Clone)]
pub struct CliConfig {
    /// Aggregate to run.
    pub agg: AggKind,
    /// Forward decay function (for the `fwd_*` aggregates).
    pub decay: AnyDecay,
    /// Group-by key.
    pub group: GroupKey,
    /// Time-bucket width in seconds.
    pub bucket_secs: u64,
    /// Optional protocol filter.
    pub proto: Option<Proto>,
    /// Trace rate (packets/second).
    pub rate_pps: f64,
    /// Trace duration (seconds).
    pub duration_secs: f64,
    /// Trace host count.
    pub n_hosts: usize,
    /// Trace RNG seed.
    pub seed: u64,
    /// Output format.
    pub format: Format,
    /// Limit on printed rows (0 = unlimited).
    pub limit: usize,
    /// Out-of-order timestamp jitter half-width in seconds.
    pub ooo_jitter_secs: f64,
    /// Engine watermark slack in seconds (tolerates the jitter).
    pub slack_secs: f64,
    /// Optional flood: `start,end,fraction` toward one victim host.
    pub burst: Option<Burst>,
    /// Worker shards for parallel execution (0 = single-threaded engine).
    pub shards: usize,
    /// Ingress producers for the multi-producer fabric (0 = classic
    /// single-dispatcher ingress). Any non-zero value engages the sharded
    /// executor.
    pub producers: usize,
    /// Dispatcher batch size for sharded runs (0 = engine default).
    pub batch: usize,
    /// Checkpoint interval in tuples for sharded runs (`None` = engine
    /// default; `Some(0)` disables supervision entirely).
    pub checkpoint_every: Option<u64>,
    /// Restart budget per shard before graceful degradation (`None` =
    /// engine default).
    pub max_restarts: Option<u32>,
    /// Append a Prometheus text-format metrics snapshot to the output.
    pub metrics: bool,
    /// Durable store directory (`None` = in-memory only). With a store,
    /// the run logs every dispatched batch to a WAL, commits the stream
    /// position every [`COMMIT_CHUNK`] events, and a restarted `fdql` with
    /// the same flags resumes from the last commit instead of starting
    /// over.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL fsync cadence (with `--data-dir`).
    pub fsync: FsyncPolicy,
    /// Sleep this many milliseconds after each durable commit chunk —
    /// paces the stream so crash tests can land a `kill -9` mid-run.
    pub pace_ms: u64,
    /// Overload shed policy for sharded runs. A lossy policy (or an
    /// explicit lag budget) engages the sharded executor even without
    /// `--shards`.
    pub shed: ShedPolicy,
    /// Per-shard lag budget in queued batches (`None` = engine default:
    /// shed only once a ring is full past the send deadline).
    pub lag_budget: Option<usize>,
    /// Graceful-drain deadline in seconds: how long shutdown waits for
    /// shard queues to empty before abandoning laggards.
    pub drain_timeout_secs: f64,
}

impl Default for CliConfig {
    fn default() -> Self {
        Self {
            agg: AggKind::FwdSum,
            decay: AnyDecay::Monomial(fd_core::decay::Monomial::quadratic()),
            group: GroupKey::DstHost,
            bucket_secs: 60,
            proto: None,
            rate_pps: 50_000.0,
            duration_secs: 60.0,
            n_hosts: 10_000,
            seed: 42,
            format: Format::Table,
            limit: 20,
            ooo_jitter_secs: 0.0,
            slack_secs: 0.0,
            burst: None,
            shards: 0,
            producers: 0,
            batch: 0,
            checkpoint_every: None,
            max_restarts: None,
            metrics: false,
            data_dir: None,
            fsync: FsyncPolicy::OnCheckpoint,
            pace_ms: 0,
            shed: ShedPolicy::Block,
            lag_budget: None,
            drain_timeout_secs: 30.0,
        }
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
fdql — forward-decayed continuous queries over synthetic packet traces

USAGE:
    fdql [OPTIONS]

OPTIONS (all optional):
    --agg <kind>        count|sum|fwd_count|fwd_sum|fwd_avg|fwd_hh|fwd_quantiles|fwd_distinct
                        [default: fwd_sum]
    --decay <spec>      none|landmark|poly:<β>|exp:<α>|halflife:<secs>  [default: poly:2]
    --group <key>       none|dst_host|dst_key|src_host                  [default: dst_host]
    --bucket <secs>     time bucket width                               [default: 60]
    --proto <p>         tcp|udp (omit for both)
    --rate <pps>        trace packet rate                               [default: 50000]
    --duration <secs>   trace duration                                  [default: 60]
    --hosts <n>         distinct destination hosts                      [default: 10000]
    --seed <n>          trace RNG seed                                  [default: 42]
    --format <f>        csv|table|stats                                 [default: table]
    --limit <n>         max rows printed, 0 = all                       [default: 20]
    --ooo <secs>        out-of-order timestamp jitter half-width        [default: 0]
    --slack <secs>      engine watermark slack for late tuples          [default: 0]
    --burst <s,e,f>     flood fraction f toward one host in [s, e) secs
    --shards <n>        parallel worker shards, 0 = single-threaded     [default: 0]
    --producers <n>     multi-producer ingress fabric, 0 = classic
                        single-dispatcher ingress        [default: 0]
    --batch <n>         dispatcher batch size (sharded runs), 0 = default [default: 0]
    --checkpoint-every <n>  worker checkpoint interval in tuples (sharded
                        runs); 0 disables supervision   [default: 32768]
    --max-restarts <n>  restarts per shard before degradation [default: 3]
    --metrics           append a Prometheus metrics snapshot (takes no value)
    --data-dir <path>   durable store directory (WAL + checkpoints); rerunning
                        with the same flags resumes after a crash [default: off]
    --fsync <policy>    batch|every:<n>|checkpoint — WAL fsync cadence with
                        --data-dir                       [default: checkpoint]
    --pace-ms <ms>      sleep per durable commit chunk (crash-test pacing)
                                                         [default: 0]
    --shed <policy>     block|drop-oldest|subsample:<rate> — what to do when
                        a shard stays over its lag budget past the send
                        deadline; lossy policies engage the sharded
                        executor and are refused with --data-dir
                                                         [default: block]
    --lag-budget <n>    per-shard lag budget in queued batches; subsample
                        thinning starts at this depth     [default: ring depth]
    --drain-timeout <secs>  graceful-drain deadline: how long shutdown waits
                        for shard queues to empty before abandoning
                        laggards                         [default: 30]
    --help              print this text

ENVIRONMENT:
    FD_FAULT=<plan>     inject a deterministic fault into a sharded run,
                        e.g. slow:0:50 (50 ms/batch on shard 0) or
                        wedge:0:10000 (spin at tuple 10000) — the overload
                        soak harness; non-plan values are ignored
";

impl CliConfig {
    /// Parses an argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let flag = flag.as_ref();
            if flag == "--help" {
                return Err(USAGE.to_string());
            }
            // The only valueless flag besides --help.
            if flag == "--metrics" {
                cfg.metrics = true;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag '{flag}' needs a value\n\n{USAGE}"))?;
            let v = value.as_ref();
            let num = |v: &str| {
                v.parse::<f64>()
                    .map_err(|e| format!("bad number '{v}': {e}"))
            };
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("bad integer '{v}': {e}"))
            };
            match flag {
                "--agg" => cfg.agg = AggKind::parse(v)?,
                "--decay" => cfg.decay = v.parse()?,
                "--group" => cfg.group = GroupKey::parse(v)?,
                "--bucket" => {
                    cfg.bucket_secs = int(v)?;
                    if cfg.bucket_secs == 0 {
                        return Err("bucket width must be positive".into());
                    }
                }
                "--proto" => {
                    cfg.proto = Some(match v {
                        "tcp" => Proto::Tcp,
                        "udp" => Proto::Udp,
                        other => return Err(format!("unknown protocol '{other}' (tcp|udp)")),
                    })
                }
                "--rate" => {
                    cfg.rate_pps = num(v)?;
                    if cfg.rate_pps <= 0.0 {
                        return Err("rate must be positive".into());
                    }
                }
                "--duration" => {
                    cfg.duration_secs = num(v)?;
                    if cfg.duration_secs <= 0.0 {
                        return Err("duration must be positive".into());
                    }
                }
                "--hosts" => {
                    cfg.n_hosts = int(v)? as usize;
                    if cfg.n_hosts == 0 {
                        return Err("need at least one host".into());
                    }
                }
                "--seed" => cfg.seed = int(v)?,
                "--format" => {
                    cfg.format = match v {
                        "csv" => Format::Csv,
                        "table" => Format::Table,
                        "stats" => Format::Stats,
                        other => return Err(format!("unknown format '{other}' (csv|table|stats)")),
                    }
                }
                "--limit" => cfg.limit = int(v)? as usize,
                "--shards" => cfg.shards = int(v)? as usize,
                "--producers" => cfg.producers = int(v)? as usize,
                "--batch" => cfg.batch = int(v)? as usize,
                "--checkpoint-every" => cfg.checkpoint_every = Some(int(v)?),
                "--max-restarts" => {
                    let n = int(v)?;
                    if n > u64::from(u32::MAX) {
                        return Err(format!("--max-restarts {n} is out of range"));
                    }
                    cfg.max_restarts = Some(n as u32);
                }
                "--data-dir" => {
                    if v.is_empty() {
                        return Err("--data-dir needs a non-empty path".into());
                    }
                    cfg.data_dir = Some(std::path::PathBuf::from(v));
                }
                "--fsync" => {
                    cfg.fsync = FsyncPolicy::parse(v).ok_or_else(|| {
                        format!("unknown fsync policy '{v}' (batch|every:<n>|checkpoint)")
                    })?;
                }
                "--pace-ms" => cfg.pace_ms = int(v)?,
                "--shed" => cfg.shed = v.parse().map_err(|e| format!("{e}"))?,
                "--lag-budget" => {
                    let n = int(v)? as usize;
                    if n == 0 {
                        return Err("lag budget must be positive".into());
                    }
                    cfg.lag_budget = Some(n);
                }
                "--drain-timeout" => {
                    cfg.drain_timeout_secs = num(v)?;
                    if cfg.drain_timeout_secs <= 0.0 {
                        return Err("drain timeout must be positive".into());
                    }
                }
                "--ooo" => {
                    cfg.ooo_jitter_secs = num(v)?;
                    if cfg.ooo_jitter_secs < 0.0 {
                        return Err("jitter must be non-negative".into());
                    }
                }
                "--slack" => {
                    cfg.slack_secs = num(v)?;
                    if cfg.slack_secs < 0.0 {
                        return Err("slack must be non-negative".into());
                    }
                }
                "--burst" => {
                    let parts: Vec<&str> = v.split(',').collect();
                    if parts.len() != 3 {
                        return Err(format!("--burst wants start,end,fraction, got '{v}'"));
                    }
                    let (start, end, fraction) = (num(parts[0])?, num(parts[1])?, num(parts[2])?);
                    if !(start >= 0.0 && end > start && fraction > 0.0 && fraction <= 1.0) {
                        return Err(format!("bad burst spec '{v}'"));
                    }
                    cfg.burst = Some(Burst {
                        start_secs: start,
                        end_secs: end,
                        dst_ip: 0x0A00_BEEF,
                        fraction,
                    });
                }
                other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
            }
        }
        Ok(cfg)
    }

    fn factory(&self) -> Arc<FnFactory> {
        let g = self.decay.clone();
        match self.agg {
            AggKind::Count => count_factory(),
            AggKind::Sum => sum_factory(|p| p.len as f64),
            AggKind::FwdCount => fwd_count_factory(g),
            AggKind::FwdSum => fwd_sum_factory(g, |p| p.len as f64),
            AggKind::FwdAvg => fwd_avg_factory(g, |p| p.len as f64),
            AggKind::FwdHh => fwd_hh_factory(g, 0.001, 0.01, |p| p.dst_host()),
            AggKind::FwdQuantiles => {
                fwd_quantile_factory(g, 11, 0.01, vec![0.5, 0.95, 0.99], |p| p.len as u64)
            }
            AggKind::FwdDistinct => distinct_factory(g, 0.1, 7, |p| p.src_host()),
        }
    }

    fn query(&self) -> Result<Query, String> {
        let mut b = Query::builder(format!("fdql-{:?}", self.agg))
            .bucket_secs(self.bucket_secs)
            .slack_secs(self.slack_secs)
            .aggregate(self.factory());
        if let Some(proto) = self.proto {
            b = b.filter(move |p| p.proto == proto);
        }
        b = match self.group {
            GroupKey::None => b,
            GroupKey::DstHost => b.group_by(|p| p.dst_host()),
            GroupKey::DstKey => b.group_by(|p| p.dst_key()),
            GroupKey::SrcHost => b.group_by(|p| p.src_host()),
        };
        b.try_build().map_err(|e| e.to_string())
    }
}

/// What a completed `fdql` run looked like beyond its stdout: the drain
/// report and the supervision counters the shutdown report and the exit
/// code are derived from.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The rendered stdout payload (rows + stats line + optional metrics).
    pub output: String,
    /// The graceful-drain report (clean for single-threaded runs).
    pub drain: DrainReport,
    /// The shed policy the run executed under.
    pub shed_policy: ShedPolicy,
    /// Shards that exhausted their restart budget and were degraded.
    pub degraded_shards: u64,
    /// Worker respawns (panics and wedges combined).
    pub restarts: u64,
    /// Batches replayed from supervision backlogs.
    pub replayed_batches: u64,
    /// Tuples routed to already-degraded shards and dropped.
    pub dropped_degraded: u64,
}

impl RunReport {
    /// Whether the run lost data it had promised not to lose: any shed,
    /// unflushed epoch, or degraded-shard drop under the lossless
    /// [`ShedPolicy::Block`]. Under the lossy policies, sheds are the
    /// configured cost and only the exit-status stays clean.
    pub fn data_lost_under_block(&self) -> bool {
        !self.shed_policy.is_lossy() && (self.drain.data_lost() || self.dropped_degraded > 0)
    }

    /// The one-line-per-fact shutdown report `fdql` prints to stderr.
    pub fn shutdown_summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fdql shutdown: shed_tuples={} shed_batches={} wedged_respawns={} \
             restarts={} replayed_batches={} degraded_shards={} dropped_degraded={} \
             unflushed_epochs={}{}",
            self.drain.shed_tuples,
            self.drain.shed_batches,
            self.drain.wedged_respawns,
            self.restarts,
            self.replayed_batches,
            self.degraded_shards,
            self.dropped_degraded,
            self.drain.unflushed_epochs,
            if self.drain.deadline_expired {
                " (drain deadline expired)"
            } else {
                ""
            }
        );
        for (shard, lag) in self.drain.per_shard_lag.iter().enumerate() {
            if *lag > 0 {
                let _ = writeln!(
                    s,
                    "fdql shutdown: shard {shard} abandoned with {lag} queued"
                );
            }
        }
        if self.data_lost_under_block() {
            let _ = writeln!(
                s,
                "fdql shutdown: DATA LOST under lossless policy 'block' — exiting nonzero"
            );
        }
        s
    }
}

/// Executes a parsed invocation and returns the rendered output, or an
/// error message if the configuration does not form a valid query.
pub fn try_run(cfg: &CliConfig) -> Result<String, String> {
    try_run_report(cfg).map(|r| r.output)
}

/// Executes a parsed invocation and returns the rendered output together
/// with the shutdown report ([`RunReport`]) the `fdql` binary prints to
/// stderr and derives its exit status from.
pub fn try_run_report(cfg: &CliConfig) -> Result<RunReport, String> {
    let trace = TraceConfig {
        seed: cfg.seed,
        duration_secs: cfg.duration_secs,
        rate_pps: cfg.rate_pps,
        n_hosts: cfg.n_hosts,
        ooo_jitter_secs: cfg.ooo_jitter_secs,
        burst: cfg.burst,
        ..Default::default()
    };
    // Single-threaded and sharded runs produce the same artifacts: rows,
    // final counters, a metrics snapshot (the sharded one carries live
    // per-shard series; the single-threaded one wraps the counters so
    // `--metrics` output has one shape either way), and a drain report.
    let sharded = cfg.shards > 0
        || cfg.data_dir.is_some()
        || cfg.producers > 0
        || cfg.shed.is_lossy()
        || cfg.lag_budget.is_some();
    let (mut rows, stats, snapshot, drain) = if sharded {
        // A durable store needs the sharded executor (its checkpoints are
        // what gets persisted); so do the ingress fabric and the overload
        // controller: those flags without `--shards` run one worker shard.
        let shards = cfg.shards.max(1);
        let mut engine = ShardedEngine::try_new(cfg.query()?, shards).map_err(|e| e.to_string())?;
        if cfg.batch > 0 {
            engine = engine
                .try_batch_size(cfg.batch)
                .map_err(|e| e.to_string())?;
        }
        if let Some(every) = cfg.checkpoint_every {
            engine = engine.checkpoint_every(every);
        }
        if let Some(n) = cfg.max_restarts {
            engine = engine.max_restarts(n);
        }
        let mut overload = OverloadConfig {
            policy: cfg.shed,
            decay: cfg.decay.clone(),
            seed: cfg.seed,
            ..OverloadConfig::default()
        };
        if let Some(budget) = cfg.lag_budget {
            overload.lag_budget = budget;
        }
        engine = engine.try_overload(overload).map_err(|e| e.to_string())?;
        // The overload soak harness: FD_FAULT carrying a fault-plan spec
        // (`slow:0:50`, `wedge:0:10000`, …) arms that fault in this run.
        // Values that don't parse as a plan (e.g. the numeric seeds the
        // test-suite fault matrix uses) are ignored.
        if let Ok(spec) = std::env::var("FD_FAULT") {
            if let Some(plan) = FaultPlan::parse(spec.trim()) {
                if plan.shard < shards {
                    eprintln!("fdql: injecting fault {} (FD_FAULT)", spec.trim());
                    engine = engine.inject_fault(plan);
                }
            }
        }
        if cfg.producers > 0 {
            engine = engine
                .try_producers(cfg.producers)
                .map_err(|e| e.to_string())?;
        }
        let drain_deadline = std::time::Duration::from_secs_f64(cfg.drain_timeout_secs);
        let (rows, drain) = match &cfg.data_dir {
            Some(dir) => {
                let opts = DurabilityOptions {
                    fsync: cfg.fsync,
                    ..DurabilityOptions::default()
                };
                let (e, report) = engine.try_durable(dir, opts).map_err(|e| e.to_string())?;
                engine = e;
                if report.resumed {
                    // Resume details go to stderr only: stdout must be
                    // bit-identical to an uncrashed run's.
                    eprintln!(
                        "fdql: resumed durable store in {} at position {} \
                         (replayed {} batches / {} tuples, truncated {} records)",
                        dir.display(),
                        report.position,
                        report.replayed_batches,
                        report.replayed_tuples,
                        report.truncated_records
                    );
                }
                run_durable(
                    &mut engine,
                    &trace,
                    report.position,
                    cfg.pace_ms,
                    drain_deadline,
                )?
            }
            None => {
                let mut buf: Vec<Packet> = Vec::with_capacity(COMMIT_CHUNK);
                for pkt in trace.iter() {
                    buf.push(pkt);
                    if buf.len() == COMMIT_CHUNK {
                        engine
                            .try_process_packets(&buf)
                            .map_err(|e| e.to_string())?;
                        buf.clear();
                    }
                }
                engine
                    .try_process_packets(&buf)
                    .map_err(|e| e.to_string())?;
                engine.drain(drain_deadline)
            }
        };
        if engine.durability_degraded() {
            eprintln!("fdql: durability degraded mid-run; results are complete but not persisted");
        }
        (rows, engine.stats(), engine.telemetry().snapshot(), drain)
    } else {
        let mut engine = Engine::new(cfg.query()?);
        let rows = engine.run(trace.iter());
        let stats = engine.stats();
        let snapshot = MetricsSnapshot::from_engine_stats(&stats, engine.watermark());
        (rows, stats, snapshot, DrainReport::clean())
    };
    if cfg.limit > 0 && rows.len() > cfg.limit {
        rows.truncate(cfg.limit);
    }
    let mut out = String::new();
    match cfg.format {
        Format::Csv => out.push_str(&rows_to_csv(&rows)),
        Format::Table => out.push_str(&rows_to_table(&rows, cfg.bucket_secs)),
        Format::Stats => {}
    }
    let _ = writeln!(
        out,
        "# tuples={} filtered={} rows={} buckets={} evictions={} late_drops={}",
        stats.tuples_in,
        stats.filtered,
        stats.rows_out,
        stats.buckets_closed,
        stats.lfta_evictions,
        stats.late_drops
    );
    if cfg.metrics {
        out.push_str(&snapshot.to_prometheus());
    }
    Ok(RunReport {
        output: out,
        drain,
        shed_policy: cfg.shed,
        degraded_shards: snapshot.degraded_shards,
        restarts: snapshot.restarts,
        replayed_batches: snapshot.replayed_batches,
        dropped_degraded: snapshot.dropped_degraded,
    })
}

/// Events fed between durable commits. Fixed (not a flag) so a restarted
/// `fdql` replays the identical commit schedule and stdout stays
/// bit-identical to an uncrashed run.
pub const COMMIT_CHUNK: usize = 4096;

/// Feeds the trace from `start` in [`COMMIT_CHUNK`] chunks, committing the
/// stream position after each, and drains the engine.
fn run_durable(
    engine: &mut ShardedEngine,
    trace: &TraceConfig,
    start: u64,
    pace_ms: u64,
    drain_deadline: std::time::Duration,
) -> Result<(Vec<Row>, DrainReport), String> {
    let mut position = start;
    let mut buf: Vec<Packet> = Vec::with_capacity(COMMIT_CHUNK);
    let mut commit = |engine: &mut ShardedEngine, buf: &mut Vec<Packet>| -> Result<(), String> {
        engine.try_process_packets(buf).map_err(|e| e.to_string())?;
        position += buf.len() as u64;
        engine.durable_commit(position).map_err(|e| e.to_string())?;
        buf.clear();
        if pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(pace_ms));
        }
        Ok(())
    };
    // The trace is a deterministic function of its seed, so "re-feed from
    // the committed position" is a plain skip.
    for pkt in trace.iter().skip(start as usize) {
        buf.push(pkt);
        if buf.len() == COMMIT_CHUNK {
            commit(engine, &mut buf)?;
        }
    }
    commit(engine, &mut buf)?;
    Ok(engine.drain(drain_deadline))
}

/// Executes a parsed invocation and returns the rendered output.
///
/// # Panics
/// Panics if the configuration does not form a valid query; [`try_run`]
/// is the fallible variant (the `fdql` binary uses it).
pub fn run(cfg: &CliConfig) -> String {
    try_run(cfg).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_parse_empty_args() {
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.agg, AggKind::FwdSum);
        assert_eq!(cfg.bucket_secs, 60);
    }

    #[test]
    fn full_flag_set_parses() {
        let cfg = CliConfig::parse([
            "--agg",
            "fwd_hh",
            "--decay",
            "halflife:15",
            "--group",
            "none",
            "--bucket",
            "30",
            "--proto",
            "udp",
            "--rate",
            "1000",
            "--duration",
            "5",
            "--hosts",
            "100",
            "--seed",
            "7",
            "--format",
            "csv",
            "--limit",
            "0",
        ])
        .unwrap();
        assert_eq!(cfg.agg, AggKind::FwdHh);
        assert_eq!(cfg.group, GroupKey::None);
        assert_eq!(cfg.bucket_secs, 30);
        assert_eq!(cfg.proto, Some(Proto::Udp));
        assert_eq!(cfg.format, Format::Csv);
        assert_eq!(cfg.limit, 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(CliConfig::parse(["--agg", "nope"]).is_err());
        assert!(CliConfig::parse(["--decay", "poly:-3"]).is_err());
        assert!(CliConfig::parse(["--bucket", "0"]).is_err());
        assert!(CliConfig::parse(["--rate"]).is_err());
        assert!(CliConfig::parse(["--bogus", "1"]).is_err());
        assert!(CliConfig::parse(["--help"]).is_err()); // help is an Err(USAGE)
    }

    #[test]
    fn runs_a_small_decayed_sum() {
        let cfg = CliConfig::parse([
            "--rate",
            "5000",
            "--duration",
            "2",
            "--hosts",
            "50",
            "--group",
            "dst_host",
            "--format",
            "csv",
            "--limit",
            "0",
        ])
        .unwrap();
        let out = run(&cfg);
        // header + ~50 groups + stats comment
        assert!(out.lines().count() > 40, "{out}");
        assert!(out.contains("# tuples=") && out.contains("rows="));
    }

    #[test]
    fn runs_heavy_hitters_with_exponential_decay() {
        let cfg = CliConfig::parse([
            "--agg",
            "fwd_hh",
            "--decay",
            "exp:0.1",
            "--group",
            "none",
            "--rate",
            "20000",
            "--duration",
            "3",
            "--hosts",
            "200",
            "--format",
            "table",
        ])
        .unwrap();
        let out = run(&cfg);
        assert!(
            out.contains(':'),
            "heavy-hitter items should be listed: {out}"
        );
    }

    #[test]
    fn burst_and_ooo_flags_parse_and_run() {
        let cfg = CliConfig::parse([
            "--agg",
            "fwd_hh",
            "--group",
            "none",
            "--rate",
            "10000",
            "--duration",
            "4",
            "--hosts",
            "100",
            "--ooo",
            "0.5",
            "--slack",
            "1",
            "--burst",
            "2,4,0.5",
            "--format",
            "table",
        ])
        .unwrap();
        assert_eq!(cfg.ooo_jitter_secs, 0.5);
        assert_eq!(cfg.slack_secs, 1.0);
        let burst = cfg.burst.unwrap();
        assert_eq!(
            (burst.start_secs, burst.end_secs, burst.fraction),
            (2.0, 4.0, 0.5)
        );
        let out = run(&cfg);
        // The flood victim (10.0.190.239 = 0x0A00BEEF) must lead the report.
        assert!(
            out.contains(&format!("{}", 0x0A00_BEEFu64)),
            "victim missing from heavy hitters: {out}"
        );
    }

    #[test]
    fn bad_burst_specs_are_rejected() {
        for bad in ["1,2", "2,1,0.5", "0,1,0", "0,1,2", "a,b,c"] {
            assert!(
                CliConfig::parse(["--burst", bad]).is_err(),
                "accepted {bad:?}"
            );
        }
        assert!(CliConfig::parse(["--ooo", "-1"]).is_err());
        assert!(CliConfig::parse(["--slack", "-1"]).is_err());
    }

    #[test]
    fn metrics_and_shards_flags_parse() {
        let cfg = CliConfig::parse(["--metrics", "--shards", "4", "--batch", "512"]).unwrap();
        assert!(cfg.metrics);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.batch, 512);
        // --metrics takes no value: the next token is parsed as a flag.
        assert!(CliConfig::parse(["--metrics", "true"]).is_err());
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert!(!cfg.metrics);
        assert_eq!(cfg.shards, 0);
    }

    #[test]
    fn supervision_flags_parse_and_run() {
        let cfg = CliConfig::parse(["--checkpoint-every", "4096", "--max-restarts", "5"]).unwrap();
        assert_eq!(cfg.checkpoint_every, Some(4096));
        assert_eq!(cfg.max_restarts, Some(5));
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.checkpoint_every, None);
        assert_eq!(cfg.max_restarts, None);
        assert!(CliConfig::parse(["--max-restarts", "9999999999999"]).is_err());
        assert!(CliConfig::parse(["--checkpoint-every", "x"]).is_err());

        // Same trace supervised and unsupervised: identical rows.
        fn args(every: &'static str) -> [&'static str; 12] {
            [
                "--rate",
                "10000",
                "--duration",
                "2",
                "--hosts",
                "50",
                "--shards",
                "2",
                "--checkpoint-every",
                every,
                "--format",
                "csv",
            ]
        }
        let supervised = run(&CliConfig::parse(args("1024")).unwrap());
        let unsupervised = run(&CliConfig::parse(args("0")).unwrap());
        assert_eq!(
            supervised, unsupervised,
            "checkpointing must not change results"
        );
    }

    /// Pulls `name value` (no labels) out of Prometheus text.
    fn prom_value(out: &str, name: &str) -> u64 {
        out.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("metric {name} missing from:\n{out}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn metrics_snapshot_agrees_with_stats_line() {
        // Differential run: the same trace single-threaded and sharded,
        // both with --metrics. The Prometheus counters must agree exactly
        // with the engine's own stats line, and with each other.
        fn args(shards: &'static str) -> [&'static str; 13] {
            [
                "--rate",
                "20000",
                "--duration",
                "3",
                "--hosts",
                "100",
                "--proto",
                "tcp",
                "--format",
                "stats",
                "--metrics",
                "--shards",
                shards,
            ]
        }
        let single = run(&CliConfig::parse(args("0")).unwrap());
        let sharded = run(&CliConfig::parse(args("3")).unwrap());
        for out in [&single, &sharded] {
            // "# tuples=N filtered=N rows=N ..." is the ground truth.
            let stats_line = out.lines().find(|l| l.starts_with("# tuples=")).unwrap();
            let field = |key: &str| -> u64 {
                stats_line
                    .split_whitespace()
                    .find_map(|w| w.strip_prefix(&format!("{key}=")))
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            assert_eq!(prom_value(out, "fd_tuples_in"), field("tuples"));
            assert_eq!(prom_value(out, "fd_filtered"), field("filtered"));
            assert_eq!(prom_value(out, "fd_late_drops"), field("late_drops"));
            assert_eq!(prom_value(out, "fd_rows_out"), field("rows"));
            assert_eq!(prom_value(out, "fd_buckets_closed"), field("buckets"));
            assert_eq!(prom_value(out, "fd_worker_panics"), 0);
        }
        for name in [
            "fd_tuples_in",
            "fd_filtered",
            "fd_late_drops",
            "fd_rows_out",
        ] {
            assert_eq!(
                prom_value(&single, name),
                prom_value(&sharded, name),
                "single vs sharded disagree on {name}"
            );
        }
        // Only the sharded run exposes per-shard series.
        assert!(!single.contains("fd_shard_queue_depth"));
        assert!(sharded.contains("fd_shard_queue_depth{shard=\"2\"}"));
        assert!(sharded.contains("fd_worker_batch_ns{shard=\"0\",quantile=\"0.99\"}"));
    }

    #[test]
    fn sharded_run_honors_batch_flag() {
        fn args(batch: &'static str) -> [&'static str; 12] {
            [
                "--rate",
                "10000",
                "--duration",
                "2",
                "--hosts",
                "50",
                "--shards",
                "2",
                "--batch",
                batch,
                "--format",
                "csv",
            ]
        }
        // Same trace, different batch sizes: identical rows either way.
        let small = run(&CliConfig::parse(args("32")).unwrap());
        let large = run(&CliConfig::parse(args("4096")).unwrap());
        assert_eq!(small, large, "batch size must not change results");
        assert!(CliConfig::parse(["--batch", "x"]).is_err());
    }

    #[test]
    fn producers_flag_parses_and_matches_single_dispatcher() {
        let cfg = CliConfig::parse(["--producers", "4", "--shards", "2"]).unwrap();
        assert_eq!(cfg.producers, 4);
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.producers, 0);
        assert!(CliConfig::parse(["--producers", "x"]).is_err());
        assert!(CliConfig::parse(["--producers", "0"]).is_ok(), "0 = off");

        // Same trace through the classic dispatcher and the fabric:
        // identical rows, and the fabric exposes per-producer series.
        fn args(producers: &'static str) -> [&'static str; 15] {
            [
                "--rate",
                "10000",
                "--duration",
                "2",
                "--hosts",
                "50",
                "--shards",
                "2",
                "--producers",
                producers,
                "--format",
                "csv",
                "--metrics",
                "--seed",
                "7",
            ]
        }
        let classic = run(&CliConfig::parse(args("0")).unwrap());
        let fabric = run(&CliConfig::parse(args("3")).unwrap());
        let rows = |out: &str| -> String {
            out.lines()
                .take_while(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            rows(&classic),
            rows(&fabric),
            "the ingress fabric must not change results"
        );
        assert!(!classic.contains("fd_producer_tuples_in"));
        assert!(fabric.contains("fd_producer_tuples_in{producer=\"2\"}"));
        assert!(fabric.contains("fd_producer_ring_depth{producer=\"0\",shard=\"1\"}"));
    }

    #[test]
    fn overload_flags_parse() {
        let cfg = CliConfig::parse([
            "--shed",
            "subsample:0.25",
            "--lag-budget",
            "8",
            "--drain-timeout",
            "5",
        ])
        .unwrap();
        assert_eq!(cfg.shed, ShedPolicy::Subsample { target_rate: 0.25 });
        assert_eq!(cfg.lag_budget, Some(8));
        assert_eq!(cfg.drain_timeout_secs, 5.0);
        let cfg = CliConfig::parse(["--shed", "drop-oldest"]).unwrap();
        assert_eq!(cfg.shed, ShedPolicy::DropOldest);
        let cfg = CliConfig::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cfg.shed, ShedPolicy::Block);
        assert_eq!(cfg.lag_budget, None);
        assert_eq!(cfg.drain_timeout_secs, 30.0);
        assert!(CliConfig::parse(["--shed", "nope"]).is_err());
        assert!(CliConfig::parse(["--shed", "subsample:1.5"]).is_err());
        assert!(CliConfig::parse(["--lag-budget", "0"]).is_err());
        assert!(CliConfig::parse(["--drain-timeout", "0"]).is_err());
    }

    #[test]
    fn healthy_run_reports_clean_shutdown() {
        let cfg = CliConfig::parse([
            "--rate",
            "10000",
            "--duration",
            "2",
            "--hosts",
            "50",
            "--shards",
            "2",
            "--format",
            "stats",
        ])
        .unwrap();
        let report = try_run_report(&cfg).unwrap();
        assert!(!report.drain.deadline_expired);
        assert!(!report.data_lost_under_block());
        assert_eq!(report.drain.shed_tuples, 0);
        assert_eq!(report.degraded_shards, 0);
        let summary = report.shutdown_summary();
        assert!(summary.contains("shed_tuples=0"), "{summary}");
        assert!(!summary.contains("DATA LOST"), "{summary}");
    }

    #[test]
    fn lossy_shed_engages_sharded_executor_and_matches_block_when_healthy() {
        // With no overload pressure, DropOldest must shed nothing and the
        // rows must be identical to a Block run of the same trace.
        fn args(shed: &'static str) -> [&'static str; 12] {
            [
                "--rate",
                "10000",
                "--duration",
                "2",
                "--hosts",
                "50",
                "--shed",
                shed,
                "--format",
                "csv",
                "--limit",
                "0",
            ]
        }
        let block = try_run_report(&CliConfig::parse(args("block")).unwrap()).unwrap();
        let lossy = try_run_report(&CliConfig::parse(args("drop-oldest")).unwrap()).unwrap();
        assert_eq!(block.output, lossy.output);
        assert_eq!(lossy.drain.shed_tuples, 0, "no pressure, no sheds");
        assert!(
            !lossy.data_lost_under_block(),
            "lossy policy never trips it"
        );
    }

    #[test]
    fn subsample_is_refused_for_unscalable_aggregates() {
        let cfg = CliConfig::parse([
            "--agg",
            "count",
            "--shed",
            "subsample:0.5",
            "--duration",
            "1",
            "--rate",
            "1000",
        ])
        .unwrap();
        let err = try_run(&cfg).unwrap_err();
        assert!(
            err.contains("Horvitz-Thompson") || err.contains("shed_policy"),
            "{err}"
        );
    }

    #[test]
    fn lossy_shed_is_refused_with_durable_store() {
        let dir = std::env::temp_dir().join(format!("fdql-shed-durable-{}", std::process::id()));
        let cfg = CliConfig::parse([
            "--shed",
            "drop-oldest",
            "--data-dir",
            dir.to_str().unwrap(),
            "--duration",
            "1",
            "--rate",
            "1000",
        ])
        .unwrap();
        let err = try_run(&cfg).unwrap_err();
        assert!(
            err.contains("lossless") || err.contains("shed_policy"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_format_prints_only_counters() {
        let cfg = CliConfig::parse([
            "--format",
            "stats",
            "--rate",
            "1000",
            "--duration",
            "1",
            "--hosts",
            "10",
        ])
        .unwrap();
        let out = run(&cfg);
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with("# tuples="));
    }
}
