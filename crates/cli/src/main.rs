//! `fdql` binary entry point: parse flags, run the query, print the rows.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fd_cli::CliConfig::parse(args.iter().map(String::as_str)) {
        Ok(cfg) => match fd_cli::try_run(&cfg) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            // `--help` also lands here, carrying the usage text.
            eprintln!("{msg}");
            if msg == fd_cli::USAGE {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
