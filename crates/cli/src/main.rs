//! `fdql` binary entry point: parse flags, run the query, print the rows.
//!
//! Exit status: `0` on success, `1` on a bad invocation or failed run,
//! `3` when the run completed but lost data under the lossless `block`
//! shed policy (an abandoned drain, a degraded shard) — so scripts can
//! distinguish "wrong flags" from "answers are incomplete".

use std::process::ExitCode;

/// Exit status for a run that completed but lost data under
/// [`fd_engine::prelude::ShedPolicy::Block`].
const EXIT_DATA_LOST: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fd_cli::CliConfig::parse(args.iter().map(String::as_str)) {
        Ok(cfg) => match fd_cli::try_run_report(&cfg) {
            Ok(report) => {
                print!("{}", report.output);
                // The shutdown report goes to stderr: stdout stays
                // bit-identical to an untroubled run's.
                eprint!("{}", report.shutdown_summary());
                if report.data_lost_under_block() {
                    ExitCode::from(EXIT_DATA_LOST)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            // `--help` also lands here, carrying the usage text.
            eprintln!("{msg}");
            if msg == fd_cli::USAGE {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
