//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Every `benches/fig*.rs` target regenerates one figure of the paper: it
//! builds the workload with `fd-gen`, runs the competing queries through
//! `fd-engine`, measures per-tuple cost and summary space, and prints the
//! same series the paper plots, as a markdown table. Results are recorded in
//! `EXPERIMENTS.md`.

use std::time::Instant;

use fd_engine::engine::{Engine, EngineStats, Row};
use fd_engine::shard::ShardedEngine;
use fd_engine::spsc::BatchPool;
use fd_engine::tuple::Packet;
use fd_engine::udaf::Query;

/// True when `FD_QUICK` is set in the environment: benches shrink their
/// workloads to a smoke-test budget, skip their strict assertions (the
/// tiny runs are too noisy to gate on), and leave the committed
/// `BENCH_*.json` files untouched. Used by the CI bench-smoke job.
pub fn quick() -> bool {
    std::env::var_os("FD_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Scales a full-run workload knob down for `FD_QUICK` smoke runs:
/// returns `full` normally, `full * 0.05` (at least `floor`) under quick.
pub fn quick_scaled(full: f64, floor: f64) -> f64 {
    if quick() {
        (full * 0.05).max(floor)
    } else {
        full
    }
}

/// Outcome of running one query over one trace.
#[derive(Debug)]
pub struct RunMeasurement {
    /// Mean cost per offered tuple, nanoseconds.
    pub ns_per_tuple: f64,
    /// Engine counters.
    pub stats: EngineStats,
    /// Mean summary size per group (bytes), measured at peak (just before
    /// the final bucket close).
    pub space_per_group: Option<f64>,
    /// The emitted rows (for correctness spot checks).
    pub rows: Vec<Row>,
}

/// Runs `query` over `packets`, timing the processing loop only (trace
/// generation and row collection excluded). One warm-up pass over a prefix
/// primes caches and the allocator.
pub fn measure_query(query: &Query, packets: &[Packet]) -> RunMeasurement {
    // Warm-up on up to 50k packets with a throwaway engine.
    let warm = &packets[..packets.len().min(50_000)];
    let mut w = Engine::new(query.clone());
    for p in warm {
        w.process(p);
    }
    w.finish();

    let mut engine = Engine::new(query.clone());
    let start = Instant::now();
    for p in packets {
        engine.process(p);
    }
    let elapsed = start.elapsed();
    let space_per_group = engine.space_per_group();
    let rows = engine.finish();
    RunMeasurement {
        ns_per_tuple: elapsed.as_nanos() as f64 / packets.len().max(1) as f64,
        stats: engine.stats(),
        space_per_group,
        rows,
    }
}

/// Outcome of one sharded run.
#[derive(Debug)]
pub struct ShardMeasurement {
    /// End-to-end throughput, tuples/second: ingest of the whole trace
    /// plus the final flush/merge (`finish`), wall clock.
    pub tuples_per_sec: f64,
    /// The same as mean nanoseconds per offered tuple.
    pub ns_per_tuple: f64,
    /// Combined engine counters.
    pub stats: EngineStats,
    /// Emitted row count (for correctness spot checks).
    pub rows: usize,
}

/// Runs `query` over `packets` through an N-shard engine, timing ingest +
/// final merge wall-clock. Note: on a host with fewer than `n_shards + 1`
/// cores the workers timeslice with the dispatcher and the wall-clock gain
/// is bounded by the core count — pair this with
/// [`fd_engine::metrics::sharded_capacity_pps`] for the
/// machine-independent view.
pub fn measure_sharded_query(
    query: &Query,
    n_shards: usize,
    packets: &[Packet],
) -> ShardMeasurement {
    // Warm-up pass, same shape as `measure_query`.
    let warm = &packets[..packets.len().min(50_000)];
    let mut w = ShardedEngine::try_new(query.clone(), n_shards).expect("spawn shards");
    for p in warm {
        w.process(p);
    }
    w.finish();

    let mut engine = ShardedEngine::try_new(query.clone(), n_shards).expect("spawn shards");
    let start = Instant::now();
    for p in packets {
        engine.process(p);
    }
    let rows = engine.finish().len();
    let elapsed = start.elapsed().as_secs_f64();
    ShardMeasurement {
        tuples_per_sec: packets.len() as f64 / elapsed,
        ns_per_tuple: elapsed * 1e9 / packets.len().max(1) as f64,
        stats: engine.stats(),
        rows,
    }
}

/// Batch size the dispatch simulations flush at — the engine's
/// [`fd_engine::shard::DEFAULT_BATCH_SIZE`].
const DISPATCH_BATCH: usize = fd_engine::shard::DEFAULT_BATCH_SIZE;

/// The engine's shard routing: Fibonacci hash, high-bits multiply-shift
/// fold (matches `ShardedEngine`; a low-bits `h % n` fold would misstate
/// the cost *and* the spread for strided keys).
#[inline]
fn route_shard(key: u64, n_shards: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((u128::from(h) * n_shards as u128) >> 64) as usize
}

/// Measures the per-tuple cost of the *legacy scalar* dispatch path —
/// per-tuple admission with two divisions (bucket id, closed-bucket
/// target), then a `mem::take` hand-off that leaves an empty `Vec` to
/// regrow, exactly as the pre-batching dispatcher did. Workers are not
/// attached: this isolates the serial ingress fraction.
pub fn measure_dispatch_scalar_ns(query: &Query, n_shards: usize, packets: &[Packet]) -> f64 {
    assert!(n_shards > 0 && !packets.is_empty());
    let mut staged: Vec<Vec<Packet>> = vec![Vec::new(); n_shards];
    let mut watermark: u64 = 0;
    let mut closed_below: u64 = 0;
    let start = Instant::now();
    for pkt in packets {
        if let Some(f) = &query.filter {
            if !f(pkt) {
                continue;
            }
        }
        let bucket = pkt.ts / query.bucket_micros;
        if bucket < closed_below {
            continue;
        }
        watermark = watermark.max(pkt.ts);
        let key = (query.group_by)(pkt);
        let shard = route_shard(key, n_shards);
        staged[shard].push(*pkt);
        if staged[shard].len() >= DISPATCH_BATCH {
            // The legacy hand-off: ship the Vec, regrow a fresh one.
            let batch = std::mem::take(&mut staged[shard]);
            drop(std::hint::black_box(batch));
        }
        closed_below =
            closed_below.max(watermark.saturating_sub(query.slack_micros) / query.bucket_micros);
    }
    std::hint::black_box(&staged);
    start.elapsed().as_nanos() as f64 / packets.len() as f64
}

/// Measures the per-tuple cost of the *batched columnar* dispatch path —
/// the sharded engine's current ingress: one fused pass per batch doing
/// admission with the closed boundary held in timestamp space (no
/// per-tuple divisions) plus route-and-scatter into per-shard buffers,
/// with pool-recycled hand-offs (zero steady-state allocation). Workers
/// are not attached: this isolates the serial ingress fraction,
/// comparable head-to-head with [`measure_dispatch_scalar_ns`].
pub fn measure_dispatch_ns(query: &Query, n_shards: usize, packets: &[Packet]) -> f64 {
    assert!(n_shards > 0 && !packets.is_empty());
    let pool: BatchPool<Packet> = BatchPool::new(n_shards + 2);
    let mut staged: Vec<Vec<Packet>> = (0..n_shards).map(|_| pool.take(DISPATCH_BATCH)).collect();
    let mut watermark: u64 = 0;
    let bm = query.bucket_micros;
    let slack = query.slack_micros;
    let mut closed_low: u64 = 0;
    let start = Instant::now();
    for chunk in packets.chunks(DISPATCH_BATCH) {
        for pkt in chunk {
            if let Some(f) = &query.filter {
                if !f(pkt) {
                    continue;
                }
            }
            if pkt.ts < closed_low {
                continue;
            }
            watermark = watermark.max(pkt.ts);
            let horizon = watermark.saturating_sub(slack);
            if horizon >= closed_low.saturating_add(bm) {
                closed_low = (horizon / bm) * bm;
            }
            let key = (query.group_by)(pkt);
            let shard = route_shard(key, n_shards);
            staged[shard].push(*pkt);
            if staged[shard].len() >= DISPATCH_BATCH {
                // The recycled hand-off: the "worker" returns the buffer.
                let batch = std::mem::replace(&mut staged[shard], pool.take(DISPATCH_BATCH));
                pool.put(std::hint::black_box(batch));
            }
        }
    }
    std::hint::black_box(&staged);
    start.elapsed().as_nanos() as f64 / packets.len() as f64
}

/// One producer's route-and-scatter pass over `packets`, exactly as the
/// fabric's `IngressHandle::stage`/`seal_epoch` runs it: per chunk, one
/// fused pass computing admission plus the multiply-shift hash fold into
/// a shard-index scratch array, then a software write-combining scatter
/// into per-shard staging buffers, then an epoch seal that ships every
/// shard's staging through an `Arc` hand-off with pool recycling.
/// Returns elapsed seconds.
fn ingress_scatter_secs(query: &Query, n_shards: usize, packets: &[Packet]) -> f64 {
    const REJECT: u32 = u32::MAX;
    let pool: BatchPool<Packet> = BatchPool::new(n_shards + 2);
    let mut staging: Vec<Vec<Packet>> = (0..n_shards).map(|_| pool.take(DISPATCH_BATCH)).collect();
    let mut shard_of: Vec<u32> = Vec::with_capacity(DISPATCH_BATCH);
    let bm = query.bucket_micros;
    let slack = query.slack_micros;
    let mut wm: u64 = 0;
    let mut closed_low: u64 = 0;
    let start = Instant::now();
    for chunk in packets.chunks(DISPATCH_BATCH) {
        // Pass 1: fused admission + routing into the scratch array.
        shard_of.clear();
        for pkt in chunk {
            let idx = if query.filter.as_ref().is_some_and(|f| !f(pkt)) || pkt.ts < closed_low {
                REJECT
            } else {
                wm = wm.max(pkt.ts);
                let horizon = wm.saturating_sub(slack);
                if horizon >= closed_low.saturating_add(bm) {
                    closed_low = (horizon / bm) * bm;
                }
                route_shard((query.group_by)(pkt), n_shards) as u32
            };
            shard_of.push(idx);
        }
        // Pass 2: write-combining scatter into the staging buffers.
        for (pkt, &s) in chunk.iter().zip(&shard_of) {
            if s != REJECT {
                staging[s as usize].push(*pkt);
            }
        }
        // Epoch seal: every shard ships (the fabric's determinism
        // contract), and the "worker" returns the buffer to the pool.
        for staged in staging.iter_mut() {
            let sent = if staged.is_empty() {
                std::sync::Arc::new(Vec::new())
            } else {
                std::sync::Arc::new(std::mem::replace(staged, pool.take(DISPATCH_BATCH)))
            };
            if let Ok(buf) = std::sync::Arc::try_unwrap(std::hint::black_box(sent)) {
                if buf.capacity() > 0 {
                    pool.put(buf);
                }
            }
        }
    }
    std::hint::black_box(&staging);
    start.elapsed().as_secs_f64()
}

/// Measures the per-tuple cost of one fabric ingress producer's
/// vectorized route-and-scatter stage (see [`ingress_scatter_secs`]),
/// worker-free — the fabric-era counterpart of [`measure_dispatch_ns`],
/// directly comparable with it.
pub fn measure_ingress_ns(query: &Query, n_shards: usize, packets: &[Packet]) -> f64 {
    assert!(n_shards > 0 && !packets.is_empty());
    ingress_scatter_secs(query, n_shards, packets) * 1e9 / packets.len() as f64
}

/// Wall-clock aggregate ingress throughput (tuples/s) with `producers`
/// threads each running the fabric scatter stage over a contiguous slice
/// of `packets`. On hosts with fewer cores than producers this measures
/// oversubscription, not the fabric — gate on a core count check and fall
/// back to the modeled aggregate
/// ([`fd_engine::metrics::fabric_capacity_pps`]).
pub fn measure_parallel_ingress_tps(
    query: &Query,
    n_shards: usize,
    producers: usize,
    packets: &[Packet],
) -> f64 {
    assert!(producers > 0 && !packets.is_empty());
    let per = packets.len().div_ceil(producers);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for slice in packets.chunks(per) {
            let q = query.clone();
            scope.spawn(move || ingress_scatter_secs(&q, n_shards, slice));
        }
    });
    packets.len() as f64 / start.elapsed().as_secs_f64()
}

/// Measures the batched dispatch path with the supervision layer's
/// whole per-batch bookkeeping run inline, worker-free — the same
/// serial-ingress methodology as [`measure_dispatch_ns`], so the two are
/// comparable head-to-head. Per flushed batch this performs an `Arc`
/// wrap, a clone retained in the per-shard replay backlog, a trim pass
/// releasing batches the latest checkpoint covers, and — the part no
/// instruction count shows — the buffer *rotation*: a retained batch
/// cannot recycle until a checkpoint covers it, so the staging buffers
/// cycle through a `checkpoint_every`-deep window instead of ping-ponging
/// hot. In the real engine the trim and reclaim run on worker threads
/// (the dispatcher only appends), so this single-threaded number is a
/// conservative ceiling on the dispatcher's share of the cost.
/// `checkpoint_every == 0` runs the identical loop with supervision off
/// (the baseline), and checkpoint sequence advance mimics the worker:
/// after `checkpoint_every` applied tuples, staggered per shard exactly
/// as the engine staggers.
pub fn measure_dispatch_supervised_ns(
    query: &Query,
    n_shards: usize,
    packets: &[Packet],
    checkpoint_every: u64,
) -> f64 {
    use std::collections::VecDeque;
    use std::sync::Arc;

    assert!(n_shards > 0 && !packets.is_empty());
    struct Seat {
        backlog: VecDeque<(u64, Arc<Vec<Packet>>)>,
        next_seq: u64,
        /// Tuples the simulated worker has applied since its last
        /// checkpoint (pre-offset for the engine's first-interval stagger).
        applied: u64,
        /// Sequence number of the latest simulated checkpoint.
        ckpt: u64,
    }
    // Pool sized as the engine sizes it: staging plus one checkpoint
    // window of retained batches per shard; prewarmed off the clock, as
    // the engine prewarms at spawn.
    let window = match checkpoint_every {
        0 => 0,
        every => ((every / DISPATCH_BATCH as u64) + 2).min(512) as usize,
    };
    let bound = n_shards * (1 + window) + 2;
    let pool: BatchPool<Packet> = BatchPool::new(bound);
    let blank = Packet {
        ts: 0,
        src_ip: 0,
        dst_ip: 0,
        src_port: 0,
        dst_port: 0,
        len: 0,
        proto: fd_engine::tuple::Proto::Tcp,
    };
    pool.prewarm(bound.min(512), DISPATCH_BATCH, blank);
    let mut seats: Vec<Seat> = (0..n_shards)
        .map(|s| Seat {
            backlog: VecDeque::new(),
            next_seq: 0,
            applied: s as u64 * checkpoint_every / n_shards as u64,
            ckpt: 0,
        })
        .collect();
    let mut staged: Vec<Vec<Packet>> = (0..n_shards).map(|_| pool.take(DISPATCH_BATCH)).collect();
    let mut watermark: u64 = 0;
    let bm = query.bucket_micros;
    let slack = query.slack_micros;
    let mut closed_low: u64 = 0;
    let start = Instant::now();
    for chunk in packets.chunks(DISPATCH_BATCH) {
        for pkt in chunk {
            if let Some(f) = &query.filter {
                if !f(pkt) {
                    continue;
                }
            }
            if pkt.ts < closed_low {
                continue;
            }
            watermark = watermark.max(pkt.ts);
            let horizon = watermark.saturating_sub(slack);
            if horizon >= closed_low.saturating_add(bm) {
                closed_low = (horizon / bm) * bm;
            }
            let key = (query.group_by)(pkt);
            let shard = route_shard(key, n_shards);
            staged[shard].push(*pkt);
            if staged[shard].len() >= DISPATCH_BATCH {
                let batch = std::mem::replace(&mut staged[shard], pool.take(DISPATCH_BATCH));
                // Both configurations Arc-wrap the batch — `Msg::Batch`
                // always ships an `Arc`, supervised or not — so the wrap
                // stays out of the measured delta.
                let sent = Arc::new(std::hint::black_box(batch));
                if checkpoint_every == 0 {
                    // Unsupervised hand-off: the "worker" is the sole
                    // owner and returns the drained buffer.
                    if let Ok(buf) = Arc::try_unwrap(sent) {
                        pool.put(buf);
                    }
                    continue;
                }
                let seat = &mut seats[shard];
                seat.next_seq += 1;
                let seq = seat.next_seq;
                // Retain before sending (the failed send itself must be
                // replayable), then trim what the checkpoint covers —
                // the engine splits these between dispatcher (append)
                // and worker (trim); here both run inline.
                seat.backlog.push_back((seq, Arc::clone(&sent)));
                while seat.backlog.front().is_some_and(|(q, _)| *q <= seat.ckpt) {
                    let (_, pkts) = seat.backlog.pop_front().expect("non-empty front");
                    if let Ok(buf) = Arc::try_unwrap(pkts) {
                        pool.put(buf);
                    }
                }
                // The "worker": applies the batch (dropping its reference)
                // and checkpoints at message boundaries.
                let applied_len = sent.len() as u64;
                drop(std::hint::black_box(sent));
                seat.applied += applied_len;
                if seat.applied >= checkpoint_every {
                    seat.ckpt = seq;
                    seat.applied = 0;
                }
            }
        }
    }
    std::hint::black_box(&staged);
    std::hint::black_box(&seats);
    start.elapsed().as_nanos() as f64 / packets.len() as f64
}

/// Formats a byte count like the paper's log-scale space plots (B, KB, MB).
pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.1} MB", bytes / (1024.0 * 1024.0))
    } else if bytes >= 1024.0 {
        format!("{:.1} KB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

/// A printable result table: one row per x-value, one column per series.
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Starts a table with the given title, x-axis label and series names.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row of cells (must match the number of series).
    pub fn row(&mut self, x: impl Into<String>, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push((x.into(), cells));
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut out = format!("\n### {}\n\n", self.title);
        out += &format!("| {} |", self.x_label);
        for c in &self.columns {
            out += &format!(" {c} |");
        }
        out += "\n|";
        for _ in 0..=self.columns.len() {
            out += "---|";
        }
        out += "\n";
        for (x, cells) in &self.rows {
            out += &format!("| {x} |");
            for c in cells {
                out += &format!(" {c} |");
            }
            out += "\n";
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_engine::prelude::*;
    use fd_gen::TraceConfig;

    #[test]
    fn measure_query_reports_cost_and_rows() {
        let trace = TraceConfig {
            duration_secs: 1.0,
            rate_pps: 20_000.0,
            ..Default::default()
        }
        .generate();
        let q = Query::builder("count")
            .group_by(|p| p.dst_key())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let m = measure_query(&q, &trace);
        assert!(m.ns_per_tuple > 0.0);
        assert_eq!(m.stats.tuples_in, trace.len() as u64);
        let total: f64 = m.rows.iter().map(|r| r.value.as_float().unwrap()).sum();
        assert_eq!(total, trace.len() as f64);
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(12.0), "12 B");
        assert_eq!(fmt_bytes(2048.0), "2.0 KB");
        assert_eq!(fmt_bytes(3.0 * 1024.0 * 1024.0), "3.0 MB");
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Fig X", "rate", &["a", "b"]);
        t.row("100k", vec!["1".into(), "2".into()]);
        let md = t.render();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| 100k | 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", "x", &["a", "b"]);
        t.row("1", vec!["only-one".into()]);
    }
}
