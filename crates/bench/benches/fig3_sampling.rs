//! Figure 3 of the paper: sampling queries under time decay.
//!
//! The paper's query draws one sample of source IPs per minute
//! (`select tb, PRISAMP(srcIP, exp(time % 60)) from TCP group by time/60`),
//! comparing three samplers:
//!
//! - undecayed reservoir sampling (Vitter) — the "no decay" baseline,
//! - priority sampling fed forward-exponential weights — our method,
//! - Aggarwal's biased reservoir — the backward exponential-decay baseline.
//!
//! Two panels:
//!   (a) CPU load vs stream rate (100k–400k pkt/s), sample size 1000
//!   (b) CPU cost vs sample size at 100k pkt/s
//!
//! The paper's findings to reproduce: all three scale well, their costs are
//! comparable (forward decay's extra flexibility is free), and none of them
//! depends on the sample size.
//!
//! Run: `cargo bench --bench fig3_sampling`

#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use fd_bench::{measure_query, quick, quick_scaled, Table};
use fd_core::decay::Exponential;
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::TraceConfig;

const DURATION_SECS: f64 = 15.0;

fn trace_at(rate_pps: f64) -> Vec<Packet> {
    TraceConfig {
        seed: 3,
        duration_secs: quick_scaled(DURATION_SECS, 1.5),
        rate_pps,
        n_hosts: 10_000,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

/// The three samplers of Figure 3. The decay rate matches the paper's
/// `exp(time % 60)` weight with the bucket start as landmark.
fn samplers(k: usize) -> Vec<(&'static str, Arc<FnFactory>)> {
    vec![
        (
            "reservoir (no decay)",
            reservoir_factory(k, 17, |p| p.src_host()),
        ),
        (
            "prisamp (fwd exp)",
            pri_sample_factory(Exponential::new(1.0), k, 17, |p| p.src_host()),
        ),
        // Aggarwal's reservoir size is dictated by λ = 1/k, not chosen.
        (
            "Aggarwal (bwd exp)",
            biased_reservoir_factory(1.0 / k as f64, 17, |p| p.src_host()),
        ),
    ]
}

fn query(factory: Arc<FnFactory>) -> Query {
    // One sample per minute over the whole TCP stream: a single group, as
    // in the paper (the selection cost is identical across samplers and is
    // part of every measurement).
    Query::builder("fig3")
        .filter(|p| p.proto == Proto::Tcp)
        .bucket_secs(60)
        .aggregate(factory)
        .build()
}

fn main() {
    println!(
        "\nFigure 3 — sampling under decay. Trace: {DURATION_SECS} s synthetic TCP; one \
         per-minute sample of srcIP per method.\n"
    );

    // Panel (a): CPU load vs stream rate at k = 1000.
    let labels: Vec<&str> = samplers(1000).iter().map(|(l, _)| *l).collect();
    let mut table = Table::new(
        "Figure 3(a) — CPU load vs stream rate, sample size 1000",
        "rate (pkt/s)",
        &labels,
    );
    let mut costs_at_rates: Vec<Vec<f64>> = Vec::new();
    for rate in [100_000.0, 200_000.0, 300_000.0, 400_000.0f64] {
        let packets = trace_at(rate);
        let mut cells = Vec::new();
        let mut costs = Vec::new();
        for (_, factory) in samplers(1000) {
            let m = measure_query(&query(factory), &packets);
            costs.push(m.ns_per_tuple);
            cells.push(format!("{:.2}%", cpu_load_pct(rate, m.ns_per_tuple)));
        }
        costs_at_rates.push(costs);
        table.row(format!("{}k", rate as u64 / 1000), cells);
    }
    table.print();

    // Panel (b): cost vs sample size at 100k pkt/s.
    let packets = trace_at(100_000.0);
    let mut table_b = Table::new(
        "Figure 3(b) — per-tuple cost vs sample size at 100k pkt/s",
        "sample size k",
        &labels,
    );
    let mut costs_at_k: Vec<Vec<f64>> = Vec::new();
    for k in [100usize, 500, 1000, 5000, 10_000] {
        let mut cells = Vec::new();
        let mut costs = Vec::new();
        for (_, factory) in samplers(k) {
            let m = measure_query(&query(factory), &packets);
            costs.push(m.ns_per_tuple);
            cells.push(format!("{:.0} ns", m.ns_per_tuple));
        }
        costs_at_k.push(costs);
        table_b.row(format!("{k}"), cells);
    }
    table_b.print();

    if quick() {
        println!("\nfig3: FD_QUICK set, skipping the timing shape assertions");
        return;
    }

    // Shape assertions — the paper's findings.
    // (1) "The CPU load is comparable for all algorithms": within 4× of
    //     each other at every rate (the paper's curves sit within ~25%; we
    //     allow more headroom for allocator noise).
    for costs in &costs_at_rates {
        let (min, max) = (
            costs.iter().cloned().fold(f64::MAX, f64::min),
            costs.iter().cloned().fold(0.0, f64::max),
        );
        assert!(max < 4.0 * min, "sampler costs diverged: {costs:?}");
    }
    // (2) "less than 10% increase in CPU load as the data rates increases"
    //     — per-tuple cost is flat in the offered rate (load grows only
    //     linearly with rate). Allow 50% drift for timer noise.
    for s in 0..3 {
        let (lo, hi) = (costs_at_rates[0][s], costs_at_rates[3][s]);
        assert!(
            hi < 1.5 * lo + 30.0,
            "sampler {s}: per-tuple cost should be flat in rate ({lo} → {hi})"
        );
    }
    // (3) "the cost of the three sampling methods all appear independent of
    //     the sample size".
    for s in 0..3 {
        let (k_min, k_max) = (costs_at_k[0][s], costs_at_k[4][s]);
        assert!(
            k_max < 2.0 * k_min + 30.0,
            "sampler {s}: cost should not grow with k ({k_min} → {k_max})"
        );
    }
    println!("\nfig3: comparable sampler costs, flat in rate and sample size ✓");
}
