//! Hot-path benchmark: scalar vs batched columnar summary updates, and
//! scalar vs batched dispatch — the regression-gated numbers for the
//! batching work.
//!
//! Two halves:
//!
//! - **Summary updates.** `DecayedCount`/`DecayedSum` fed one tuple at a
//!   time vs through `update_batch`, per decay family, on the Figure 2
//!   arrival process (100k pkt/s Poisson on microsecond ticks). The
//!   batched path hoists the renormalization check and the landmark read
//!   out of the inner loop, stripes the accumulation across lanes for
//!   instruction-level parallelism, and — for transcendental families —
//!   memoizes `g`/`ln_g` per tick in a `WeightKernel`. Microsecond ticks
//!   at 100k pkt/s repeat only ~10% of the time (P[gap < 1 µs] =
//!   1 − e^−0.1), so extra series on millisecond-quantized ticks show the
//!   memo's payoff when ticks genuinely repeat (~99% hits).
//! - **Dispatch.** The sharded dispatcher's serial ingress fraction,
//!   simulated without workers: the legacy per-tuple path (two divisions
//!   per tuple, `mem::take` hand-offs that regrow) vs the batched path
//!   (division-free admission, one hash pass, pool-recycled buffers).
//!
//! Results land in `BENCH_hotpath.json` at the repo root;
//! `scripts/bench_diff.py` gates CI on >10% ns/tuple regressions against
//! the committed copy. `FD_QUICK=1` shrinks the run and skips both the
//! strict assertions and the JSON write.
//!
//! Run: `cargo bench --bench hotpath`

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use fd_bench::{measure_dispatch_ns, measure_dispatch_scalar_ns, quick, quick_scaled, Table};
use fd_core::aggregates::{DecayedCount, DecayedSum};
use fd_core::decay::{Exponential, ForwardDecay, Monomial, NoDecay};
use fd_core::kernel::WeightKernel;
use fd_core::Timestamp;
use fd_engine::prelude::*;
use fd_gen::TraceConfig;

/// Engine default batch size; also the chunk the batched loops feed.
const BATCH: usize = fd_engine::shard::DEFAULT_BATCH_SIZE;
/// Timing passes per measurement; the minimum is reported.
const PASSES: usize = 3;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 7,
        duration_secs: quick_scaled(20.0, 0.5),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

/// Best-of-N wall time for `body`, as ns per `n` items.
fn time_ns_per(n: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best / n.max(1) as f64
}

/// One summary-update series: scalar vs batched `DecayedCount` over `ts`.
/// Returns (scalar_ns, batched_ns) and asserts the two answers agree.
fn measure_count<G: ForwardDecay>(g: G, ts: &[Timestamp]) -> (f64, f64) {
    // `black_box` granularity mirrors the unit of arrival each path sees
    // in the engine: the scalar path gets one opaque tuple at a time, the
    // batched path one opaque chunk — and keeps the compiler from hoisting
    // either computation out of the timed region.
    let mut scalar_answer = 0.0;
    let scalar_ns = time_ns_per(ts.len(), || {
        let mut c = DecayedCount::new(g.clone(), 0.0);
        for &t in ts {
            c.update(black_box(t));
        }
        scalar_answer = black_box(c.query(*ts.last().unwrap() + 1.0));
    });
    let mut batched_answer = 0.0;
    let batched_ns = time_ns_per(ts.len(), || {
        let mut c = DecayedCount::new(g.clone(), 0.0);
        for chunk in ts.chunks(BATCH) {
            c.update_batch(black_box(chunk));
        }
        batched_answer = black_box(c.query(*ts.last().unwrap() + 1.0));
    });
    let rel = (scalar_answer - batched_answer).abs() / scalar_answer.abs().max(1.0);
    assert!(
        rel <= 1e-9,
        "batched count diverged: {scalar_answer} vs {batched_answer}"
    );
    (scalar_ns, batched_ns)
}

/// Scalar vs batched `DecayedSum` (weights times a value column).
fn measure_sum<G: ForwardDecay>(g: G, ts: &[Timestamp], vals: &[f64]) -> (f64, f64) {
    let mut scalar_answer = 0.0;
    let scalar_ns = time_ns_per(ts.len(), || {
        let mut s = DecayedSum::new(g.clone(), 0.0);
        for (&t, &v) in ts.iter().zip(vals) {
            s.update(black_box(t), black_box(v));
        }
        scalar_answer = black_box(s.query(*ts.last().unwrap() + 1.0));
    });
    let mut batched_answer = 0.0;
    let batched_ns = time_ns_per(ts.len(), || {
        let mut s = DecayedSum::new(g.clone(), 0.0);
        for (tc, vc) in ts.chunks(BATCH).zip(vals.chunks(BATCH)) {
            s.update_batch(black_box(tc), black_box(vc));
        }
        batched_answer = black_box(s.query(*ts.last().unwrap() + 1.0));
    });
    let rel = (scalar_answer - batched_answer).abs() / scalar_answer.abs().max(1.0);
    assert!(
        rel <= 1e-9,
        "batched sum diverged: {scalar_answer} vs {batched_answer}"
    );
    (scalar_ns, batched_ns)
}

/// The tick-cache hit rate a `WeightKernel` realizes on this timestamp
/// series (fraction of `g` evaluations answered from the memo).
fn cache_hit_rate<G: ForwardDecay>(g: G, ts: &[Timestamp]) -> Option<f64> {
    if !g.prefers_tick_cache() {
        return None;
    }
    let mut k = WeightKernel::new(g);
    let l = Timestamp::from(0.0);
    for &t in ts {
        k.g(t - l);
    }
    Some(k.hit_rate())
}

fn reduction_pct(scalar: f64, batched: f64) -> f64 {
    100.0 * (1.0 - batched / scalar)
}

fn main() {
    let packets = trace();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "hot path: {} tuples, batch {BATCH}, {cores} host core(s){}",
        packets.len(),
        if quick() { " [FD_QUICK]" } else { "" }
    );

    let ts: Vec<Timestamp> = packets
        .iter()
        .map(|p| Timestamp::from_micros(p.ts as i64))
        .collect();
    // Millisecond-quantized copy: heavy tick duplication for the memo.
    let ts_ms: Vec<Timestamp> = packets
        .iter()
        .map(|p| Timestamp::from_micros((p.ts / 1000 * 1000) as i64))
        .collect();
    let vals: Vec<f64> = packets.iter().map(|p| p.len as f64).collect();

    let mut table = Table::new(
        "Hot path — scalar vs batched summary updates",
        "series",
        &[
            "scalar ns/t",
            "batched ns/t",
            "reduction",
            "tick-cache hits",
        ],
    );
    let mut json_series = String::new();
    let mut record = |label: &str, scalar: f64, batched: f64, hits: Option<f64>| {
        let red = reduction_pct(scalar, batched);
        table.row(
            label,
            vec![
                format!("{scalar:.1}"),
                format!("{batched:.1}"),
                format!("{red:.0}%"),
                hits.map_or("—".into(), |h| format!("{:.0}%", h * 100.0)),
            ],
        );
        let hits_json = hits.map_or("null".into(), |h| format!("{h:.3}"));
        let _ = writeln!(
            json_series,
            "    {{\"label\": \"{label}\", \"scalar_ns_per_tuple\": {scalar:.1}, \
             \"batched_ns_per_tuple\": {batched:.1}, \"reduction_pct\": {red:.1}, \
             \"tick_cache_hit_rate\": {hits_json}}},"
        );
        red
    };

    let (s, b) = measure_count(NoDecay, &ts);
    record("no decay count", s, b, cache_hit_rate(NoDecay, &ts));

    let g_poly2 = Monomial::quadratic();
    let (s, b) = measure_count(g_poly2, &ts);
    let poly2_reduction = record("fwd poly (β=2) count", s, b, cache_hit_rate(g_poly2, &ts));

    let g_poly15 = Monomial::new(1.5);
    let (s, b) = measure_count(g_poly15, &ts);
    record(
        "fwd poly (β=1.5) count, µs ticks",
        s,
        b,
        cache_hit_rate(g_poly15, &ts),
    );

    // The per-tick memo's design point: a transcendental g on a feed whose
    // ticks genuinely repeat (ms quantization at 100k pkt/s ⇒ ~99% hits).
    let (s, b) = measure_count(g_poly15, &ts_ms);
    let poly15_ms_reduction = record(
        "fwd poly (β=1.5) count, ms ticks",
        s,
        b,
        cache_hit_rate(g_poly15, &ts_ms),
    );

    let g_exp = Exponential::new(0.1);
    let (s, b) = measure_count(g_exp, &ts);
    record(
        "exp (α=0.1) count, µs ticks",
        s,
        b,
        cache_hit_rate(g_exp, &ts),
    );

    let (s, b) = measure_count(g_exp, &ts_ms);
    record(
        "exp (α=0.1) count, ms ticks",
        s,
        b,
        cache_hit_rate(g_exp, &ts_ms),
    );

    let (s, b) = measure_sum(g_poly2, &ts, &vals);
    let poly2_sum_reduction = record("fwd poly (β=2) sum", s, b, cache_hit_rate(g_poly2, &ts));

    table.print();

    // Dispatch: the fig2 count query's serial ingress fraction.
    let q = Query::builder("fig2")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .build();
    let n_shards = 8;
    // Dispatch sweeps an 80 MB packet stream per pass and is the gated
    // number, so it gets extra passes to stabilize the minimum.
    let best = |f: &dyn Fn() -> f64| (0..PASSES + 2).map(|_| f()).fold(f64::INFINITY, f64::min);
    let disp_scalar = best(&|| measure_dispatch_scalar_ns(&q, n_shards, &packets));
    let disp_batched = best(&|| measure_dispatch_ns(&q, n_shards, &packets));
    let disp_reduction = reduction_pct(disp_scalar, disp_batched);
    let mut dtable = Table::new(
        "Hot path — dispatch cost (fig2 workload, 8 shards, no workers)",
        "path",
        &["ns/tuple"],
    );
    dtable.row(
        "scalar (per-tuple, mem::take)",
        vec![format!("{disp_scalar:.1}")],
    );
    dtable.row(
        "batched (columnar, pooled)",
        vec![format!("{disp_batched:.1}")],
    );
    dtable.row("reduction", vec![format!("{disp_reduction:.0}%")]);
    dtable.print();

    if quick() {
        println!("FD_QUICK set: skipping strict gates and the JSON write");
        return;
    }

    // Soft floors well under the committed numbers: catch a path that
    // stopped being batched at all, without flaking on machine noise.
    // The committed BENCH_hotpath.json + scripts/bench_diff.py carry the
    // tight (10%) regression gate.
    assert!(
        poly15_ms_reduction >= 15.0 || poly2_reduction >= 15.0 || poly2_sum_reduction >= 15.0,
        "fwd-poly batched path lost its advantage: β=1.5 ms-tick {poly15_ms_reduction:.1}%, \
         β=2 count {poly2_reduction:.1}%, β=2 sum {poly2_sum_reduction:.1}%"
    );
    assert!(
        disp_reduction >= 15.0,
        "batched dispatch lost its advantage: {disp_reduction:.1}%"
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \
         \"workload\": \"fig2 arrivals: 20000 hosts, zipf 1.1, 100000 pkt/s x 20 s, TCP\",\n  \
         \"host_cores\": {cores},\n  \
         \"batch_size\": {BATCH},\n  \
         \"note\": \"ns/tuple, best of {PASSES} passes; batched = update_batch over {BATCH}-tuple chunks; dispatch simulated without workers (serial ingress fraction)\",\n  \
         \"series\": [\n{}  ],\n  \
         \"dispatch\": {{\"n_shards\": {n_shards}, \"scalar_ns_per_tuple\": {disp_scalar:.1}, \
         \"batched_ns_per_tuple\": {disp_batched:.1}, \"reduction_pct\": {disp_reduction:.1}}}\n}}\n",
        json_series.trim_end_matches(",\n").to_string() + "\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(out, &json).expect("write BENCH_hotpath.json");
    println!("wrote {out}");
}
