//! Supervision overhead gate: what checkpointing adds to the dispatch
//! hot path, measured two ways on the same fig2 count workload.
//!
//! Checkpointing is designed to stay off the per-tuple dispatch path:
//! workers serialize state only once per `checkpoint_every` tuples
//! (forward decay's frozen numerators make that serialization exact *and*
//! compact), and the dispatcher's extra work is one `Arc` clone, a
//! backlog push and a trim pass per batch — plus one cost no instruction
//! count shows: a retained batch cannot recycle until a checkpoint
//! covers it, so staging buffers rotate through a checkpoint window of
//! memory instead of ping-ponging hot.
//!
//! **The gated number: dispatcher-thread CPU in the real engine**
//! (the `thread_cpu_ns` clock), supervised vs unsupervised, full engine
//! runs with workers attached. Thread CPU counts exactly the work the
//! dispatch path executes — buffer fill, route, ring push, and under
//! supervision the backlog clone/trim — while time blocked on a full
//! ring or preempted by a co-tenant is not charged, which makes the
//! metric core-count independent and far tighter than wall ratios on a
//! 1-core shared runner.
//!
//! **The secondary number: worker-free serial ingress**
//! ([`measure_dispatch_supervised_ns`]), the same methodology as the
//! repo's dispatch hotpath bench (`hotpath.rs`). With no workers to
//! timeslice against, it isolates what supervision adds to a dispatcher
//! that never waits — an upper bound on the relative ingress cost for
//! deployments with enough cores, where the baseline dispatcher's
//! buffers ping-pong L2-hot and supervision's rotation is the only
//! cache pressure.
//!
//! Wall-clock ratios are recorded too but only as context: on CI's
//! single core the workers' serialization CPU lands on wall time by
//! timeslicing, pricing the core count rather than the design (on any
//! host with a spare core it overlaps dispatch).
//!
//! Noise is handled twice over: a single pass is ~10 ms — shorter than
//! an OS scheduling quantum — so each round interleaves several passes
//! per configuration and keeps per-config minima (the least-disturbed
//! pass), and the reported overheads are **medians of per-round
//! ratios** with the round order alternating, which cancels common-mode
//! drift and rejects outlier rounds.
//!
//! Results land in `BENCH_recovery.json` at the repo root; the
//! `*_ns_per_tuple` fields there are regression-gated across commits by
//! `scripts/bench_diff.py`.
//!
//! Run: `cargo bench -p fd-bench --bench recovery_overhead`
//! Knobs: `FD_TOLERANCE_PCT` (gate, default 3), `FD_CHECKPOINT_EVERY`
//! (interval), `FD_ROUNDS` (engine pairs, default 9), `FD_INGRESS_ROUNDS`
//! (ingress pairs, default 11), `FD_QUICK` (short rounds, no JSON, no
//! gate).

use std::time::Instant;

use fd_bench::{measure_dispatch_supervised_ns, quick, quick_scaled};
use fd_engine::prelude::*;
use fd_engine::telemetry::thread_cpu_ns;
use fd_gen::TraceConfig;

const SHARDS: usize = 4;
const DEFAULT_TOLERANCE_PCT: f64 = 3.0;

fn env_rounds(var: &str, full: usize) -> usize {
    if let Some(n) = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    if quick() {
        2
    } else {
        full
    }
}

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

fn query() -> Query {
    Query::builder("recovery_overhead")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .two_level(true)
        .lfta_slots(65_536)
        .build()
}

struct RunSample {
    /// Dispatcher-thread CPU ns per offered tuple (the gated metric).
    cpu_ns_per_tuple: f64,
    /// Raw end-to-end wall ns per offered tuple.
    wall_ns_per_tuple: f64,
    /// Checkpoints taken (0 for the unsupervised configuration).
    checkpoints: u64,
    /// Total worker serialization CPU, ns.
    checkpoint_ns: u64,
}

impl RunSample {
    fn min(self, other: RunSample) -> RunSample {
        let supervised = if other.checkpoints > 0 { &other } else { &self };
        RunSample {
            cpu_ns_per_tuple: self.cpu_ns_per_tuple.min(other.cpu_ns_per_tuple),
            wall_ns_per_tuple: self.wall_ns_per_tuple.min(other.wall_ns_per_tuple),
            checkpoints: supervised.checkpoints,
            checkpoint_ns: supervised.checkpoint_ns,
        }
    }
}

/// One full ingest + finish through the real engine, workers attached.
/// `checkpoint_every == 0` disables supervision entirely (no backlog, no
/// checkpoints — the pre-supervision fast path).
fn run_engine(packets: &[Packet], checkpoint_every: u64) -> RunSample {
    let mut e = ShardedEngine::try_new(query(), SHARDS)
        .expect("spawn shards")
        .checkpoint_every(checkpoint_every);
    let cpu0 = thread_cpu_ns();
    let start = Instant::now();
    for p in packets {
        e.process(p);
    }
    let rows = e.finish().len();
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    let cpu_ns = thread_cpu_ns().saturating_sub(cpu0) as f64;
    assert!(rows > 0, "workload produced no rows");
    let snap = e.telemetry().snapshot();
    // FD_QUICK shrinks the trace below one checkpoint interval per shard;
    // only insist on real checkpoints when the workload can produce them.
    if checkpoint_every > 0 && packets.len() as u64 / SHARDS as u64 > 2 * checkpoint_every {
        assert!(
            snap.checkpoints > 0,
            "supervised run must actually checkpoint"
        );
    }
    let n = packets.len() as f64;
    RunSample {
        cpu_ns_per_tuple: cpu_ns / n,
        wall_ns_per_tuple: elapsed_ns / n,
        checkpoints: snap.checkpoints,
        checkpoint_ns: snap.checkpoint_ns,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let packets = trace();
    let tolerance_pct = std::env::var("FD_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let every = std::env::var("FD_CHECKPOINT_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY);
    let rounds = env_rounds("FD_ROUNDS", 9);
    let ingress_rounds = env_rounds("FD_INGRESS_ROUNDS", 11);
    let q = query();
    println!(
        "recovery overhead: {} packets, {SHARDS} shards, checkpoint every \
         {every} tuples, dispatch-CPU tolerance {tolerance_pct}%{}",
        packets.len(),
        if quick() { " [FD_QUICK]" } else { "" }
    );

    // Gated phase: the real engine, workers attached, dispatcher-thread
    // CPU. Each round interleaves 2 passes per configuration (order
    // alternating across rounds) and keeps per-config minima before
    // taking the round's ratio.
    let mut best_off_cpu = f64::INFINITY;
    let mut best_on_cpu = f64::INFINITY;
    let mut best_off_wall = f64::INFINITY;
    let mut best_on_wall = f64::INFINITY;
    let mut cpu_ratios = Vec::with_capacity(rounds);
    let mut wall_ratios = Vec::with_capacity(rounds);
    let mut ckpt_count = 0u64;
    let mut ckpt_ns = 0u64;
    run_engine(&packets, 0); // warm-up: page cache, allocator, thread churn
    for round in 0..rounds {
        let pass = |every| run_engine(&packets, every);
        let (off, on) = if round % 2 == 0 {
            let off = pass(0).min(pass(0));
            let on = pass(every).min(pass(every));
            (off, on)
        } else {
            let on = pass(every).min(pass(every));
            let off = pass(0).min(pass(0));
            (off, on)
        };
        best_off_cpu = best_off_cpu.min(off.cpu_ns_per_tuple);
        best_on_cpu = best_on_cpu.min(on.cpu_ns_per_tuple);
        best_off_wall = best_off_wall.min(off.wall_ns_per_tuple);
        best_on_wall = best_on_wall.min(on.wall_ns_per_tuple);
        cpu_ratios.push(on.cpu_ns_per_tuple / off.cpu_ns_per_tuple);
        wall_ratios.push(on.wall_ns_per_tuple / off.wall_ns_per_tuple);
        ckpt_count = on.checkpoints;
        ckpt_ns = on.checkpoint_ns;
        println!(
            "  engine round {round}: dispatch CPU off {:.1} / on {:.1} ns/t, \
             wall off {:.1} / on {:.1} ns/t ({} checkpoints, {:.2} ms serialization CPU)",
            off.cpu_ns_per_tuple,
            on.cpu_ns_per_tuple,
            off.wall_ns_per_tuple,
            on.wall_ns_per_tuple,
            on.checkpoints,
            on.checkpoint_ns as f64 / 1e6,
        );
    }
    let cpu_overhead_pct = (median(&mut cpu_ratios) - 1.0) * 100.0;
    let wall_overhead_pct = (median(&mut wall_ratios) - 1.0) * 100.0;
    println!(
        "engine floors: dispatch CPU {best_off_cpu:.1} -> {best_on_cpu:.1} ns/t, \
         wall {best_off_wall:.1} -> {best_on_wall:.1} ns/t"
    );
    println!(
        "median paired overhead: dispatch CPU {cpu_overhead_pct:+.2}%, \
         wall {wall_overhead_pct:+.2}% on {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Secondary phase: worker-free serial ingress, 3 interleaved passes
    // per configuration per round.
    let mut best_off_ing = f64::INFINITY;
    let mut best_on_ing = f64::INFINITY;
    let mut ing_ratios = Vec::with_capacity(ingress_rounds);
    measure_dispatch_supervised_ns(&q, SHARDS, &packets, 0); // warm-up
    for round in 0..ingress_rounds {
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        for _ in 0..3 {
            if round % 2 == 0 {
                off = off.min(measure_dispatch_supervised_ns(&q, SHARDS, &packets, 0));
                on = on.min(measure_dispatch_supervised_ns(&q, SHARDS, &packets, every));
            } else {
                on = on.min(measure_dispatch_supervised_ns(&q, SHARDS, &packets, every));
                off = off.min(measure_dispatch_supervised_ns(&q, SHARDS, &packets, 0));
            }
        }
        best_off_ing = best_off_ing.min(off);
        best_on_ing = best_on_ing.min(on);
        ing_ratios.push(on / off);
    }
    let ingress_overhead_pct = (median(&mut ing_ratios) - 1.0) * 100.0;
    println!(
        "worker-free ingress: {best_off_ing:.1} -> {best_on_ing:.1} ns/t, \
         median paired overhead {ingress_overhead_pct:+.2}% \
         (upper bound for all-cores-spare deployments)"
    );

    if quick() {
        println!("FD_QUICK set: skipping the JSON write and the tolerance gate");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"recovery_overhead\",\n  \
         \"workload\": \"fig2 count: 20000 hosts, zipf 1.1, 100000 pkt/s x 10 s, TCP, {SHARDS} shards, checkpoint every {every}\",\n  \
         \"rounds\": {rounds},\n  \
         \"unsupervised_dispatch_cpu_ns_per_tuple\": {best_off_cpu:.2},\n  \
         \"supervised_dispatch_cpu_ns_per_tuple\": {best_on_cpu:.2},\n  \
         \"dispatch_cpu_overhead_pct\": {cpu_overhead_pct:.2},\n  \
         \"unsupervised_wall_ns\": {best_off_wall:.2},\n  \
         \"supervised_wall_ns\": {best_on_wall:.2},\n  \
         \"wall_overhead_pct\": {wall_overhead_pct:.2},\n  \
         \"ingress_rounds\": {ingress_rounds},\n  \
         \"unsupervised_ingress_ns_per_tuple\": {best_off_ing:.2},\n  \
         \"supervised_ingress_ns_per_tuple\": {best_on_ing:.2},\n  \
         \"ingress_overhead_pct\": {ingress_overhead_pct:.2},\n  \
         \"checkpoints\": {ckpt_count},\n  \
         \"checkpoint_serialization_ms\": {:.2},\n  \
         \"tolerance_pct\": {tolerance_pct}\n}}\n",
        ckpt_ns as f64 / 1e6,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(out, &json).expect("write BENCH_recovery.json");
    println!("wrote {out}");

    assert!(
        cpu_overhead_pct <= tolerance_pct,
        "supervision costs {cpu_overhead_pct:.2}% dispatch-thread CPU \
         (> {tolerance_pct}% budget); wall {wall_overhead_pct:+.2}%, \
         worker-free ingress {ingress_overhead_pct:+.2}%"
    );
}
