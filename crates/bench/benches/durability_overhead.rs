//! Durability overhead gate: what the WAL adds to the dispatch hot path.
//!
//! The durable sink is designed to cost the dispatcher almost nothing:
//! per batch, one branch and one `Arc` clone pushed onto a dedicated
//! writer thread's ring — serialization, checksumming, segment rotation,
//! fsync and checkpoint persistence all happen on the writer thread, off
//! the dispatch path. This bench holds that design to a number.
//!
//! **The gated number: dispatcher-thread CPU in the real engine** (the
//! `thread_cpu_ns` clock), durable (`fsync=checkpoint`, the default
//! policy) vs supervised-but-in-memory, identical chunked feeding either
//! way so the only delta is the durable hook plus the commit records.
//! Thread CPU does not charge time the writer thread spends in `write(2)`
//! or `fsync(2)`; with a spare core for the writer, its work overlaps
//! dispatch and the metric isolates the hook itself, so the budget is
//! tight (5%).
//!
//! **On a single-core host the isolation is physically impossible**: the
//! writer time-shares the dispatcher's core, and every preemption bills
//! cache refills to the dispatcher's own CPU clock — an irreducible
//! co-scheduling floor of a few ns/tuple that would dwarf a 5% budget
//! (baseline dispatch is ~13 ns/tuple). The gate there uses a looser,
//! documented budget instead of silently gating interference. The budget
//! is not toothless: a broken batch-recycling path (the WAL writer
//! holding the third `Arc` on every batch so buffers never returned to
//! the pool, charging a fresh ~100 KiB allocation plus cold-page fill to
//! the dispatcher per flush) measured +75% here and is exactly the class
//! of dispatcher-side regression the single-core budget exists to catch.
//! Wall clock is reported as context, never gated: on one core it
//! includes the writer's entire serialize/checksum/write/fsync bill.
//!
//! Noise handling matches the repo's other gates: interleaved passes with
//! per-config minima inside each round, **median of per-round ratios**
//! across rounds with alternating order, warm-up pass first.
//!
//! Results land in `BENCH_durability.json` at the repo root; the
//! `*_ns_per_tuple` fields there are regression-gated across commits by
//! `scripts/bench_diff.py`.
//!
//! Run: `cargo bench -p fd-bench --bench durability_overhead`
//! Knobs: `FD_TOLERANCE_PCT` (gate, default 5 with ≥2 cores / 45 on a
//! single core), `FD_ROUNDS` (pairs, default 9), `FD_QUICK` (short
//! rounds, no JSON, no gate).

use std::path::PathBuf;
use std::time::Instant;

use fd_bench::{quick, quick_scaled};
use fd_engine::prelude::*;
use fd_engine::telemetry::thread_cpu_ns;
use fd_gen::TraceConfig;

const SHARDS: usize = 4;
/// Dispatch-CPU budget when the writer thread has a core to overlap on.
const DEFAULT_TOLERANCE_PCT: f64 = 5.0;
/// Dispatch-CPU budget on a single-core host, where the writer's CPU
/// time-shares the ingest core and preemption bills cache refills to the
/// dispatcher — see the module docs for why 5% is unmeasurable there.
const SINGLE_CORE_TOLERANCE_PCT: f64 = 45.0;
/// Events per durable commit — mirrors the fdql driver's chunk.
const COMMIT_CHUNK: usize = 4096;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 3,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

fn query() -> Query {
    Query::builder("durability_overhead")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .two_level(true)
        .lfta_slots(65_536)
        .build()
}

fn rounds() -> usize {
    if let Some(n) = std::env::var("FD_ROUNDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    if quick() {
        2
    } else {
        9
    }
}

struct RunSample {
    /// Dispatcher-thread CPU ns per offered tuple (the gated metric).
    cpu_ns_per_tuple: f64,
    /// Raw end-to-end wall ns per offered tuple.
    wall_ns_per_tuple: f64,
    /// WAL bytes written (0 for the in-memory configuration).
    wal_bytes: u64,
    /// Checkpoints persisted to disk (0 for the in-memory configuration).
    checkpoints_persisted: u64,
}

impl RunSample {
    fn min(self, other: RunSample) -> RunSample {
        let durable = if other.wal_bytes > 0 { &other } else { &self };
        RunSample {
            cpu_ns_per_tuple: self.cpu_ns_per_tuple.min(other.cpu_ns_per_tuple),
            wall_ns_per_tuple: self.wall_ns_per_tuple.min(other.wall_ns_per_tuple),
            wal_bytes: durable.wal_bytes,
            checkpoints_persisted: durable.checkpoints_persisted,
        }
    }
}

/// One full ingest + finish through the real engine, workers attached,
/// fed in [`COMMIT_CHUNK`] chunks exactly like the fdql durable driver.
/// `store == None` is the in-memory baseline (same supervision, same
/// chunked feeding, no sink); `Some(dir)` writes a fresh durable store.
fn run_engine(packets: &[Packet], store: Option<PathBuf>) -> RunSample {
    let mut e = ShardedEngine::try_new(query(), SHARDS)
        .expect("spawn shards")
        .checkpoint_every(DEFAULT_CHECKPOINT_EVERY);
    let durable = store.is_some();
    if let Some(dir) = &store {
        let _ = std::fs::remove_dir_all(dir);
        e = e
            .try_durable(dir, DurabilityOptions::default())
            .expect("open durable store")
            .0;
    }
    let cpu0 = thread_cpu_ns();
    let start = Instant::now();
    let mut position = 0u64;
    for chunk in packets.chunks(COMMIT_CHUNK) {
        e.try_process_packets(chunk).expect("feed");
        position += chunk.len() as u64;
        if durable {
            e.durable_commit(position).expect("commit");
        }
    }
    let rows = e.finish().len();
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    let cpu_ns = thread_cpu_ns().saturating_sub(cpu0) as f64;
    assert!(rows > 0, "workload produced no rows");
    assert!(!e.durability_degraded(), "bench store must stay healthy");
    let snap = e.telemetry().snapshot();
    if durable && std::env::var("FD_PROBE_DISCARD").is_err() {
        assert!(snap.wal_bytes_written > 0, "durable run must write a WAL");
    }
    if let Some(dir) = &store {
        let _ = std::fs::remove_dir_all(dir);
    }
    let n = packets.len() as f64;
    RunSample {
        cpu_ns_per_tuple: cpu_ns / n,
        wall_ns_per_tuple: elapsed_ns / n,
        wal_bytes: snap.wal_bytes_written,
        checkpoints_persisted: snap.checkpoints_persisted,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let packets = trace();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tolerance_pct = std::env::var("FD_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if cores >= 2 {
            DEFAULT_TOLERANCE_PCT
        } else {
            SINGLE_CORE_TOLERANCE_PCT
        });
    let rounds = rounds();
    let store = std::env::temp_dir().join(format!("fd-bench-durable-{}", std::process::id()));
    println!(
        "durability overhead: {} packets, {SHARDS} shards, fsync=checkpoint, \
         commit every {COMMIT_CHUNK} events, {cores} core(s), \
         dispatch-CPU tolerance {tolerance_pct}%{}{}",
        packets.len(),
        if cores == 1 {
            " (single-core co-scheduling budget)"
        } else {
            ""
        },
        if quick() { " [FD_QUICK]" } else { "" }
    );

    let mut best_off_cpu = f64::INFINITY;
    let mut best_on_cpu = f64::INFINITY;
    let mut best_off_wall = f64::INFINITY;
    let mut best_on_wall = f64::INFINITY;
    let mut cpu_ratios = Vec::with_capacity(rounds);
    let mut wall_ratios = Vec::with_capacity(rounds);
    let mut wal_bytes = 0u64;
    let mut ckpts = 0u64;
    run_engine(&packets, Some(store.clone())); // warm-up: page cache, allocator, threads
    for round in 0..rounds {
        let (off, on) = if round % 2 == 0 {
            let off = run_engine(&packets, None).min(run_engine(&packets, None));
            let on = run_engine(&packets, Some(store.clone()))
                .min(run_engine(&packets, Some(store.clone())));
            (off, on)
        } else {
            let on = run_engine(&packets, Some(store.clone()))
                .min(run_engine(&packets, Some(store.clone())));
            let off = run_engine(&packets, None).min(run_engine(&packets, None));
            (off, on)
        };
        best_off_cpu = best_off_cpu.min(off.cpu_ns_per_tuple);
        best_on_cpu = best_on_cpu.min(on.cpu_ns_per_tuple);
        best_off_wall = best_off_wall.min(off.wall_ns_per_tuple);
        best_on_wall = best_on_wall.min(on.wall_ns_per_tuple);
        cpu_ratios.push(on.cpu_ns_per_tuple / off.cpu_ns_per_tuple);
        wall_ratios.push(on.wall_ns_per_tuple / off.wall_ns_per_tuple);
        wal_bytes = on.wal_bytes;
        ckpts = on.checkpoints_persisted;
        println!(
            "  round {round}: dispatch CPU off {:.1} / on {:.1} ns/t, \
             wall off {:.1} / on {:.1} ns/t ({:.1} MiB WAL, {} checkpoints persisted)",
            off.cpu_ns_per_tuple,
            on.cpu_ns_per_tuple,
            off.wall_ns_per_tuple,
            on.wall_ns_per_tuple,
            on.wal_bytes as f64 / (1024.0 * 1024.0),
            on.checkpoints_persisted,
        );
    }
    let cpu_overhead_pct = (median(&mut cpu_ratios) - 1.0) * 100.0;
    let wall_overhead_pct = (median(&mut wall_ratios) - 1.0) * 100.0;
    println!(
        "floors: dispatch CPU {best_off_cpu:.1} -> {best_on_cpu:.1} ns/t, \
         wall {best_off_wall:.1} -> {best_on_wall:.1} ns/t"
    );
    println!(
        "median paired overhead: dispatch CPU {cpu_overhead_pct:+.2}%, \
         wall {wall_overhead_pct:+.2}% on {cores} core(s)"
    );

    if quick() {
        println!("FD_QUICK set: skipping the JSON write and the tolerance gate");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"durability_overhead\",\n  \
         \"workload\": \"fig2 count: 20000 hosts, zipf 1.1, 100000 pkt/s x 10 s, TCP, {SHARDS} shards, fsync=checkpoint, commit every {COMMIT_CHUNK}\",\n  \
         \"rounds\": {rounds},\n  \
         \"plain_dispatch_cpu_ns_per_tuple\": {best_off_cpu:.2},\n  \
         \"durable_dispatch_cpu_ns_per_tuple\": {best_on_cpu:.2},\n  \
         \"dispatch_cpu_overhead_pct\": {cpu_overhead_pct:.2},\n  \
         \"plain_wall_ns\": {best_off_wall:.2},\n  \
         \"durable_wall_ns\": {best_on_wall:.2},\n  \
         \"wall_overhead_pct\": {wall_overhead_pct:.2},\n  \
         \"wal_mib\": {:.2},\n  \
         \"checkpoints_persisted\": {ckpts},\n  \
         \"cores\": {cores},\n  \
         \"tolerance_pct\": {tolerance_pct}\n}}\n",
        wal_bytes as f64 / (1024.0 * 1024.0),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durability.json");
    std::fs::write(out, &json).expect("write BENCH_durability.json");
    println!("wrote {out}");

    assert!(
        cpu_overhead_pct <= tolerance_pct,
        "the durable sink costs {cpu_overhead_pct:.2}% dispatch-thread CPU \
         (> {tolerance_pct}% budget); wall {wall_overhead_pct:+.2}%"
    );
}
