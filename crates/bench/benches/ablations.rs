//! Ablation studies of the design choices called out in DESIGN.md, beyond
//! the paper's own figures:
//!
//! - A1: the two-level (LFTA/HFTA) split and the LFTA table size — how much
//!   does Gigascope's architecture buy, and when does the low table thrash?
//! - A2: SpaceSaving capacity — the O(log 1/ε) update of the indexed heap.
//! - A3: landmark renormalization — the cost of exponential decay rescales
//!   as a function of the decay rate α.
//! - A4: q-digest compression parameter — update cost vs space vs rank
//!   error.
//!
//! Run: `cargo bench --bench ablations`

use std::time::Instant;

use fd_bench::{fmt_bytes, measure_query, quick, quick_scaled, Table};
use fd_core::aggregates::DecayedSum;
use fd_core::cm::DecayedCmHeavyHitters;
use fd_core::decay::{Exponential, Monomial};
use fd_core::heavy_hitters::{DecayedHeavyHitters, WeightedSpaceSaving};
use fd_core::quantiles::QDigest;
use fd_core::sampling::{JumpWeightedReservoir, WeightedReservoir};
use fd_engine::prelude::*;
use fd_gen::TraceConfig;

fn a1_two_level_and_lfta_size() {
    let packets = TraceConfig {
        seed: 8,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 200_000.0,
        n_hosts: 50_000, // stress the LFTA with many groups
        zipf_skew: 1.0,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate();
    let mut table = Table::new(
        "A1 — two-level split and LFTA size (forward-quadratic sum, 50k hosts)",
        "configuration",
        &["ns/pkt", "LFTA evictions"],
    );
    let mk = |two_level: bool, slots: usize| {
        Query::builder("a1")
            .group_by(|p| p.dst_key())
            .bucket_secs(60)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .two_level(two_level)
            .lfta_slots(slots)
            .build()
    };
    let single = measure_query(&mk(false, 1), &packets);
    table.row(
        "single level",
        vec![format!("{:.0}", single.ns_per_tuple), "–".into()],
    );
    let mut costs = vec![("single", single.ns_per_tuple)];
    for slots in [1_024usize, 16_384, 262_144] {
        let m = measure_query(&mk(true, slots), &packets);
        table.row(
            format!("two-level, {slots} slots"),
            vec![
                format!("{:.0}", m.ns_per_tuple),
                format!("{}", m.stats.lfta_evictions),
            ],
        );
        costs.push(("split", m.ns_per_tuple));
    }
    table.print();
    println!(
        "(a thrashing 1k-slot LFTA forwards most tuples as evicted partials; a \
         right-sized table approaches plain hashing)"
    );
}

fn a2_space_saving_capacity() {
    let n_items = if quick() { 200_000u64 } else { 2_000_000 };
    let items: Vec<(u64, f64)> = (0..n_items)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h % 100_000, 1.0 + (h % 7) as f64)
        })
        .collect();
    let mut table = Table::new(
        "A2 — weighted SpaceSaving update cost vs capacity (indexed min-heap)",
        "capacity (1/ε)",
        &["ns/update", "space"],
    );
    let mut costs = Vec::new();
    for cap in [16usize, 128, 1024, 8192, 65_536] {
        let mut ss = WeightedSpaceSaving::new(cap);
        let t0 = Instant::now();
        for &(item, w) in &items {
            ss.update(item, w);
        }
        let ns = t0.elapsed().as_nanos() as f64 / items.len() as f64;
        costs.push(ns);
        table.row(
            format!("{cap}"),
            vec![format!("{ns:.0}"), fmt_bytes(ss.size_bytes() as f64)],
        );
    }
    table.print();
    // O(log k): the 4096× capacity range should cost only a small multiple.
    if !quick() {
        assert!(
            costs[4] < 8.0 * costs[0],
            "update cost should grow logarithmically in capacity: {costs:?}"
        );
    }
    println!("(update cost grows ~logarithmically with capacity — Theorem 2's O(log 1/ε))");
}

fn a3_renormalization_cost() {
    // Exponential decay over a fixed stream; larger α → g overflows sooner →
    // more landmark rescales. Rescaling a constant-space aggregate is O(1),
    // so even α chosen to rescale thousands of times must barely move the
    // per-update cost.
    let n = if quick() { 500_000u64 } else { 5_000_000 };
    let mut table = Table::new(
        "A3 — landmark renormalization: exponential decay rate vs cost",
        "α (per second)",
        &["ns/update", "rescales (approx)"],
    );
    let mut costs = Vec::new();
    for alpha in [0.001, 0.1, 10.0, 1000.0] {
        let g = Exponential::new(alpha);
        let mut s = DecayedSum::new(g, 0.0);
        let t0 = Instant::now();
        for i in 0..n {
            s.update(i as f64 * 1e-2, 1.0);
        }
        let ns = t0.elapsed().as_nanos() as f64 / n as f64;
        // ln(RESCALE_THRESHOLD) ≈ 345; a rescale fires every 345/α seconds
        // of stream time (5e4 s total).
        let expected_rescales = (5e4 * alpha / 345.0).floor();
        costs.push(ns);
        table.row(
            format!("{alpha}"),
            vec![format!("{ns:.1}"), format!("{expected_rescales}")],
        );
        assert!(s.query(n as f64 * 1e-2).is_finite());
    }
    table.print();
    let (min, max) = (
        costs.iter().cloned().fold(f64::MAX, f64::min),
        costs.iter().cloned().fold(0.0, f64::max),
    );
    if !quick() {
        assert!(
            max < 2.0 * min + 5.0,
            "renormalization should be ~free: {costs:?}"
        );
    }
    println!("(rescale frequency varies by 10⁶×; per-update cost does not care)");
}

fn a4_qdigest_compression() {
    let n_items = if quick() { 100_000u64 } else { 1_000_000 };
    let items: Vec<(u64, f64)> = (0..n_items)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h & 0xFFFF, 1.0)
        })
        .collect();
    let exact_rank = |v: u64| items.iter().filter(|&&(x, _)| x <= v).count() as f64;
    let mut table = Table::new(
        "A4 — q-digest compression parameter k (16-bit domain, 1M updates)",
        "k",
        &[
            "ns/update",
            "nodes",
            "space",
            "worst rank err (εW units of k=bits/ε)",
        ],
    );
    for k in [160u64, 1_600, 16_000, 160_000] {
        let mut q = QDigest::new(16, k);
        let t0 = Instant::now();
        for &(v, w) in &items {
            q.update(v, w);
        }
        let ns = t0.elapsed().as_nanos() as f64 / items.len() as f64;
        let worst = (0..0xFFFFu64)
            .step_by(3001)
            .map(|v| (q.rank(v) - exact_rank(v)).abs())
            .fold(0.0f64, f64::max);
        table.row(
            format!("{k}"),
            vec![
                format!("{ns:.0}"),
                format!("{}", q.len()),
                fmt_bytes(q.size_bytes() as f64),
                format!("{:.4}", worst / items.len() as f64),
            ],
        );
        // Documented bound: rank error ≤ W · bits / k.
        assert!(
            worst <= items.len() as f64 * 16.0 / k as f64 + 1e-6,
            "rank error beyond bound at k = {k}"
        );
    }
    table.print();
    println!("(space and accuracy trade off linearly in k; update cost stays ~flat)");
}

fn a5_cm_vs_space_saving() {
    // Same decayed heavy-hitter task, two backends: the paper's weighted
    // SpaceSaving (Theorem 2) vs a weighted Count-Min sketch + candidate
    // set. Both receive the same forward-decay weights.
    let packets = TraceConfig {
        seed: 9,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 200_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate();
    let g = Exponential::new(0.1);
    let (phi, eps) = (0.02, 0.002);
    let mut table = Table::new(
        "A5 — heavy-hitter backends: SpaceSaving vs Count-Min (φ = 0.02)",
        "backend",
        &["ns/update", "space", "top-5"],
    );

    let mut ss = DecayedHeavyHitters::with_epsilon(g, 0.0, eps);
    let t0 = Instant::now();
    for p in &packets {
        ss.update(p.ts_secs(), p.dst_host());
    }
    let ss_ns = t0.elapsed().as_nanos() as f64 / packets.len() as f64;
    let ss_top: Vec<u64> = ss
        .heavy_hitters(phi, 10.0)
        .iter()
        .take(5)
        .map(|h| h.item)
        .collect();
    table.row(
        "weighted SpaceSaving",
        vec![
            format!("{ss_ns:.0}"),
            fmt_bytes(ss.size_bytes() as f64),
            format!("{ss_top:?}"),
        ],
    );

    let mut cm = DecayedCmHeavyHitters::new(g, 0.0, phi, eps, 0.01, 11);
    let t0 = Instant::now();
    for p in &packets {
        cm.update(p.ts_secs(), p.dst_host());
    }
    let cm_ns = t0.elapsed().as_nanos() as f64 / packets.len() as f64;
    let cm_top: Vec<u64> = cm
        .heavy_hitters(10.0)
        .iter()
        .take(5)
        .map(|h| h.item)
        .collect();
    table.row(
        "Count-Min + candidates",
        vec![
            format!("{cm_ns:.0}"),
            fmt_bytes(cm.size_bytes() as f64),
            format!("{cm_top:?}"),
        ],
    );
    table.print();
    if !quick() {
        assert_eq!(
            ss_top[..3],
            cm_top[..3],
            "backends must agree on the heavy head"
        );
    }
    println!("(both backends find the same heavy head; SpaceSaving is the paper's choice)");
}

fn a6_jump_vs_heap_weighted_reservoir() {
    // Theorem 6's heap-based Efraimidis–Spirakis sampler vs the A-ES
    // exponential-jumps acceleration: identical distribution, far fewer
    // random draws.
    let g = Monomial::new(1.0);
    let n = if quick() { 200_000u64 } else { 2_000_000 };
    let k = 1000;
    let mut table = Table::new(
        "A6 — weighted reservoir: heap (O(log k)/item) vs exponential jumps",
        "variant",
        &["ns/item", "random draws"],
    );
    let mut heap = WeightedReservoir::new(g, 0.0, k, 5);
    let t0 = Instant::now();
    for i in 0..n {
        heap.update(1.0 + i as f64 * 1e-3, &i);
    }
    let heap_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    table.row(
        "heap ES",
        vec![format!("{heap_ns:.0}"), format!("{n} (one per item)")],
    );

    let mut jump = JumpWeightedReservoir::new(0.0, k, 5);
    let t0 = Instant::now();
    for i in 0..n {
        jump.update(&g, 1.0 + i as f64 * 1e-3, &i);
    }
    let jump_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    table.row(
        "A-ES jumps",
        vec![format!("{jump_ns:.0}"), format!("{}", jump.random_draws())],
    );
    table.print();
    assert_eq!(jump.sample().len(), k);
    // Draw count scales as k·ln(n/k), so the ratio to n only impresses at
    // full size.
    if !quick() {
        assert!(
            jump.random_draws() < n / 20,
            "jumps should draw ≪ n randoms: {}",
            jump.random_draws()
        );
    }
    println!(
        "(same sample distribution — see fd-core sampling tests — with ~{}× fewer draws)",
        n / jump.random_draws().max(1)
    );
}

fn a7_answer_quality_under_nonstationary_load() {
    // Beyond the paper's CPU/space figures: how *accurate* are the decayed
    // heavy-hitter estimates when the traffic itself is non-stationary?
    // A bursty on/off trace with a mid-stream flood; per decay function we
    // compare the SpaceSaving estimates of the top-20 hosts against exact
    // decayed counts.
    use fd_gen::{Burst, OnOff};
    use std::collections::HashMap;

    let packets = TraceConfig {
        // The burst/on-off structure needs the full 30 s of stream time, so
        // quick mode thins the rate instead of the duration.
        seed: 14,
        duration_secs: 30.0,
        rate_pps: if quick() { 10_000.0 } else { 50_000.0 },
        n_hosts: 5_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        burst: Some(Burst {
            start_secs: 20.0,
            end_secs: 30.0,
            dst_ip: 0xBEEF,
            fraction: 0.2,
        }),
        on_off: Some(OnOff {
            on_secs: 5.0,
            off_secs: 5.0,
            off_rate_fraction: 0.3,
        }),
        ..Default::default()
    }
    .generate();
    let t_q = 30.0;
    let mut table = Table::new(
        "A7 — decayed HH estimate quality on bursty traffic (top-20 hosts, ε = 0.001)",
        "decay",
        &["max rel. error", "mean rel. error", "victim share"],
    );
    let decays: Vec<(&str, fd_core::decay::AnyDecay)> = vec![
        ("none", "none".parse().unwrap()),
        ("poly:2", "poly:2".parse().unwrap()),
        ("exp:0.1", "exp:0.1".parse().unwrap()),
        ("halflife:5", "halflife:5".parse().unwrap()),
    ];
    for (label, g) in decays {
        use fd_core::decay::ForwardDecay as _;
        let mut hh = DecayedHeavyHitters::with_epsilon(g.clone(), 0.0, 0.001);
        let mut exact: HashMap<u64, f64> = HashMap::new();
        for p in &packets {
            hh.update(p.ts_secs(), p.dst_host());
            *exact.entry(p.dst_host()).or_default() += g.weight(0.0, p.ts_secs(), t_q);
        }
        let total: f64 = exact.values().sum();
        let mut top: Vec<(&u64, &f64)> = exact.iter().collect();
        top.sort_by(|a, b| b.1.total_cmp(a.1));
        let (mut max_err, mut sum_err) = (0.0f64, 0.0f64);
        for &(item, truth) in top.iter().take(20) {
            let est = hh.estimate(*item, t_q).map(|c| c.count).unwrap_or(0.0);
            let rel = (est - truth).abs() / truth;
            max_err = max_err.max(rel);
            sum_err += rel;
        }
        let victim_share = exact.get(&0xBEEF).copied().unwrap_or(0.0) / total;
        table.row(
            label,
            vec![
                format!("{:.5}", max_err),
                format!("{:.5}", sum_err / 20.0),
                format!("{:.1}%", victim_share * 100.0),
            ],
        );
        // ε = 0.001 with heavy hosts ≥ 1% of mass: relative error ≤ ε/0.01.
        assert!(
            max_err < 0.15,
            "{label}: top-20 estimate error too large: {max_err}"
        );
    }
    table.print();
    println!(
        "(estimates stay within the εC bound for every decay function even under \
         on/off modulation and a mid-stream flood; stronger decay raises the \
         in-progress flood's share — the ddos_detection example's effect, quantified)"
    );
}

fn main() {
    println!("\nAblation studies (see DESIGN.md §11).\n");
    a1_two_level_and_lfta_size();
    a2_space_saving_capacity();
    a3_renormalization_cost();
    a4_qdigest_compression();
    a5_cm_vs_space_saving();
    a6_jump_vs_heap_weighted_reservoir();
    a7_answer_quality_under_nonstationary_load();
    println!("\nablations: all sanity assertions passed ✓");
}
