//! Telemetry overhead smoke: instrumented vs uninstrumented sharded run.
//!
//! The telemetry registry's cost rules (single-writer counters are relaxed
//! stores, RMW and histograms only per batch) are supposed to make live
//! observability nearly free. This bench pins that down: the same fig2
//! count workload through the same 4-shard engine, with hot-path mirroring
//! on (`live_telemetry(true)`, the default) and off, best-of-N each, and
//! fails if the instrumented run is more than a few percent slower.
//!
//! Results land in `BENCH_telemetry.json` at the repo root.
//!
//! Run: `cargo bench --bench telemetry_overhead`
//! Tolerance override: `FD_TOLERANCE_PCT=10 cargo bench --bench telemetry_overhead`

use std::time::Instant;

use fd_bench::{quick, quick_scaled};
use fd_engine::prelude::*;
use fd_gen::TraceConfig;

const SHARDS: usize = 4;
const DEFAULT_TOLERANCE_PCT: f64 = 5.0;

fn rounds() -> usize {
    if quick() {
        2
    } else {
        7
    }
}

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

fn query() -> Query {
    Query::builder("telemetry_overhead")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(count_factory())
        .two_level(true)
        .lfta_slots(65_536)
        .build()
}

/// One full ingest + finish, returning mean ns per offered tuple.
fn run_once(packets: &[Packet], live: bool) -> f64 {
    let mut e = ShardedEngine::try_new(query(), SHARDS)
        .expect("spawn shards")
        .live_telemetry(live);
    let start = Instant::now();
    for p in packets {
        e.process(p);
    }
    let rows = e.finish().len();
    let elapsed = start.elapsed().as_secs_f64();
    assert!(rows > 0, "workload produced no rows");
    elapsed * 1e9 / packets.len() as f64
}

fn main() {
    let packets = trace();
    let tolerance_pct = std::env::var("FD_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let rounds = rounds();
    println!(
        "telemetry overhead: {} packets, {SHARDS} shards, best of {rounds}, \
         tolerance {tolerance_pct}%{}",
        packets.len(),
        if quick() { " [FD_QUICK]" } else { "" }
    );

    // Warm-up (page cache, allocator, thread pool churn).
    run_once(&packets, false);

    // Interleave the two configurations so thermal/scheduler drift hits
    // both equally; best-of-N is the noise floor of each.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for round in 0..rounds {
        let off = run_once(&packets, false);
        let on = run_once(&packets, true);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        println!("  round {round}: off {off:.1} ns/t, on {on:.1} ns/t");
    }
    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    println!(
        "best: uninstrumented {best_off:.1} ns/t, instrumented {best_on:.1} ns/t \
         => overhead {overhead_pct:+.2}%"
    );

    if quick() {
        println!("FD_QUICK set: skipping the JSON write and the tolerance gate");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \
         \"workload\": \"fig2 count: 20000 hosts, zipf 1.1, 100000 pkt/s x 10 s, TCP, {SHARDS} shards\",\n  \
         \"rounds\": {rounds},\n  \
         \"uninstrumented_ns_per_tuple\": {best_off:.2},\n  \
         \"instrumented_ns_per_tuple\": {best_on:.2},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"tolerance_pct\": {tolerance_pct}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(out, &json).expect("write BENCH_telemetry.json");
    println!("wrote {out}");

    assert!(
        overhead_pct <= tolerance_pct,
        "live telemetry costs {overhead_pct:.2}% (> {tolerance_pct}% budget)"
    );
}
