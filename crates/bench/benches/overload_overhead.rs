//! Overload-plane overhead gate: what the shed machinery costs a
//! dispatcher that never needs it, measured on a forward-decayed sum
//! workload through the real engine.
//!
//! The overload control plane is designed to be invisible on the happy
//! path. Admission replaces a blocking ring push with a
//! `wait_capacity(deadline)` probe that returns `Ready` immediately when
//! the ring has room, so the lossless default ([`ShedPolicy::Block`])
//! adds one capacity check and one depth read per batch. Arming
//! [`ShedPolicy::Subsample`] additionally builds a per-shard
//! [forward-decay subsampler], threads an optional Horvitz–Thompson
//! scale column through every batch message, and compares the ring depth
//! against the lag budget on every dispatch — but thins nothing until a
//! shard actually lags.
//!
//! **The gated number: dispatcher-thread CPU in the real engine**
//! (the `thread_cpu_ns` clock), subsample-armed vs the Block default,
//! full engine runs with workers attached — the same methodology and
//! noise handling as `recovery_overhead.rs`: interleaved passes with
//! per-config minima, medians of per-round ratios, alternating order.
//! Wall ratios are recorded as context only (on a 1-core runner they
//! price timeslicing, not the design).
//!
//! A third configuration measures the *engaged* worst case — lag budget
//! 0, so every batch is thinned through the sampler — to put a committed
//! ceiling on what shedding itself costs when overload is real. That
//! number is cross-commit-gated (it is deterministic for a fixed seed)
//! but exempt from the 3% happy-path budget: it is the price of load
//! shedding, not of having the option.
//!
//! Results land in `BENCH_overload.json` at the repo root; the
//! `*_ns_per_tuple` fields there are regression-gated across commits by
//! `scripts/bench_diff.py`.
//!
//! Run: `cargo bench -p fd-bench --bench overload_overhead`
//! Knobs: `FD_TOLERANCE_PCT` (happy-path gate, default 3), `FD_ROUNDS`
//! (engine pairs, default 9), `FD_QUICK` (short rounds, no JSON, no gate).

use std::time::Instant;

use fd_bench::{quick, quick_scaled};
use fd_core::decay::{AnyDecay, Monomial};
use fd_engine::prelude::*;
use fd_engine::telemetry::thread_cpu_ns;
use fd_gen::TraceConfig;

const SHARDS: usize = 4;
const DEFAULT_TOLERANCE_PCT: f64 = 3.0;

fn env_rounds(var: &str, full: usize) -> usize {
    if let Some(n) = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    if quick() {
        2
    } else {
        full
    }
}

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: quick_scaled(10.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

/// A linear, scalable aggregate: the one kind `Subsample` admits, so all
/// three configurations run the identical query.
fn query() -> Query {
    Query::builder("overload_overhead")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
        .two_level(true)
        .lfta_slots(65_536)
        .build()
}

#[derive(Clone, Copy, PartialEq)]
enum Config {
    /// The lossless default: capacity probe + depth read per batch.
    Block,
    /// Subsampler built and consulted, but no shard lags: the happy path
    /// with the full shed machinery armed.
    Armed,
    /// Lag budget 0: every batch runs through the thinner — the engaged
    /// worst case.
    Thinning,
}

impl Config {
    fn overload(self) -> OverloadConfig {
        let decay = AnyDecay::Monomial(Monomial::quadratic());
        match self {
            Config::Block => OverloadConfig::default(),
            Config::Armed => OverloadConfig {
                policy: ShedPolicy::Subsample { target_rate: 1.0 },
                decay,
                ..OverloadConfig::default()
            },
            Config::Thinning => OverloadConfig {
                policy: ShedPolicy::Subsample { target_rate: 0.7 },
                lag_budget: 0,
                decay,
                ..OverloadConfig::default()
            },
        }
    }
}

struct RunSample {
    /// Dispatcher-thread CPU ns per offered tuple (the gated metric).
    cpu_ns_per_tuple: f64,
    /// Raw end-to-end wall ns per offered tuple.
    wall_ns_per_tuple: f64,
    /// Tuples shed (non-zero only when thinning actually engages).
    shed_tuples: u64,
}

impl RunSample {
    fn min(self, other: RunSample) -> RunSample {
        RunSample {
            cpu_ns_per_tuple: self.cpu_ns_per_tuple.min(other.cpu_ns_per_tuple),
            wall_ns_per_tuple: self.wall_ns_per_tuple.min(other.wall_ns_per_tuple),
            shed_tuples: self.shed_tuples.max(other.shed_tuples),
        }
    }
}

/// One full ingest + finish through the real engine, workers attached.
fn run_engine(packets: &[Packet], config: Config) -> RunSample {
    let mut e = ShardedEngine::try_new(query(), SHARDS)
        .expect("spawn shards")
        .try_overload(config.overload())
        .expect("fwd sum accepts every policy");
    let cpu0 = thread_cpu_ns();
    let start = Instant::now();
    for p in packets {
        e.process(p);
    }
    let rows = e.finish().len();
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    let cpu_ns = thread_cpu_ns().saturating_sub(cpu0) as f64;
    assert!(rows > 0, "workload produced no rows");
    let snap = e.telemetry().snapshot();
    if config == Config::Block {
        assert_eq!(snap.shed_tuples, 0, "Block must never shed");
    }
    if config == Config::Thinning && !quick() {
        assert!(
            snap.shed_tuples > 0,
            "lag budget 0 at rate 0.7 must actually thin"
        );
    }
    let n = packets.len() as f64;
    RunSample {
        cpu_ns_per_tuple: cpu_ns / n,
        wall_ns_per_tuple: elapsed_ns / n,
        shed_tuples: snap.shed_tuples,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let packets = trace();
    let tolerance_pct = std::env::var("FD_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let rounds = env_rounds("FD_ROUNDS", 9);
    println!(
        "overload overhead: {} packets, {SHARDS} shards, happy-path \
         dispatch-CPU tolerance {tolerance_pct}%{}",
        packets.len(),
        if quick() { " [FD_QUICK]" } else { "" }
    );

    // Gated phase: Block vs subsample-armed, dispatcher-thread CPU.
    let mut best_block_cpu = f64::INFINITY;
    let mut best_armed_cpu = f64::INFINITY;
    let mut best_block_wall = f64::INFINITY;
    let mut best_armed_wall = f64::INFINITY;
    let mut cpu_ratios = Vec::with_capacity(rounds);
    let mut wall_ratios = Vec::with_capacity(rounds);
    let mut armed_shed = 0u64;
    run_engine(&packets, Config::Block); // warm-up
    for round in 0..rounds {
        let pass = |c| run_engine(&packets, c);
        let (block, armed) = if round % 2 == 0 {
            let block = pass(Config::Block).min(pass(Config::Block));
            let armed = pass(Config::Armed).min(pass(Config::Armed));
            (block, armed)
        } else {
            let armed = pass(Config::Armed).min(pass(Config::Armed));
            let block = pass(Config::Block).min(pass(Config::Block));
            (block, armed)
        };
        best_block_cpu = best_block_cpu.min(block.cpu_ns_per_tuple);
        best_armed_cpu = best_armed_cpu.min(armed.cpu_ns_per_tuple);
        best_block_wall = best_block_wall.min(block.wall_ns_per_tuple);
        best_armed_wall = best_armed_wall.min(armed.wall_ns_per_tuple);
        cpu_ratios.push(armed.cpu_ns_per_tuple / block.cpu_ns_per_tuple);
        wall_ratios.push(armed.wall_ns_per_tuple / block.wall_ns_per_tuple);
        armed_shed = armed_shed.max(armed.shed_tuples);
        println!(
            "  round {round}: dispatch CPU block {:.1} / armed {:.1} ns/t, \
             wall block {:.1} / armed {:.1} ns/t ({} tuples thinned while armed)",
            block.cpu_ns_per_tuple,
            armed.cpu_ns_per_tuple,
            block.wall_ns_per_tuple,
            armed.wall_ns_per_tuple,
            armed.shed_tuples,
        );
    }
    let cpu_overhead_pct = (median(&mut cpu_ratios) - 1.0) * 100.0;
    let wall_overhead_pct = (median(&mut wall_ratios) - 1.0) * 100.0;
    println!(
        "happy-path floors: dispatch CPU {best_block_cpu:.1} -> {best_armed_cpu:.1} ns/t, \
         wall {best_block_wall:.1} -> {best_armed_wall:.1} ns/t"
    );
    println!(
        "median paired overhead: dispatch CPU {cpu_overhead_pct:+.2}%, \
         wall {wall_overhead_pct:+.2}% on {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Context phase: the engaged worst case — every batch thinned.
    let mut best_thin_cpu = f64::INFINITY;
    let mut thin_shed = 0u64;
    for _ in 0..rounds.div_ceil(3) {
        let s = run_engine(&packets, Config::Thinning);
        best_thin_cpu = best_thin_cpu.min(s.cpu_ns_per_tuple);
        thin_shed = thin_shed.max(s.shed_tuples);
    }
    println!(
        "engaged thinning: {best_thin_cpu:.1} ns/t dispatch CPU at rate 0.7, \
         lag budget 0 ({thin_shed} of {} tuples shed)",
        packets.len()
    );

    if quick() {
        println!("FD_QUICK set: skipping the JSON write and the tolerance gate");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"overload_overhead\",\n  \
         \"workload\": \"fwd-sum: 20000 hosts, zipf 1.1, 100000 pkt/s x 10 s, TCP, {SHARDS} shards\",\n  \
         \"rounds\": {rounds},\n  \
         \"block_dispatch_cpu_ns_per_tuple\": {best_block_cpu:.2},\n  \
         \"armed_dispatch_cpu_ns_per_tuple\": {best_armed_cpu:.2},\n  \
         \"happy_path_overhead_pct\": {cpu_overhead_pct:.2},\n  \
         \"block_wall_ns\": {best_block_wall:.2},\n  \
         \"armed_wall_ns\": {best_armed_wall:.2},\n  \
         \"wall_overhead_pct\": {wall_overhead_pct:.2},\n  \
         \"thinning_dispatch_cpu_ns_per_tuple\": {best_thin_cpu:.2},\n  \
         \"thinning_shed_tuples\": {thin_shed},\n  \
         \"tolerance_pct\": {tolerance_pct}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    std::fs::write(out, &json).expect("write BENCH_overload.json");
    println!("wrote {out}");

    assert!(
        cpu_overhead_pct <= tolerance_pct,
        "arming the shed machinery costs {cpu_overhead_pct:.2}% dispatch-thread \
         CPU (> {tolerance_pct}% budget); wall {wall_overhead_pct:+.2}%"
    );
}
