//! Figure 1 of the paper: the relative decay property of forward decay on
//! g(n) = n².
//!
//! The paper's figure shows that an item sitting at the same *relative*
//! position γ between the landmark L and the query time t always has weight
//! γ² — no matter how far t advances. Backward polynomial decay, in
//! contrast, keeps no such promise. This harness prints the weights at a
//! range of query times; the forward columns must be constant down each
//! column, the backward ones must not.
//!
//! Run: `cargo bench --bench fig1_relative_decay`

use fd_bench::Table;
use fd_core::decay::{BackPolynomial, BackwardDecay, ForwardDecay, Monomial};

fn main() {
    let g = Monomial::quadratic();
    let f = BackPolynomial::new(2.0);
    let landmark = 0.0;
    let gammas = [0.25, 0.5, 0.75];

    let mut fwd = Table::new(
        "Figure 1 — forward decay g(n) = n²: weight of the item at relative age γ",
        "query time t",
        &["γ = 0.25", "γ = 0.50", "γ = 0.75"],
    );
    let mut bwd = Table::new(
        "Contrast — backward decay f(a) = (a+1)⁻²: same relative positions",
        "query time t",
        &["γ = 0.25", "γ = 0.50", "γ = 0.75"],
    );
    for t in [10.0, 100.0, 1_000.0, 10_000.0] {
        let fwd_cells = gammas
            .iter()
            .map(|&gamma| format!("{:.4}", g.weight(landmark, gamma * t, t)))
            .collect();
        let bwd_cells = gammas
            .iter()
            .map(|&gamma| format!("{:.4}", f.weight(gamma * t, t)))
            .collect();
        fwd.row(format!("{t}"), fwd_cells);
        bwd.row(format!("{t}"), bwd_cells);
    }
    fwd.print();
    println!("(each column is constant: weight = γ² — Lemma 1 of the paper)");
    bwd.print();
    println!("(columns drift toward 0: backward decay depends on absolute age)");

    // Machine-checkable assertion of the property, so `cargo bench` fails
    // loudly if the figure regresses.
    for &gamma in &gammas {
        for t in [10.0, 10_000.0] {
            let w = g.weight(landmark, gamma * t, t);
            assert!((w - gamma * gamma).abs() < 1e-9);
        }
    }
    println!("\nfig1: relative decay property verified ✓");
}
