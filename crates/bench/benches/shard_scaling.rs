//! Sharded-engine scaling on the Figure 2 workload: single-threaded vs
//! N-shard throughput.
//!
//! Section VI-B of the paper: forward-decay summaries are mergeable, so
//! "each site maintains a summary of its local stream" and combination is
//! exact. The sharded engine turns that into core-level parallelism; this
//! bench quantifies it on the paper's count-query workload (20 000 hosts,
//! Zipf 1.1, 100k pkt/s): per competitor it measures
//!
//! - the single-threaded engine's per-tuple cost (the baseline),
//! - the dispatch path's per-tuple cost (the serial fraction: admission +
//!   routing, the piece that cannot be parallelised),
//! - wall-clock N-shard throughput on this host, and
//! - the modeled capacity `min(10⁹/dispatch, N·10⁹/worker)` — the
//!   machine-independent speedup an (N+1)-core host realises, in the same
//!   spirit as the load model every other figure here uses.
//!
//! Results land in `BENCH_shard.json` at the repo root.
//!
//! Run: `cargo bench --bench shard_scaling`

use std::fmt::Write as _;
use std::sync::Arc;

use fd_bench::{
    measure_dispatch_ns, measure_query, measure_sharded_query, quick, quick_scaled, Table,
};
use fd_core::decay::{BackPolynomial, Monomial};
use fd_engine::metrics::sharded_capacity_pps;
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::TraceConfig;

const SHARDS: [usize; 3] = [2, 4, 8];

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: quick_scaled(20.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

/// The fig2 competitors that exercise the three cost regimes: LFTA-split
/// built-in (dispatch-bound), single-level forward decay (balanced), and
/// the backward-decay EH baseline (aggregation-bound).
fn competitors() -> Vec<(&'static str, Arc<FnFactory>, bool)> {
    vec![
        ("no decay", count_factory(), true),
        ("fwd poly", fwd_count_factory(Monomial::quadratic()), false),
        (
            "bwd EH",
            eh_count_factory(0.1, DynBackward::from_decay(BackPolynomial::new(2.0))),
            false,
        ),
    ]
}

fn query(factory: Arc<FnFactory>, two_level: bool) -> Query {
    Query::builder("fig2")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(factory)
        .two_level(two_level)
        .lfta_slots(65_536)
        .build()
}

fn fmt_tps(tps: f64) -> String {
    format!("{:.2} Mt/s", tps / 1e6)
}

fn main() {
    let packets = trace();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Wall-clock scaling needs one core per worker plus one per ingress
    // producer (this bench drives the classic single-dispatcher engine,
    // so producers = 1; `ingress_scaling` covers the fabric); with fewer,
    // those numbers measure oversubscription, not the engine — the flag
    // below marks them so readers (and CI boxes) don't mistake core
    // starvation for a scaling regression.
    let producers = 1usize;
    let wallclock_core_bound = cores < SHARDS[SHARDS.len() - 1] + producers;
    println!(
        "shard scaling on the fig2 workload: {} packets, {cores} host core(s){}{}",
        packets.len(),
        if wallclock_core_bound {
            " [wall-clock core-bound]"
        } else {
            ""
        },
        if quick() { " [FD_QUICK]" } else { "" }
    );

    let shard_cols: Vec<String> = SHARDS.iter().map(|n| format!("{n} shards")).collect();
    let mut wall_cols: Vec<&str> = vec!["single"];
    wall_cols.extend(shard_cols.iter().map(String::as_str));
    let mut table_wall = Table::new(
        "Sharded engine — wall-clock throughput (this host)",
        "query",
        &wall_cols,
    );
    let mut model_cols: Vec<&str> = vec!["dispatch ns/t", "worker ns/t"];
    model_cols.extend(shard_cols.iter().map(String::as_str));
    model_cols.push("speedup @8");
    let mut table_model = Table::new(
        "Sharded engine — modeled capacity (machine-independent)",
        "query",
        &model_cols,
    );

    let mut json_series = String::new();
    for (label, factory, two_level) in competitors() {
        let q = query(factory, two_level);
        let single = measure_query(&q, &packets);
        let single_tps = 1e9 / single.ns_per_tuple;
        let dispatch_ns = measure_dispatch_ns(&q, 8, &packets);
        // The worker re-runs the whole per-tuple pipeline minus the
        // selection; the single-threaded cost is its ceiling.
        let worker_ns = single.ns_per_tuple;

        let mut wall_cells = vec![fmt_tps(single_tps)];
        let mut wall_json = format!("\"1\": {single_tps:.0}");
        for n in SHARDS {
            let m = measure_sharded_query(&q, n, &packets);
            assert_eq!(
                m.rows,
                single.rows.len(),
                "{label}: sharded row count diverged"
            );
            wall_cells.push(fmt_tps(m.tuples_per_sec));
            let _ = write!(wall_json, ", \"{n}\": {:.0}", m.tuples_per_sec);
        }
        table_wall.row(label, wall_cells);

        let mut model_cells = vec![format!("{dispatch_ns:.0}"), format!("{worker_ns:.0}")];
        let mut model_json = format!("\"1\": {single_tps:.0}");
        let mut capacity_at_8 = single_tps;
        for n in SHARDS {
            let cap = sharded_capacity_pps(dispatch_ns, worker_ns, n);
            capacity_at_8 = cap;
            model_cells.push(fmt_tps(cap));
            let _ = write!(model_json, ", \"{n}\": {cap:.0}");
        }
        let speedup8 = capacity_at_8 / single_tps;
        model_cells.push(format!("{speedup8:.1}x"));
        table_model.row(label, model_cells);

        let _ = writeln!(
            json_series,
            "    {{\"label\": \"{label}\", \"two_level\": {two_level}, \
             \"single_ns_per_tuple\": {:.1}, \"dispatch_ns_per_tuple\": {dispatch_ns:.1}, \
             \"wallclock_tuples_per_sec\": {{{wall_json}}}, \
             \"modeled_tuples_per_sec\": {{{model_json}}}, \
             \"modeled_speedup_at_8_shards\": {speedup8:.2}}},",
            single.ns_per_tuple
        );
    }
    table_wall.print();
    table_model.print();

    if quick() {
        println!("FD_QUICK set: skipping the JSON write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \
         \"workload\": \"fig2 count: 20000 hosts, zipf 1.1, 100000 pkt/s x 20 s, TCP\",\n  \
         \"host_cores\": {cores},\n  \
         \"producers\": {producers},\n  \
         \"wallclock_core_bound\": {wallclock_core_bound},\n  \
         \"note\": \"wall-clock numbers are bounded by host_cores (core-bound when host_cores < shards + producers); modeled numbers apply the paper-style cost model min(1e9/dispatch_ns, n*1e9/worker_ns) to the measured per-tuple costs — the serial ingress term that model caps at 1e9/dispatch_ns is liftable with the multi-producer fabric, see BENCH_ingress.json\",\n  \
         \"series\": [\n{}  ]\n}}\n",
        json_series.trim_end_matches(",\n").to_string() + "\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(out, &json).expect("write BENCH_shard.json");
    println!("wrote {out}");
}
