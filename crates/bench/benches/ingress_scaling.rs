//! Multi-producer ingress scaling on the fwd-poly count workload.
//!
//! BENCH_shard.json shows the single dispatcher thread (its serial
//! route-and-scatter) capping modeled throughput at `1e9/dispatch_ns`
//! regardless of shard count — the ingress ceiling of the paper's §VI
//! cost model. The ingress fabric replaces that serial term with `P`
//! producers, each owning a full scatter stage; this bench measures
//!
//! - the per-tuple cost of one producer's vectorized two-pass scatter
//!   (`ingress_ns_per_tuple`, gated by `scripts/bench_diff.py`), next to
//!   the classic batched dispatcher's cost (the <5% single-producer
//!   regression budget),
//! - wall-clock aggregate ingress throughput with P producer threads on
//!   this host, and
//! - the modeled aggregate `P·10⁹/ingress_ns`, capped end-to-end by the
//!   workers at `min(P·10⁹/ingress_ns, n·10⁹/worker_ns)`
//!   ([`fd_engine::metrics::fabric_capacity_pps`]).
//!
//! Hosts with fewer cores than producers cannot show the scaling in
//! wall-clock (the threads time-slice one core), so each row carries a
//! `core_bound` honesty flag and the headline `aggregate_tuples_per_sec`
//! falls back to the modeled number when the flag is set.
//!
//! Results land in `BENCH_ingress.json` at the repo root.
//!
//! Run: `cargo bench --bench ingress_scaling`

use std::fmt::Write as _;

use fd_bench::{
    measure_dispatch_ns, measure_ingress_ns, measure_parallel_ingress_tps, measure_query, quick,
    quick_scaled, Table,
};
use fd_core::decay::Monomial;
use fd_engine::metrics::fabric_capacity_pps;
use fd_engine::prelude::*;
use fd_gen::TraceConfig;

const PRODUCERS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 8;

fn trace() -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: quick_scaled(20.0, 1.0),
        rate_pps: 100_000.0,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

fn query() -> Query {
    Query::builder("ingress")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(fwd_count_factory(Monomial::quadratic()))
        .two_level(false)
        .build()
}

fn fmt_tps(tps: f64) -> String {
    format!("{:.0} Mt/s", tps / 1e6)
}

fn main() {
    let packets = trace();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ingress scaling on the fwd-poly count workload: {} packets, {cores} host core(s){}",
        packets.len(),
        if quick() { " [FD_QUICK]" } else { "" }
    );

    let q = query();
    // Serial per-producer costs: the fabric's two-pass scatter next to the
    // classic dispatcher it replaces, and the worker cost that caps the
    // end-to-end model.
    let dispatch_ns = measure_dispatch_ns(&q, SHARDS, &packets);
    let ingress_ns = measure_ingress_ns(&q, SHARDS, &packets);
    let worker_ns = measure_query(&q, &packets).ns_per_tuple;
    println!(
        "dispatch (classic batched): {dispatch_ns:.1} ns/t · \
         ingress (fabric scatter): {ingress_ns:.1} ns/t · worker: {worker_ns:.1} ns/t"
    );

    let mut table = Table::new(
        "Multi-producer ingress — aggregate throughput",
        "producers",
        &[
            "wall-clock",
            "modeled ingress",
            "end-to-end capacity",
            "core-bound",
        ],
    );
    let mut json_series = String::new();
    let mut headline = Vec::new();
    for p in PRODUCERS {
        let wallclock = measure_parallel_ingress_tps(&q, SHARDS, p, &packets);
        let modeled = p as f64 * 1e9 / ingress_ns;
        let capacity = fabric_capacity_pps(ingress_ns, worker_ns, SHARDS, p);
        let core_bound = cores < p;
        // The headline number a reader should quote: measured where the
        // host can actually run P producers in parallel, modeled where it
        // cannot (flagged either way).
        let aggregate = if core_bound { modeled } else { wallclock };
        headline.push(aggregate);
        table.row(
            format!("{p}"),
            vec![
                fmt_tps(wallclock),
                fmt_tps(modeled),
                fmt_tps(capacity),
                format!("{core_bound}"),
            ],
        );
        let _ = writeln!(
            json_series,
            "    {{\"label\": \"{p} producers\", \"producers\": {p}, \
             \"wallclock_tuples_per_sec\": {wallclock:.0}, \
             \"modeled_ingress_tuples_per_sec\": {modeled:.0}, \
             \"end_to_end_capacity_pps\": {capacity:.0}, \
             \"core_bound\": {core_bound}, \
             \"aggregate_tuples_per_sec\": {aggregate:.0}}},"
        );
    }
    table.print();

    let speedup4 = headline[headline.len() - 1] / headline[0];
    println!("aggregate ingress speedup at 4 producers vs 1: {speedup4:.2}x");
    if !quick() {
        assert!(
            speedup4 >= 2.5,
            "ingress fabric must scale: {speedup4:.2}x < 2.5x at 4 producers"
        );
        assert!(
            ingress_ns <= dispatch_ns * 1.3,
            "fabric scatter ({ingress_ns:.1} ns/t) must stay near the classic \
             dispatcher ({dispatch_ns:.1} ns/t)"
        );
    }

    if quick() {
        println!("FD_QUICK set: skipping the JSON write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"ingress_scaling\",\n  \
         \"workload\": \"fwd-poly count: 20000 hosts, zipf 1.1, 100000 pkt/s x 20 s, TCP\",\n  \
         \"host_cores\": {cores},\n  \
         \"shards\": {SHARDS},\n  \
         \"ingress_ns_per_tuple\": {ingress_ns:.1},\n  \
         \"dispatch_ns_per_tuple\": {dispatch_ns:.1},\n  \
         \"worker_ns_per_tuple\": {worker_ns:.1},\n  \
         \"aggregate_speedup_at_4_producers\": {speedup4:.2},\n  \
         \"note\": \"aggregate_tuples_per_sec is wall-clock when host_cores >= producers, else the modeled P*1e9/ingress_ns with core_bound=true; end_to_end_capacity_pps applies min(P*1e9/ingress_ns, shards*1e9/worker_ns)\",\n  \
         \"series\": [\n{}  ]\n}}\n",
        json_series.trim_end_matches(",\n").to_string() + "\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingress.json");
    std::fs::write(out, &json).expect("write BENCH_ingress.json");
    println!("wrote {out}");
}
