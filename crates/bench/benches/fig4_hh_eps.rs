//! Figure 4 of the paper: heavy-hitter CPU and space as the accuracy
//! parameter ε varies, on TCP and on UDP traffic.
//!
//! Panels:
//!   (a) CPU vs ε over TCP at 200k pkt/s
//!   (c) space vs ε over TCP (log scale in the paper)
//!   (b), (d) the same over UDP at 170k pkt/s
//!
//! The paper's findings to reproduce: forward-decay CPU is robust to ε and
//! its space grows as 1/ε (but stays kilobytes); the sliding-window
//! backward-decay structure's space is orders of magnitude larger and does
//! **not** vary with ε (it effectively stores a large fraction of the
//! input); behaviour is essentially unchanged on UDP.
//!
//! Run: `cargo bench --bench fig4_hh_eps`

#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use fd_bench::{fmt_bytes, measure_query, quick, quick_scaled, Table};
use fd_core::decay::{BackExponential, Exponential, Monomial};
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::TraceConfig;

const DURATION_SECS: f64 = 15.0;
const PHI: f64 = 0.02;

fn trace(proto: Proto, rate_pps: f64) -> Vec<Packet> {
    TraceConfig {
        seed: 4,
        duration_secs: quick_scaled(DURATION_SECS, 1.5),
        rate_pps,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        // The paper filters one protocol out of the mixed feed.
        tcp_fraction: if proto == Proto::Tcp { 1.0 } else { 0.0 },
        ..Default::default()
    }
    .generate()
}

fn competitors(eps: f64) -> Vec<(&'static str, Arc<FnFactory>)> {
    vec![
        ("Unary HH", unary_hh_factory(eps, PHI, |p| p.dst_host())),
        (
            "fwd exp",
            fwd_hh_factory(Exponential::new(0.1), eps, PHI, |p| p.dst_host()),
        ),
        (
            "fwd poly",
            fwd_hh_factory(Monomial::quadratic(), eps, PHI, |p| p.dst_host()),
        ),
        (
            "bwd sliding window",
            prefix_hh_factory(
                16,
                eps,
                DynBackward::from_decay(BackExponential::new(0.1)),
                PHI,
                |p| p.dst_host(),
            ),
        ),
    ]
}

fn query(proto: Proto, factory: Arc<FnFactory>) -> Query {
    Query::builder("fig4")
        .filter(move |p| p.proto == proto)
        .bucket_secs(60)
        .aggregate(factory)
        .build()
}

/// Runs the CPU and space sweeps for one protocol; returns
/// (per-ε costs, per-ε spaces), each indexed `[eps][competitor]`.
fn sweep(
    proto: Proto,
    rate: f64,
    cpu_title: &str,
    space_title: &str,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let packets = trace(proto, rate);
    let labels: Vec<&str> = competitors(0.1).iter().map(|(l, _)| *l).collect();
    let mut cpu_table = Table::new(cpu_title, "ε", &labels);
    let mut space_table = Table::new(space_title, "ε", &labels);
    let mut all_costs = Vec::new();
    let mut all_spaces = Vec::new();
    for eps in [0.1, 0.05, 0.02, 0.01] {
        let mut cpu_cells = Vec::new();
        let mut space_cells = Vec::new();
        let mut costs = Vec::new();
        let mut spaces = Vec::new();
        for (_, factory) in competitors(eps) {
            let q = query(proto, factory);
            let m = measure_query(&q, &packets);
            costs.push(m.ns_per_tuple);
            cpu_cells.push(format!("{:.2}%", cpu_load_pct(rate, m.ns_per_tuple)));
            // Space: probe a live engine mid-bucket.
            let mut e = Engine::new(q);
            for p in packets.iter().filter(|p| p.ts < 60 * MICROS_PER_SEC) {
                e.process(p);
            }
            let bytes = e.space_per_group().expect("live group");
            spaces.push(bytes);
            space_cells.push(fmt_bytes(bytes));
        }
        cpu_table.row(format!("{eps}"), cpu_cells);
        space_table.row(format!("{eps}"), space_cells);
        all_costs.push(costs);
        all_spaces.push(spaces);
    }
    cpu_table.print();
    space_table.print();
    (all_costs, all_spaces)
}

fn check_shape(proto: &str, costs: &[Vec<f64>], spaces: &[Vec<f64>]) {
    if quick() {
        return;
    }
    // CPU of the forward methods is robust to ε.
    for s in 1..=2 {
        let (c_coarse, c_fine) = (costs[0][s], costs[3][s]);
        assert!(
            c_fine < 2.0 * c_coarse + 30.0,
            "{proto}: forward HH cost should be robust to ε ({c_coarse} → {c_fine})"
        );
    }
    // Forward space grows with 1/ε but stays in the kilobytes.
    for s in 1..=2 {
        assert!(
            spaces[3][s] > 3.0 * spaces[0][s],
            "{proto}: forward HH space should grow as ε shrinks"
        );
        assert!(
            spaces[3][s] < 512.0 * 1024.0,
            "{proto}: forward HH space should stay small"
        );
    }
    // Sliding-window space: orders of magnitude larger and — the paper's
    // point — growing ε "does not have much pruning power": even at the
    // coarsest ε the structure effectively stores a large fraction of the
    // input. Across the 10× ε sweep it must move far less than 10×, and its
    // floor must dwarf forward decay's ceiling.
    let sw_spaces: Vec<f64> = spaces.iter().map(|row| row[3]).collect();
    let (sw_min, sw_max) = (
        sw_spaces.iter().cloned().fold(f64::MAX, f64::min),
        sw_spaces.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        sw_max / sw_min < 3.0,
        "{proto}: sliding-window space should be weakly ε-sensitive: {sw_spaces:?}"
    );
    let fwd_max = spaces
        .iter()
        .map(|row| row[1].max(row[2]))
        .fold(0.0, f64::max);
    assert!(
        sw_min > 100.0 * fwd_max,
        "{proto}: sliding-window space should dwarf forward decay ({sw_min} vs {fwd_max})"
    );
    // Sliding-window CPU dominates at every ε.
    for row in costs {
        assert!(
            row[3] > 2.0 * row[1].max(row[2]),
            "{proto}: SW CPU should dominate: {row:?}"
        );
    }
}

fn main() {
    println!(
        "\nFigure 4 — heavy hitters vs ε. Traces: {DURATION_SECS} s synthetic, Zipf 1.1 \
         destinations, φ = {PHI}; TCP at 200k pkt/s, UDP at 170k pkt/s (the \
         paper's rates).\n"
    );
    let (tcp_costs, tcp_spaces) = sweep(
        Proto::Tcp,
        200_000.0,
        "Figure 4(a) — CPU vs ε, TCP at 200k pkt/s",
        "Figure 4(c) — space per group vs ε, TCP (log scale in the paper)",
    );
    check_shape("TCP", &tcp_costs, &tcp_spaces);
    let (udp_costs, udp_spaces) = sweep(
        Proto::Udp,
        170_000.0,
        "Figure 4(b) — CPU vs ε, UDP at 170k pkt/s",
        "Figure 4(d) — space per group vs ε, UDP (log scale in the paper)",
    );
    check_shape("UDP", &udp_costs, &udp_spaces);
    if quick() {
        println!("\nfig4: FD_QUICK set, skipped the shape assertions");
        return;
    }
    // "the behavior of the algorithm is virtually unchanged despite the
    // different characteristics of UDP data".
    for s in 0..4 {
        let (t, u) = (tcp_costs[3][s], udp_costs[3][s]);
        assert!(
            (t / u).max(u / t) < 3.0,
            "competitor {s}: TCP vs UDP behaviour should match ({t} vs {u})"
        );
    }
    println!("\nfig4: ε-robust forward CPU, 1/ε forward space, flat+huge SW space, TCP≈UDP ✓");
}
