//! Micro-benchmarks: per-update cost of every summary in fd-core, the
//! primitive costs underlying the figure-level results.
//!
//! Hand-rolled harness (no external benchmark framework): each summary is
//! rebuilt and driven over the same deterministic 100k-tuple stream for a
//! fixed number of rounds after a warm-up pass; the best round is reported
//! as ns/update, matching how criterion's minimum-time estimate is read.
//!
//! Run: `cargo bench --bench micro_summaries`

use std::hint::black_box;
use std::time::Instant;

use fd_bench::{quick, Table};
use fd_core::aggregates::{DecayedCount, DecayedSum};
use fd_core::backward::{ExponentialHistogram, PrefixBackwardHH, SlidingWindowHH};
use fd_core::decay::{Exponential, Monomial, NoDecay};
use fd_core::distinct::{DominanceSketch, ExactDominance};
use fd_core::heavy_hitters::{DecayedHeavyHitters, UnarySpaceSaving, WeightedSpaceSaving};
use fd_core::quantiles::{QDigest, WeightedGK};
use fd_core::sampling::{BiasedReservoir, PrioritySampler, ReservoirSampler, WeightedReservoir};

fn n() -> u64 {
    if quick() {
        20_000
    } else {
        100_000
    }
}

fn rounds() -> usize {
    if quick() {
        2
    } else {
        5
    }
}

/// Deterministic pseudo-stream: (timestamp, item, value).
fn stream() -> Vec<(f64, u64, u64)> {
    (0..n())
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (i as f64 * 1e-3, h % 10_000, 40 + h % 1460)
        })
        .collect()
}

/// Times `run` (setup via `mk`, drive via `run`) over a few rounds after
/// one warm-up, returning the best observed ns/update.
fn bench<S>(mk: impl Fn() -> S, run: impl Fn(&mut S, &[(f64, u64, u64)])) -> f64 {
    let data = stream();
    let mut s = mk();
    run(&mut s, &data); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..rounds() {
        let mut s = mk();
        let start = Instant::now();
        run(&mut s, &data);
        let ns = start.elapsed().as_nanos() as f64 / data.len() as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    let mut table = Table::new(
        "Micro: per-update cost of each summary",
        "summary",
        &["ns/update"],
    );
    let mut add = |name: &str, ns: f64| {
        println!("{name:<32} {ns:>8.1} ns/update");
        table.row(name, vec![format!("{ns:.1}")]);
    };

    // ----- scalar aggregates ------------------------------------------------
    add(
        "decayed_sum_poly",
        bench(
            || DecayedSum::new(Monomial::quadratic(), 0.0),
            |s, data| {
                for &(t, _, v) in data {
                    s.update(t, v as f64);
                }
                black_box(s.query(100.0));
            },
        ),
    );
    add(
        "decayed_sum_exp",
        bench(
            || DecayedSum::new(Exponential::new(0.1), 0.0),
            |s, data| {
                for &(t, _, v) in data {
                    s.update(t, v as f64);
                }
                black_box(s.query(100.0));
            },
        ),
    );
    add(
        "decayed_count_nodecay",
        bench(
            || DecayedCount::new(NoDecay, 0.0),
            |s, data| {
                for &(t, _, _) in data {
                    s.update(t);
                }
                black_box(s.query(100.0));
            },
        ),
    );

    // ----- heavy hitters ----------------------------------------------------
    add(
        "unary_space_saving",
        bench(
            || UnarySpaceSaving::with_epsilon(0.01),
            |s, data| {
                for &(_, item, _) in data {
                    s.update(item);
                }
                black_box(s.len());
            },
        ),
    );
    add(
        "weighted_space_saving",
        bench(
            || WeightedSpaceSaving::with_epsilon(0.01),
            |s, data| {
                for &(_, item, v) in data {
                    s.update(item, v as f64);
                }
                black_box(s.len());
            },
        ),
    );
    add(
        "decayed_hh_exp",
        bench(
            || DecayedHeavyHitters::with_epsilon(Exponential::new(0.1), 0.0, 0.01),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, item);
                }
                black_box(s.decayed_count(100.0));
            },
        ),
    );

    // ----- backward-decay baselines -----------------------------------------
    add(
        "eh_count_eps0.01",
        bench(
            || ExponentialHistogram::with_epsilon(0.01),
            |s, data| {
                for &(t, _, _) in data {
                    s.insert(t);
                }
                black_box(s.bucket_count());
            },
        ),
    );
    add(
        "eh_sum_eps0.01",
        bench(
            || ExponentialHistogram::with_epsilon(0.01),
            |s, data| {
                for &(t, _, v) in data {
                    s.insert_value(t, v);
                }
                black_box(s.bucket_count());
            },
        ),
    );
    add(
        "dyadic_window_hh",
        bench(
            || SlidingWindowHH::new(1.0, 8),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, item);
                }
                black_box(s.interval_count());
            },
        ),
    );
    add(
        "prefix_backward_hh",
        bench(
            || PrefixBackwardHH::new(16, 0.05),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, item);
                }
                black_box(s.node_count());
            },
        ),
    );

    // ----- quantiles ---------------------------------------------------------
    add(
        "qdigest_weighted",
        bench(
            || QDigest::with_epsilon(14, 0.01),
            |s, data| {
                for &(_, item, v) in data {
                    s.update(item & 0x3FFF, v as f64);
                }
                black_box(s.quantile(0.5));
            },
        ),
    );
    add(
        "gk_weighted",
        bench(
            || WeightedGK::new(0.01),
            |s, data| {
                for &(_, item, v) in data {
                    s.update(item as f64, v as f64);
                }
                black_box(s.quantile(0.5));
            },
        ),
    );

    // ----- samplers ----------------------------------------------------------
    add(
        "reservoir_k1000",
        bench(
            || ReservoirSampler::new(1000, 7),
            |s, data| {
                for &(_, item, _) in data {
                    s.update(item);
                }
                black_box(s.sample().len());
            },
        ),
    );
    add(
        "weighted_reservoir_exp_k1000",
        bench(
            || WeightedReservoir::new(Exponential::new(0.1), 0.0, 1000, 7),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, &item);
                }
                black_box(s.sample().len());
            },
        ),
    );
    add(
        "priority_sampler_exp_k1000",
        bench(
            || PrioritySampler::new(Exponential::new(0.1), 0.0, 1000, 7),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, &item);
                }
                black_box(s.sample().len());
            },
        ),
    );
    add(
        "biased_reservoir_lambda0.001",
        bench(
            || BiasedReservoir::new(0.001, 7),
            |s, data| {
                for &(_, item, _) in data {
                    s.update(item);
                }
                black_box(s.sample().len());
            },
        ),
    );

    // ----- distinct / dominance ----------------------------------------------
    add(
        "exact_dominance",
        bench(
            || ExactDominance::new(Monomial::quadratic(), 0.0),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, item);
                }
                black_box(s.query(100.0));
            },
        ),
    );
    add(
        "dominance_sketch_eps0.2",
        bench(
            || DominanceSketch::new(Monomial::quadratic(), 0.0, 0.2, 7),
            |s, data| {
                for &(t, item, _) in data {
                    s.update(t, item);
                }
                black_box(s.query(100.0));
            },
        ),
    );

    table.print();
}
