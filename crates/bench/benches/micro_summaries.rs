//! Criterion micro-benchmarks: per-update cost of every summary in
//! fd-core, the primitive costs underlying the figure-level results.
//!
//! Run: `cargo bench --bench micro_summaries`

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use fd_core::aggregates::{DecayedCount, DecayedSum};
use fd_core::backward::{ExponentialHistogram, PrefixBackwardHH, SlidingWindowHH};
use fd_core::decay::{Exponential, Monomial, NoDecay};
use fd_core::distinct::{DominanceSketch, ExactDominance};
use fd_core::heavy_hitters::{DecayedHeavyHitters, UnarySpaceSaving, WeightedSpaceSaving};
use fd_core::quantiles::{QDigest, WeightedGK};
use fd_core::sampling::{BiasedReservoir, PrioritySampler, ReservoirSampler, WeightedReservoir};

const N: u64 = 100_000;

/// Deterministic pseudo-stream: (timestamp, item, value).
fn stream() -> Vec<(f64, u64, u64)> {
    (0..N)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (i as f64 * 1e-3, h % 10_000, 40 + h % 1460)
        })
        .collect()
}

fn bench_scalar_aggregates(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("scalar_aggregates");
    g.throughput(Throughput::Elements(N));
    g.bench_function("decayed_sum_poly", |b| {
        b.iter_batched(
            || DecayedSum::new(Monomial::quadratic(), 0.0),
            |mut s| {
                for &(t, _, v) in &data {
                    s.update(t, v as f64);
                }
                black_box(s.query(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("decayed_sum_exp", |b| {
        b.iter_batched(
            || DecayedSum::new(Exponential::new(0.1), 0.0),
            |mut s| {
                for &(t, _, v) in &data {
                    s.update(t, v as f64);
                }
                black_box(s.query(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("decayed_count_nodecay", |b| {
        b.iter_batched(
            || DecayedCount::new(NoDecay, 0.0),
            |mut s| {
                for &(t, _, _) in &data {
                    s.update(t);
                }
                black_box(s.query(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_heavy_hitters(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("heavy_hitters");
    g.throughput(Throughput::Elements(N));
    g.bench_function("unary_space_saving", |b| {
        b.iter_batched(
            || UnarySpaceSaving::with_epsilon(0.01),
            |mut s| {
                for &(_, item, _) in &data {
                    s.update(item);
                }
                black_box(s.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("weighted_space_saving", |b| {
        b.iter_batched(
            || WeightedSpaceSaving::with_epsilon(0.01),
            |mut s| {
                for &(_, item, v) in &data {
                    s.update(item, v as f64);
                }
                black_box(s.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("decayed_hh_exp", |b| {
        b.iter_batched(
            || DecayedHeavyHitters::with_epsilon(Exponential::new(0.1), 0.0, 0.01),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, item);
                }
                black_box(s.decayed_count(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_backward_baselines(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("backward_baselines");
    g.throughput(Throughput::Elements(N));
    g.bench_function("eh_count_eps0.01", |b| {
        b.iter_batched(
            || ExponentialHistogram::with_epsilon(0.01),
            |mut s| {
                for &(t, _, _) in &data {
                    s.insert(t);
                }
                black_box(s.bucket_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("eh_sum_eps0.01", |b| {
        b.iter_batched(
            || ExponentialHistogram::with_epsilon(0.01),
            |mut s| {
                for &(t, _, v) in &data {
                    s.insert_value(t, v);
                }
                black_box(s.bucket_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dyadic_window_hh", |b| {
        b.iter_batched(
            || SlidingWindowHH::new(1.0, 8),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, item);
                }
                black_box(s.interval_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("prefix_backward_hh", |b| {
        b.iter_batched(
            || PrefixBackwardHH::new(16, 0.05),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, item);
                }
                black_box(s.node_count())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("quantiles");
    g.throughput(Throughput::Elements(N));
    g.bench_function("qdigest_weighted", |b| {
        b.iter_batched(
            || QDigest::with_epsilon(14, 0.01),
            |mut s| {
                for &(_, item, v) in &data {
                    s.update(item & 0x3FFF, v as f64);
                }
                black_box(s.quantile(0.5))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("gk_weighted", |b| {
        b.iter_batched(
            || WeightedGK::new(0.01),
            |mut s| {
                for &(_, item, v) in &data {
                    s.update(item as f64, v as f64);
                }
                black_box(s.quantile(0.5))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("samplers");
    g.throughput(Throughput::Elements(N));
    g.bench_function("reservoir_k1000", |b| {
        b.iter_batched(
            || ReservoirSampler::new(1000, 7),
            |mut s| {
                for &(_, item, _) in &data {
                    s.update(item);
                }
                black_box(s.sample().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("weighted_reservoir_exp_k1000", |b| {
        b.iter_batched(
            || WeightedReservoir::new(Exponential::new(0.1), 0.0, 1000, 7),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, &item);
                }
                black_box(s.sample().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("priority_sampler_exp_k1000", |b| {
        b.iter_batched(
            || PrioritySampler::new(Exponential::new(0.1), 0.0, 1000, 7),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, &item);
                }
                black_box(s.sample().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("biased_reservoir_lambda0.001", |b| {
        b.iter_batched(
            || BiasedReservoir::new(0.001, 7),
            |mut s| {
                for &(_, item, _) in &data {
                    s.update(item);
                }
                black_box(s.sample().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_distinct(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("distinct");
    g.throughput(Throughput::Elements(N));
    g.bench_function("exact_dominance", |b| {
        b.iter_batched(
            || ExactDominance::new(Monomial::quadratic(), 0.0),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, item);
                }
                black_box(s.query(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dominance_sketch_eps0.2", |b| {
        b.iter_batched(
            || DominanceSketch::new(Monomial::quadratic(), 0.0, 0.2, 7),
            |mut s| {
                for &(t, item, _) in &data {
                    s.update(t, item);
                }
                black_box(s.query(100.0))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scalar_aggregates,
        bench_heavy_hitters,
        bench_backward_baselines,
        bench_quantiles,
        bench_samplers,
        bench_distinct
);
criterion_main!(benches);
