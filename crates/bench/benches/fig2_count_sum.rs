//! Figure 2 of the paper: Count queries under time decay.
//!
//! The paper's query counts per-minute TCP packets per destination
//! (`select tb, destIP, destPort, count(*) from TCP group by time/60, …`),
//! with tens of thousands of active groups, comparing
//!
//! - undecayed GSQL `count(*)` (the baseline),
//! - forward decay, quadratic ("poly") and exponential ("exp"),
//! - backward decay via exponential histograms, which answer a decay
//!   function chosen at query time through the Cohen–Strauss combination of
//!   sliding-window queries.
//!
//! Four panels:
//!   (a) CPU load vs stream rate (100k–400k pkt/s), two-level aggregation ON
//!   (b) same with aggregate splitting disabled
//!   (c) throughput vs the EH accuracy parameter ε (0.1 → 0.01) at 100k pkt/s
//!   (d) space per group (log scale)
//!
//! Absolute CPU percentages are far below the paper's (a 2026 core against a
//! 2004 Xeon); the reproduced *shape* is the ordering and the trends — see
//! EXPERIMENTS.md.
//!
//! Run: `cargo bench --bench fig2_count_sum`

use std::sync::Arc;

use fd_bench::{fmt_bytes, measure_query, quick, quick_scaled, Table};
use fd_core::decay::{BackPolynomial, Exponential, Monomial};
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::TraceConfig;

const DURATION_SECS: f64 = 20.0;

fn duration_secs() -> f64 {
    quick_scaled(DURATION_SECS, 2.0)
}

fn trace_at(rate_pps: f64) -> Vec<Packet> {
    TraceConfig {
        seed: 2,
        duration_secs: duration_secs(),
        rate_pps,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

/// The four competitors of Figure 2, as (label, factory) pairs.
fn competitors(eh_eps: f64) -> Vec<(&'static str, Arc<FnFactory>)> {
    vec![
        ("no decay", count_factory()),
        ("fwd poly", fwd_count_factory(Monomial::quadratic())),
        ("fwd exp", fwd_count_factory(Exponential::new(0.1))),
        (
            "bwd EH",
            eh_count_factory(eh_eps, DynBackward::from_decay(BackPolynomial::new(2.0))),
        ),
    ]
}

fn query(factory: Arc<FnFactory>, two_level: bool) -> Query {
    Query::builder("fig2")
        .filter(|p| p.proto == Proto::Tcp)
        .group_by(|p| p.dst_host())
        .bucket_secs(60)
        .aggregate(factory)
        .two_level(two_level)
        .lfta_slots(65_536)
        .build()
}

fn fmt_load(p: LoadPoint) -> String {
    if p.drop_frac > 0.0 {
        format!("100% (drops {:.0}%)", p.drop_frac * 100.0)
    } else {
        format!("{:.1}%", p.cpu_pct)
    }
}

/// Panels (a) and (b): per-rate measurement shared between the two
/// architectures. Returns the per-tuple costs at the highest rate for the
/// shape assertions: `costs[two_level as usize]` → label → ns.
fn panels_a_b() -> [Vec<(String, f64)>; 2] {
    let labels: Vec<&str> = competitors(0.1).iter().map(|(l, _)| *l).collect();
    let mut table_a = Table::new(
        "Figure 2(a) — CPU load vs stream rate, two-level aggregation ON",
        "rate (pkt/s)",
        &labels,
    );
    let mut table_b = Table::new(
        "Figure 2(b) — CPU load vs stream rate, aggregate splitting DISABLED",
        "rate (pkt/s)",
        &labels,
    );
    let mut costs_at_max: [Vec<(String, f64)>; 2] = [Vec::new(), Vec::new()];
    for rate in [100_000.0, 200_000.0, 400_000.0f64] {
        let packets = trace_at(rate);
        for (panel, (table, two_level)) in [(&mut table_a, true), (&mut table_b, false)]
            .into_iter()
            .enumerate()
        {
            let mut cells = Vec::new();
            let mut row_costs = Vec::new();
            for (label, factory) in competitors(0.1) {
                let m = measure_query(&query(factory, two_level), &packets);
                row_costs.push((label.to_string(), m.ns_per_tuple));
                cells.push(fmt_load(LoadPoint::from_cost(rate, m.ns_per_tuple)));
            }
            if rate == 400_000.0 {
                costs_at_max[panel] = row_costs;
            }
            table.row(format!("{}k", rate as u64 / 1000), cells);
        }
    }
    table_a.print();
    table_b.print();
    costs_at_max
}

fn panel_c() {
    // The paper: "we decreased ε down to 0.01, while the stream data rate
    // was set to 100,000 packets/second"; at ε = 0.01 its EH implementation
    // saturated the CPU. Our EH amortizes updates more aggressively than
    // the 2009 baseline, so to expose the asymptotic ε-dependence (the
    // O(1/ε) merge-insertion scans of the EH-for-sums) this panel uses the
    // sum query on a hotter per-group load (500 hosts); with the paper's
    // original cardinality the effect hides below measurement noise on
    // modern hardware — see EXPERIMENTS.md.
    let rate = 100_000.0;
    let packets = TraceConfig {
        seed: 2,
        duration_secs: duration_secs(),
        rate_pps: rate,
        n_hosts: 500,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate();
    let mut table = Table::new(
        "Figure 2(c) — sum query: throughput and EH cost vs accuracy ε at 100k pkt/s",
        "ε",
        &[
            "fwd poly ns/pkt",
            "fwd exp ns/pkt",
            "bwd EH ns/pkt",
            "bwd EH max pkt/s",
        ],
    );
    let sum_competitors = |eps: f64| -> Vec<(&'static str, Arc<FnFactory>)> {
        vec![
            (
                "fwd poly",
                fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64),
            ),
            (
                "fwd exp",
                fwd_sum_factory(Exponential::new(0.1), |p| p.len as f64),
            ),
            (
                "bwd EH",
                eh_sum_factory(
                    eps,
                    DynBackward::from_decay(BackPolynomial::new(2.0)),
                    |p| p.len as u64,
                ),
            ),
        ]
    };
    let mut eh_costs = Vec::new();
    for eps in [0.1, 0.05, 0.02, 0.01] {
        let mut cells = Vec::new();
        for (label, factory) in sum_competitors(eps) {
            let m = measure_query(&query(factory, true), &packets);
            cells.push(format!("{:.0}", m.ns_per_tuple));
            if label == "bwd EH" {
                eh_costs.push(m.ns_per_tuple);
                cells.push(format!("{:.0}k", 1e6 / m.ns_per_tuple));
            }
        }
        table.row(format!("{eps}"), cells);
    }
    table.print();
    println!("(forward-decay costs must be flat in ε; the EH cost grows / throughput degrades)");
    if !quick() {
        assert!(
            eh_costs[3] > 1.2 * eh_costs[0],
            "EH at ε = 0.01 should cost more than at ε = 0.1: {eh_costs:?}"
        );
    }
}

fn panel_d() -> (f64, f64, f64, f64) {
    let packets = trace_at(100_000.0);
    let mut table = Table::new(
        "Figure 2(d) — space per group (the paper plots this on a log scale)",
        "method",
        &["bytes/group"],
    );
    let probe = |factory: Arc<FnFactory>| -> f64 {
        let mut e = Engine::new(query(factory, false));
        for p in packets.iter().filter(|p| p.ts < 60 * MICROS_PER_SEC) {
            e.process(p);
        }
        e.space_per_group().expect("live groups")
    };
    let undecayed = probe(count_factory());
    let forward = probe(fwd_count_factory(Monomial::quadratic()));
    let eh_coarse = probe(eh_count_factory(
        0.1,
        DynBackward::from_decay(BackPolynomial::new(2.0)),
    ));
    let eh_fine = probe(eh_count_factory(
        0.01,
        DynBackward::from_decay(BackPolynomial::new(2.0)),
    ));
    table.row("no decay", vec![fmt_bytes(undecayed)]);
    table.row("fwd poly / fwd exp", vec![fmt_bytes(forward)]);
    table.row("bwd EH (ε = 0.1)", vec![fmt_bytes(eh_coarse)]);
    table.row("bwd EH (ε = 0.01)", vec![fmt_bytes(eh_fine)]);
    table.print();
    (undecayed, forward, eh_coarse, eh_fine)
}

fn main() {
    println!(
        "\nFigure 2 — count queries under decay. Trace: {} s synthetic TCP, \
         20k hosts, Zipf 1.1, per-destination-host minute groups; the EH \
         baseline answers the same quadratic-decay query via the \
         Cohen–Strauss window combination.\n",
        duration_secs()
    );
    let costs = panels_a_b();
    panel_c();
    let (undecayed, forward, eh_coarse, eh_fine) = panel_d();

    if quick() {
        println!("\nfig2: FD_QUICK set, skipping the timing shape assertions");
        return;
    }

    // Shape assertions — the paper's qualitative claims.
    let cost = |panel: usize, l: &str| {
        costs[panel]
            .iter()
            .find(|(x, _)| x == l)
            .map(|(_, c)| *c)
            .unwrap()
    };
    let (nd, fp, fe, eh) = (
        cost(0, "no decay"),
        cost(0, "fwd poly"),
        cost(0, "fwd exp"),
        cost(0, "bwd EH"),
    );
    assert!(
        fp < 3.0 * nd,
        "fwd poly should be near the undecayed cost: {fp} vs {nd}"
    );
    assert!(
        fe < 6.0 * nd,
        "fwd exp should be a small constant over undecayed: {fe} vs {nd}"
    );
    assert!(
        eh > 2.0 * fp,
        "EH should cost appreciably more than forward decay: {eh} vs {fp}"
    );
    assert!(
        cost(1, "bwd EH") > 1.5 * cost(1, "fwd poly"),
        "EH stays costlier even without splitting"
    );
    assert_eq!(undecayed, 4.0, "undecayed groups store a 4-byte integer");
    assert_eq!(forward, 8.0, "forward-decayed groups store an 8-byte float");
    assert!(
        eh_coarse > 20.0 * forward && eh_fine > eh_coarse,
        "EH space must be orders of magnitude above forward decay and grow as ε shrinks: \
         {eh_coarse} / {eh_fine}"
    );
    println!("\nfig2: cost ordering (no decay ≈ fwd ≪ EH) and space ordering verified ✓");
}
