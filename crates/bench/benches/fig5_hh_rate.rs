//! Figure 5 of the paper: heavy-hitter performance as the stream rate
//! varies.
//!
//! Per one-minute interval, the query identifies the network hosts
//! receiving the most TCP traffic, comparing:
//!
//! - "Unary HH": SpaceSaving optimized for unweighted updates (undecayed),
//! - weighted SpaceSaving under forward exponential decay,
//! - weighted SpaceSaving under forward quadratic decay,
//! - the sliding-window/backward-decay pane structure.
//!
//! The paper's findings to reproduce: the weighted version's overhead over
//! Unary HH is small, the decay function barely matters, and the
//! sliding-window backward-decay approach is much more expensive — at
//! 200k pkt/s it neared 90% CPU (instability) while the forward methods
//! idled.
//!
//! Run: `cargo bench --bench fig5_hh_rate`

use std::sync::Arc;

use fd_bench::{measure_query, quick, quick_scaled, Table};
use fd_core::decay::{BackExponential, Exponential, Monomial};
use fd_engine::prelude::*;
use fd_engine::udaf::FnFactory;
use fd_gen::TraceConfig;

const DURATION_SECS: f64 = 15.0;
const EPS: f64 = 0.01;
const PHI: f64 = 0.02;

fn trace_at(rate_pps: f64) -> Vec<Packet> {
    TraceConfig {
        seed: 5,
        duration_secs: quick_scaled(DURATION_SECS, 1.5),
        rate_pps,
        n_hosts: 20_000,
        zipf_skew: 1.1,
        tcp_fraction: 1.0,
        ..Default::default()
    }
    .generate()
}

fn competitors() -> Vec<(&'static str, Arc<FnFactory>)> {
    vec![
        ("Unary HH", unary_hh_factory(EPS, PHI, |p| p.dst_host())),
        (
            "fwd exp",
            fwd_hh_factory(Exponential::new(0.1), EPS, PHI, |p| p.dst_host()),
        ),
        (
            "fwd poly",
            fwd_hh_factory(Monomial::quadratic(), EPS, PHI, |p| p.dst_host()),
        ),
        (
            "bwd sliding window",
            prefix_hh_factory(
                16,
                EPS,
                DynBackward::from_decay(BackExponential::new(0.1)),
                PHI,
                |p| p.dst_host(),
            ),
        ),
    ]
}

fn query(factory: Arc<FnFactory>) -> Query {
    // One heavy-hitter summary per minute over all TCP traffic (a single
    // group per bucket, holding the SpaceSaving/pane structure).
    Query::builder("fig5")
        .filter(|p| p.proto == Proto::Tcp)
        .bucket_secs(60)
        .aggregate(factory)
        .build()
}

fn main() {
    println!(
        "\nFigure 5 — heavy hitters vs stream rate. Trace: {DURATION_SECS} s synthetic \
         TCP, Zipf 1.1 destinations; φ = {PHI}, ε = {EPS}.\n"
    );
    let labels: Vec<&str> = competitors().iter().map(|(l, _)| *l).collect();
    let mut table = Table::new(
        "Figure 5 — CPU load vs stream rate (summary maintenance)",
        "rate (pkt/s)",
        &labels,
    );
    let mut costs_at_max: Vec<f64> = Vec::new();
    for rate in [50_000.0, 100_000.0, 150_000.0, 200_000.0f64] {
        let packets = trace_at(rate);
        let mut cells = Vec::new();
        let mut costs = Vec::new();
        for (_, factory) in competitors() {
            let m = measure_query(&query(factory), &packets);
            costs.push(m.ns_per_tuple);
            let p = LoadPoint::from_cost(rate, m.ns_per_tuple);
            cells.push(if p.drop_frac > 0.0 {
                format!("100% (drops {:.0}%)", p.drop_frac * 100.0)
            } else {
                format!("{:.2}%", p.cpu_pct)
            });
        }
        if rate == 200_000.0 {
            costs_at_max = costs.clone();
        }
        table.row(format!("{}k", rate as u64 / 1000), cells);
    }
    table.print();

    if quick() {
        println!("\nfig5: FD_QUICK set, skipping the timing shape assertions");
        return;
    }

    // Shape assertions — the paper's findings.
    let (unary, fwd_exp, fwd_poly, sw) = (
        costs_at_max[0],
        costs_at_max[1],
        costs_at_max[2],
        costs_at_max[3],
    );
    // "the overhead of the weighted version … is small compared to the
    // version optimized for unweighted updates".
    assert!(
        fwd_exp < 4.0 * unary && fwd_poly < 4.0 * unary,
        "weighted SS overhead too large: unary {unary}, exp {fwd_exp}, poly {fwd_poly}"
    );
    // "little variation as a function of the decay function".
    let (lo, hi) = (fwd_exp.min(fwd_poly), fwd_exp.max(fwd_poly));
    assert!(
        hi < 2.0 * lo + 20.0,
        "decay functions should cost alike: {fwd_exp} vs {fwd_poly}"
    );
    // "the sliding window-based implementation of backward decay is much
    // more expensive".
    assert!(
        sw > 3.0 * fwd_exp.max(fwd_poly),
        "sliding-window HH should dominate the cost chart: {sw} vs {fwd_exp}/{fwd_poly}"
    );
    println!("\nfig5: unary ≈ weighted ≪ sliding-window ordering verified ✓");
}
